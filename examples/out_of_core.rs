//! Out-of-core rendering (§6): stream a volume from disk through a small
//! host cache — "the library allows for out-of-core algorithms (including
//! rendering), something current GPU MapReduce libraries do not allow."
//!
//!     cargo run --release --example out_of_core

use gpumr::prelude::*;
use gpumr::voldata::{io, Dataset as Ds};
use gpumr::volren::Residency;

fn main() {
    // Bake a Plume volume to a raw file: this is the on-disk dataset.
    let base = 96u32; // 96×96×384 keeps the example snappy
    let procedural = Ds::Plume.volume(base);
    let path = std::env::temp_dir().join("gpumr_plume_example.vol");
    let already_baked = io::read_header(&path)
        .map(|d| d == procedural.dims())
        .unwrap_or(false);
    if !already_baked {
        println!("baking plume to {} ...", path.display());
        let data = procedural.materialize_full();
        io::write_volume(&path, procedural.dims(), &data).expect("bake");
    }
    let volume = gpumr::voldata::Volume {
        meta: procedural.meta.clone(),
        source: gpumr::voldata::VolumeSource::File(path),
    };

    let cluster = ClusterSpec::accelerator_cluster(4);
    let scene = Scene::orbit(&volume, 20.0, 10.0, TransferFunction::smoke());

    // Force disk staging and a host cache smaller than the volume: bricks
    // stream through, get evicted, and the DES charges real disk time.
    let mut config = RenderConfig {
        residency: Residency::Disk,
        host_cache_bytes: volume.meta.bytes() / 4,
        ..RenderConfig::default()
    };

    let out = render(&cluster, &volume, &scene, &config);
    let r = &out.report;
    println!(
        "out-of-core {}: frame {} (partition+i/o {} of it)",
        r.volume_label,
        r.runtime(),
        r.breakdown().partition_io
    );
    println!(
        "brick cache: {} misses, {} evictions, {:.1} MiB materialized (budget {:.1} MiB)",
        r.store.misses,
        r.store.evictions,
        r.store.bytes_materialized as f64 / (1 << 20) as f64,
        config.host_cache_bytes as f64 / (1 << 20) as f64,
    );

    // Same render, resident in host RAM: identical pixels, faster frame.
    config.residency = Residency::HostResident;
    let resident = render(&cluster, &volume, &scene, &config);
    assert_eq!(out.image, resident.image, "staging must not change pixels");
    println!(
        "in-core frame for comparison: {} — pixels identical, only timing differs",
        resident.report.runtime()
    );

    out.image.write_ppm("plume_oocore.ppm").expect("write ppm");
    println!("wrote plume_oocore.ppm");
}
