//! The render service in action: two clients orbit two different datasets
//! concurrently, each queueing a dozen frames; the service batches
//! same-volume work over one shared brick store, keeps the plan warm across
//! batches in the plan cache, caches repeated views, and reports
//! queue/batch/cache behaviour. Every delivered frame is verified
//! bit-identical to a direct `render` call. A final vignette shows admission
//! control shedding low-priority work from a full queue.
//!
//!     cargo run --release --example render_service

use gpumr::prelude::*;

fn main() {
    let spec = ClusterSpec::accelerator_cluster(4);
    let cfg = RenderConfig::test_size(128);
    let skull = Dataset::Skull.volume(32);
    let supernova = Dataset::Supernova.volume(32);
    let frames_per_client = 12;

    let service = RenderService::start(ServiceConfig {
        workers: 2,
        max_batch: 6,
        cache_frames: 64,
        start_paused: true, // queue everything first: deterministic batching
        ..ServiceConfig::default()
    });
    let skull_client = service.session(spec.clone(), skull.clone(), cfg.clone());
    let nova_client = service
        .session(spec.clone(), supernova.clone(), cfg.clone())
        .with_priority(Priority::Batch);

    // Two concurrent scenes, ≥8 queued frames each, interleaved arrivals.
    let mut tickets = Vec::new();
    for i in 0..frames_per_client {
        let az = i as f32 * (360.0 / frames_per_client as f32);
        tickets.push((
            "skull",
            az,
            skull_client.request_orbit(az, 20.0, TransferFunction::bone()),
        ));
        tickets.push((
            "supernova",
            az,
            nova_client.request_orbit(az, -15.0, TransferFunction::fire()),
        ));
    }
    println!(
        "queued {} frames across 2 sessions ({} each); releasing workers…\n",
        tickets.len(),
        frames_per_client
    );
    service.resume();

    // Redeem every ticket and verify against the blocking single-frame path.
    let mut verified = 0;
    for (label, az, ticket) in tickets {
        let frame = ticket.wait();
        let (volume, transfer, elevation) = match label {
            "skull" => (&skull, TransferFunction::bone(), 20.0),
            _ => (&supernova, TransferFunction::fire(), -15.0),
        };
        let scene = Scene::orbit(volume, az, elevation, transfer);
        let direct = render(&spec, volume, &scene, &cfg);
        assert_eq!(
            *frame.image, direct.image,
            "{label} az {az}: service frame must be bit-identical to direct render"
        );
        verified += 1;
    }
    println!("verified {verified}/{verified} frames bit-identical to direct renders");

    // Repeat a view: the frame cache answers without rendering.
    let replay = skull_client
        .request_orbit(0.0, 20.0, TransferFunction::bone())
        .wait();
    assert!(replay.from_cache, "repeated view must come from the cache");
    println!("replayed skull az 0 from the frame cache (no render)");

    // A NEW wave of skull views: a fresh batch, but the plan cache already
    // holds the skull's plan — its warm brick store answers every staging.
    let wave: Vec<_> = (0..3)
        .map(|i| skull_client.request_orbit(7.0 + i as f32 * 11.0, 20.0, TransferFunction::bone()))
        .collect();
    for t in wave {
        assert!(!t.wait().from_cache, "new views render fresh");
    }
    let plans = service.plan_snapshot();
    assert!(plans.hits > 0, "the new wave must reuse a cached plan");
    println!(
        "second skull wave reused the cached plan ({} plan-cache hits)\n",
        plans.hits
    );

    let report = service.shutdown();
    println!("service report:\n{report}");

    // Batching effect: each brick staged once per batch, not once per frame.
    let saved = report.brick_reuses;
    println!(
        "\nbrick sharing: {} stagings paid, {} avoided by shared stores",
        report.brick_stagings, saved
    );
    assert!(report.batch_occupancy() > 1.0, "batches should have formed");
    assert!(saved > 0, "shared stores should have been reused");

    // Admission control: a paused service with a 2-deep queue bound for
    // Batch (4 for Normal, 6 for Interactive) sheds the sweep's overflow
    // instead of queueing without limit.
    let bounded = RenderService::start(ServiceConfig {
        workers: 1,
        queue_bounds: QueueBounds {
            batch: 2,
            normal: 4,
            interactive: 6,
        },
        start_paused: true,
        ..ServiceConfig::default()
    });
    let tiny = Dataset::Skull.volume(8);
    let sweep = bounded
        .session(
            ClusterSpec::accelerator_cluster(1),
            tiny,
            RenderConfig::test_size(16),
        )
        .with_priority(Priority::Batch);
    let mut admitted = Vec::new();
    let mut shed = 0;
    for i in 0..5 {
        let scene = Scene::orbit(
            sweep.volume(),
            i as f32 * 30.0,
            15.0,
            TransferFunction::bone(),
        );
        match sweep.try_request(scene) {
            Ok(t) => admitted.push(t),
            Err(err) => {
                shed += 1;
                if shed == 1 {
                    println!("\nadmission control: {err}");
                }
            }
        }
    }
    assert_eq!((admitted.len(), shed), (2, 3), "batch bound is 2");
    bounded.resume();
    for t in admitted {
        t.wait();
    }
    let bounded_report = bounded.shutdown();
    println!(
        "admitted {} batch frames, shed {} at the bound",
        bounded_report.frames_submitted, bounded_report.admission_rejected
    );
}
