//! The render service in action: two clients orbit two different datasets
//! concurrently, each queueing a dozen frames; the service batches
//! same-volume work over one shared brick store, caches repeated views, and
//! reports queue/batch/cache behaviour. Every delivered frame is verified
//! bit-identical to a direct `render` call.
//!
//!     cargo run --release --example render_service

use gpumr::prelude::*;

fn main() {
    let spec = ClusterSpec::accelerator_cluster(4);
    let cfg = RenderConfig::test_size(128);
    let skull = Dataset::Skull.volume(32);
    let supernova = Dataset::Supernova.volume(32);
    let frames_per_client = 12;

    let service = RenderService::start(ServiceConfig {
        workers: 2,
        max_batch: 6,
        cache_frames: 64,
        start_paused: true, // queue everything first: deterministic batching
    });
    let skull_client = service.session(spec.clone(), skull.clone(), cfg.clone());
    let nova_client = service
        .session(spec.clone(), supernova.clone(), cfg.clone())
        .with_priority(Priority::Batch);

    // Two concurrent scenes, ≥8 queued frames each, interleaved arrivals.
    let mut tickets = Vec::new();
    for i in 0..frames_per_client {
        let az = i as f32 * (360.0 / frames_per_client as f32);
        tickets.push((
            "skull",
            az,
            skull_client.request_orbit(az, 20.0, TransferFunction::bone()),
        ));
        tickets.push((
            "supernova",
            az,
            nova_client.request_orbit(az, -15.0, TransferFunction::fire()),
        ));
    }
    println!(
        "queued {} frames across 2 sessions ({} each); releasing workers…\n",
        tickets.len(),
        frames_per_client
    );
    service.resume();

    // Redeem every ticket and verify against the blocking single-frame path.
    let mut verified = 0;
    for (label, az, ticket) in tickets {
        let frame = ticket.wait();
        let (volume, transfer, elevation) = match label {
            "skull" => (&skull, TransferFunction::bone(), 20.0),
            _ => (&supernova, TransferFunction::fire(), -15.0),
        };
        let scene = Scene::orbit(volume, az, elevation, transfer);
        let direct = render(&spec, volume, &scene, &cfg);
        assert_eq!(
            *frame.image, direct.image,
            "{label} az {az}: service frame must be bit-identical to direct render"
        );
        verified += 1;
    }
    println!("verified {verified}/{verified} frames bit-identical to direct renders");

    // Repeat a view: the frame cache answers without rendering.
    let replay = skull_client
        .request_orbit(0.0, 20.0, TransferFunction::bone())
        .wait();
    assert!(replay.from_cache, "repeated view must come from the cache");
    println!("replayed skull az 0 from the frame cache (no render)\n");

    let report = service.shutdown();
    println!("service report:\n{report}");

    // Batching effect: each brick staged once per batch, not once per frame.
    let saved = report.brick_reuses;
    println!(
        "\nbrick sharing: {} stagings paid, {} avoided by shared stores",
        report.brick_stagings, saved
    );
    assert!(report.batch_occupancy() > 1.0, "batches should have formed");
    assert!(saved > 0, "shared stores should have been reused");
}
