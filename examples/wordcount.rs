//! The MapReduce library is not rendering-specific: a word-count job under
//! the same §3.1.1 restrictions (dense u32 keys, POD values, every "thread"
//! emits, sentinel placeholders). Demonstrates the combiner doing real work
//! — unlike rendering, word counting benefits enormously from it.
//!
//!     cargo run --release --example wordcount

use gpumr::cluster::ClusterSpec;
use gpumr::mapreduce::{
    run_job, Chunk, FnCombiner, GpuMapper, JobConfig, MapOutput, Reducer, RoundRobin, SENTINEL_KEY,
};
use mgpu_gpu::LaunchStats;

/// A "document": a slice of text plus a vocabulary that maps words to dense
/// u32 keys (the library's dense-key restriction).
struct Doc {
    id: usize,
    words: Vec<u32>,
}

impl Chunk for Doc {
    fn id(&self) -> usize {
        self.id
    }
    fn device_bytes(&self) -> u64 {
        (self.words.len() * 4) as u64
    }
    fn disk_bytes(&self) -> u64 {
        0
    }
}

struct CountMapper;

impl GpuMapper<Doc> for CountMapper {
    type Value = u32;

    fn map_chunk(&self, _gpu: gpumr::cluster::GpuId, doc: &Doc) -> MapOutput<u32> {
        // Every slot emits: real words as (word, 1), padding as sentinels —
        // exactly the renderer's placeholder discipline.
        let padded = doc.words.len().next_multiple_of(256);
        let mut pairs = Vec::with_capacity(padded);
        for &w in &doc.words {
            pairs.push((w, 1u32));
        }
        pairs.resize(padded, (SENTINEL_KEY, 0));
        MapOutput::from_pairs(
            pairs,
            LaunchStats {
                threads: padded as u64,
                total_samples: doc.words.len() as u64,
                simt_samples: padded as u64,
                blocks: (padded / 256) as u64,
                warps: (padded / 32) as u64,
            },
        )
    }
}

struct SumReducer;

impl Reducer for SumReducer {
    type Value = u32;
    type Out = u64;

    fn reduce(&self, _key: u32, values: &mut Vec<u32>) -> u64 {
        values.iter().map(|&v| v as u64).sum()
    }
}

fn main() {
    let vocab = ["map", "reduce", "gpu", "volume", "render", "brick", "ray"];
    // Synthesize "documents" with a skewed word distribution.
    let mut docs = Vec::new();
    let mut state = 0x1234_5678u64;
    for id in 0..64 {
        let mut words = Vec::new();
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize;
            // Zipf-ish: low word ids far more common.
            let w = (r % vocab.len()) * (r % 3) / 2 % vocab.len();
            words.push(w as u32);
        }
        docs.push(Doc { id, words });
    }

    let spec = ClusterSpec::accelerator_cluster(4);
    let config = JobConfig::new(4, vocab.len() as u32);
    let combiner = FnCombiner::new(|_k, vs: &mut Vec<u32>| {
        let s: u32 = vs.iter().sum();
        vs.clear();
        vs.push(s);
    });

    let with = run_job(
        &docs,
        &CountMapper,
        &SumReducer,
        &RoundRobin,
        Some(&combiner),
        &spec,
        &config,
    );
    let without = run_job(
        &docs,
        &CountMapper,
        &SumReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );

    println!("{:<8} {:>10}", "word", "count");
    for (k, count) in with.iter() {
        println!("{:<8} {:>10}", vocab[k as usize], count);
    }
    assert_eq!(with.keys, without.keys, "combiner must not change results");
    assert_eq!(with.outs, without.outs, "combiner must not change results");
    println!(
        "\nwire bytes: {} with combiner vs {} without ({}x less traffic)",
        with.stats.wire_bytes_sent,
        without.stats.wire_bytes_sent,
        without.stats.wire_bytes_sent / with.stats.wire_bytes_sent.max(1)
    );
    println!("(rendering sees no such benefit — §3.1 — but word count does)");
}
