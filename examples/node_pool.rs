//! The first multi-node rung in action: two independent [`RenderServer`]
//! processes-worth of render capacity behind one [`NodePool`] — the same
//! `RenderBackend` trait as a local [`RenderService`], but the frames come
//! from whichever node the placement [`Directory`] owns each batch key on.
//! The finale kills a node mid-run and the pool completes the next frame
//! on the survivor, inside its [`RetryBudget`], bit-identical as ever.
//!
//!     cargo run --release --example node_pool

use gpumr::prelude::*;

fn start_node() -> RenderServer {
    RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind a loopback node")
}

fn main() {
    let mut nodes: Vec<Option<RenderServer>> = vec![Some(start_node()), Some(start_node())];
    let directory = Directory::new(nodes.iter().map(|n| n.as_ref().unwrap().addr()).collect());
    println!("node directory: {:?}\n", directory.addrs());

    let pool = NodePool::new(
        directory,
        NodePoolConfig {
            retry: RetryBudget {
                attempts: 3,
                ..RetryBudget::default()
            },
            client: ClientConfig {
                connect_timeout: Some(std::time::Duration::from_secs(5)),
                read_timeout: Some(std::time::Duration::from_secs(120)),
                ..ClientConfig::default()
            },
        },
    );

    let cfg = RenderConfig::test_size(64);
    let datasets = [
        (Dataset::Skull, 32u32, 4u32, TransferFunction::bone()),
        (Dataset::Supernova, 32, 1, TransferFunction::fire()),
        (Dataset::Plume, 16, 2, TransferFunction::smoke()),
    ];

    // One session per dataset, all over the same pool; the directory pins
    // each (cluster, volume, config) to its owning node, so a dataset's
    // frames keep hitting the node whose plan cache is warm.
    let mut rendered = 0u32;
    for (dataset, base, gpus, transfer) in &datasets {
        let volume = dataset.volume(*base);
        let spec = ClusterSpec::accelerator_cluster(*gpus);
        let session = pool.session(spec.clone(), volume.clone(), cfg.clone());
        let owner = pool.node_for(&SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: Scene::orbit(&volume, 0.0, 15.0, transfer.clone()),
            config: cfg.clone(),
            priority: Priority::Normal,
        });
        for i in 0..4 {
            let az = i as f32 * 85.0;
            let frame = session
                .render(Scene::orbit(&volume, az, 15.0, transfer.clone()))
                .expect("pooled render");
            let scene = Scene::orbit(&volume, az, 15.0, transfer.clone());
            let direct = gpumr::volren::render(&spec, &volume, &scene, &cfg);
            assert_eq!(
                *frame.image, direct.image,
                "pooled frame must be bit-identical to a direct render"
            );
            rendered += 1;
        }
        println!(
            "{:>10}: 4 frames via node {owner} — all bit-identical",
            dataset.name()
        );
    }

    // Pool-level merged accounting across both nodes.
    let merged = pool.report().expect("merged pool report");
    assert_eq!(merged.frames_completed, rendered as u64);
    println!(
        "\npool report: {} frames over {} nodes, {:.1} frames/s wall",
        merged.frames_completed,
        pool.node_count(),
        merged.frames_per_sec()
    );
    for (node, stats) in pool.node_stats().into_iter().enumerate() {
        let stats = stats.expect("node reachable");
        println!(
            "  node {node}: {} frames, {} shards",
            stats.merged.frames_completed,
            stats.shards.len()
        );
    }

    // Failover finale: kill the skull's owning node, render again — the
    // pool absorbs the loss within its retry budget and the survivor
    // delivers the identical pixels.
    let skull = Dataset::Skull.volume(32);
    let spec = ClusterSpec::accelerator_cluster(4);
    let request = SceneRequest {
        spec: spec.clone(),
        volume: skull.clone(),
        scene: Scene::orbit(&skull, 123.0, 15.0, TransferFunction::bone()),
        config: cfg.clone(),
        priority: Priority::Normal,
    };
    let owner = pool.node_for(&request);
    println!("\nkilling node {owner} (owns the skull) mid-run…");
    nodes[owner].take().unwrap().shutdown();

    let frame = pool.render(request.clone()).expect("failover render");
    let direct = gpumr::volren::render(&spec, &skull, &request.scene, &cfg);
    assert_eq!(
        *frame.image, direct.image,
        "failover must not change a single pixel"
    );
    println!("frame completed on the survivor — still bit-identical");

    let stats = pool.node_stats();
    assert!(stats[owner].is_err(), "dead node reports its error");
    assert!(stats[1 - owner].is_ok());
    println!(
        "node {owner} now reports: {}",
        stats[owner].as_ref().unwrap_err()
    );

    RenderBackend::shutdown(pool);
    if let Some(survivor) = nodes.into_iter().flatten().next() {
        let report = survivor.shutdown();
        println!(
            "\nsurvivor drained: {} frames completed over its lifetime",
            report.frames_completed
        );
    }
}
