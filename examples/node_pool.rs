//! The first multi-node rung in action: two independent [`RenderServer`]
//! processes-worth of render capacity behind one [`NodePool`] — the same
//! `RenderBackend` trait as a local [`RenderService`], but the frames come
//! from whichever node the placement [`Directory`] owns each batch key on.
//! Two finales: a **graceful drain-and-rejoin** (tickets in flight when
//! the drain starts, every one redeemed bit-identically, then the node
//! RESUMEs back into service at a new epoch) and a **crash** (a node
//! killed mid-run; the pool completes the next frame on the survivor,
//! inside its [`RetryBudget`], bit-identical as ever).
//!
//!     cargo run --release --example node_pool

use gpumr::prelude::*;

fn start_node() -> RenderServer {
    RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind a loopback node")
}

fn main() {
    let mut nodes: Vec<Option<RenderServer>> = vec![Some(start_node()), Some(start_node())];
    let directory = Directory::new(nodes.iter().map(|n| n.as_ref().unwrap().addr()).collect())
        .expect("two distinct loopback nodes");
    println!("node directory: {:?}\n", directory.addrs());

    let pool = NodePool::new(
        directory,
        NodePoolConfig {
            retry: RetryBudget {
                attempts: 3,
                ..RetryBudget::default()
            },
            client: ClientConfig {
                connect_timeout: Some(std::time::Duration::from_secs(5)),
                read_timeout: Some(std::time::Duration::from_secs(120)),
                ..ClientConfig::default()
            },
        },
    );

    let cfg = RenderConfig::test_size(64);
    let datasets = [
        (Dataset::Skull, 32u32, 4u32, TransferFunction::bone()),
        (Dataset::Supernova, 32, 1, TransferFunction::fire()),
        (Dataset::Plume, 16, 2, TransferFunction::smoke()),
    ];

    // One session per dataset, all over the same pool; the directory pins
    // each (cluster, volume, config) to its owning node, so a dataset's
    // frames keep hitting the node whose plan cache is warm.
    let mut rendered = 0u32;
    for (dataset, base, gpus, transfer) in &datasets {
        let volume = dataset.volume(*base);
        let spec = ClusterSpec::accelerator_cluster(*gpus);
        let session = pool.session(spec.clone(), volume.clone(), cfg.clone());
        let owner = pool.node_for(&SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: Scene::orbit(&volume, 0.0, 15.0, transfer.clone()),
            config: cfg.clone(),
            priority: Priority::Normal,
        });
        for i in 0..4 {
            let az = i as f32 * 85.0;
            let frame = session
                .render(Scene::orbit(&volume, az, 15.0, transfer.clone()))
                .expect("pooled render");
            let scene = Scene::orbit(&volume, az, 15.0, transfer.clone());
            let direct = gpumr::volren::render(&spec, &volume, &scene, &cfg);
            assert_eq!(
                *frame.image, direct.image,
                "pooled frame must be bit-identical to a direct render"
            );
            rendered += 1;
        }
        println!(
            "{:>10}: 4 frames via node {owner} — all bit-identical",
            dataset.name()
        );
    }

    // Pool-level merged accounting across both nodes.
    let merged = pool.report().expect("merged pool report");
    assert_eq!(merged.frames_completed, rendered as u64);
    println!(
        "\npool report: {} frames over {} nodes, {:.1} frames/s wall",
        merged.frames_completed,
        pool.node_count(),
        merged.frames_per_sec()
    );
    for (node, stats) in pool.node_stats().into_iter().enumerate() {
        let stats = stats.expect("node reachable");
        println!(
            "  node {node}: {} frames, {} shards",
            stats.merged.frames_completed,
            stats.shards.len()
        );
    }

    // Drain-and-rejoin finale: park a burst of tickets on the skull's
    // owner, drain it mid-flight, and redeem every ticket — a draining
    // node answers everything it owes while new work routes around it,
    // so not one admitted frame is lost. Then RESUME rejoins the node.
    let skull = Dataset::Skull.volume(32);
    let spec = ClusterSpec::accelerator_cluster(4);
    let probe = SceneRequest {
        spec: spec.clone(),
        volume: skull.clone(),
        scene: Scene::orbit(&skull, 200.0, 15.0, TransferFunction::bone()),
        config: cfg.clone(),
        priority: Priority::Normal,
    };
    let owner = pool.node_for(&probe);
    println!("\ndraining node {owner} (owns the skull) with work in flight…");
    let scenes: Vec<Scene> = (0..6)
        .map(|i| {
            Scene::orbit(
                &skull,
                200.0 + i as f32 * 7.0,
                15.0,
                TransferFunction::bone(),
            )
        })
        .collect();
    let tickets: Vec<PoolTicket> = scenes
        .iter()
        .map(|scene| {
            pool.submit(SceneRequest {
                spec: spec.clone(),
                volume: skull.clone(),
                scene: scene.clone(),
                config: cfg.clone(),
                priority: Priority::Normal,
            })
            .expect("submit before the drain")
        })
        .collect();
    let state = pool.drain_node(owner).expect("drain the owner");
    println!(
        "  drain acknowledged: {} outstanding, epoch now {}",
        state.outstanding,
        pool.epoch()
    );
    for (scene, ticket) in scenes.iter().zip(tickets) {
        let frame = pool.redeem(ticket).expect("redeem during the drain");
        let direct = gpumr::volren::render(&spec, &skull, scene, &cfg);
        assert_eq!(
            *frame.image, direct.image,
            "a redemption from a draining node must stay bit-identical"
        );
    }
    while !pool.node_drained(owner) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    println!(
        "  all {} tickets redeemed bit-identically; node {owner} drained clean",
        scenes.len()
    );

    pool.resume_node(owner).expect("resume the drained node");
    println!("  node {owner} resumed — epoch {}", pool.epoch());
    let frame = pool.render(probe.clone()).expect("render after rejoin");
    let direct = gpumr::volren::render(&spec, &skull, &probe.scene, &cfg);
    assert_eq!(
        *frame.image, direct.image,
        "post-rejoin render must stay bit-identical"
    );
    println!(
        "  render after rejoin lands on node {}",
        pool.node_for(&probe)
    );

    // Failover finale: kill the skull's owning node, render again — the
    // pool absorbs the loss within its retry budget and the survivor
    // delivers the identical pixels.
    let skull = Dataset::Skull.volume(32);
    let spec = ClusterSpec::accelerator_cluster(4);
    let request = SceneRequest {
        spec: spec.clone(),
        volume: skull.clone(),
        scene: Scene::orbit(&skull, 123.0, 15.0, TransferFunction::bone()),
        config: cfg.clone(),
        priority: Priority::Normal,
    };
    let owner = pool.node_for(&request);
    println!("\nkilling node {owner} (owns the skull) mid-run…");
    nodes[owner].take().unwrap().shutdown();

    let frame = pool.render(request.clone()).expect("failover render");
    let direct = gpumr::volren::render(&spec, &skull, &request.scene, &cfg);
    assert_eq!(
        *frame.image, direct.image,
        "failover must not change a single pixel"
    );
    println!("frame completed on the survivor — still bit-identical");

    let stats = pool.node_stats();
    assert!(stats[owner].is_err(), "dead node reports its error");
    assert!(stats[1 - owner].is_ok());
    println!(
        "node {owner} now reports: {}",
        stats[owner].as_ref().unwrap_err()
    );

    RenderBackend::shutdown(pool);
    if let Some(survivor) = nodes.into_iter().flatten().next() {
        let report = survivor.shutdown();
        println!(
            "\nsurvivor drained: {} frames completed over its lifetime",
            report.frames_completed
        );
    }
}
