//! A miniature of the paper's Figure 3/4 sweep that runs in seconds: one
//! volume, GPU counts 1–32, phase breakdown and throughput per point.
//!
//!     cargo run --release --example scaling_sweep [size]

use gpumr::prelude::*;

fn main() {
    let size: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let volume = Dataset::Skull.volume(size);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let config = RenderConfig::default();

    println!("skull {size}^3, 512^2 image — the paper's Figure 3 axes\n");
    println!(
        "{:>5} {:>7} {:>9} {:>12} {:>9} {:>9} {:>10} {:>7}",
        "gpus", "bricks", "map ms", "part+io ms", "sort ms", "red ms", "total ms", "fps"
    );
    let mut best: Option<(u32, f64)> = None;
    for gpus in [1u32, 2, 4, 8, 16, 32] {
        let cluster = ClusterSpec::accelerator_cluster(gpus);
        let out = render(&cluster, &volume, &scene, &config);
        let b = out.report.breakdown();
        let total = out.report.runtime().as_millis_f64();
        println!(
            "{:>5} {:>7} {:>9.1} {:>12.1} {:>9.2} {:>9.2} {:>10.1} {:>7.2}",
            gpus,
            out.report.bricks,
            b.map.as_millis_f64(),
            b.partition_io.as_millis_f64(),
            b.sort.as_millis_f64(),
            b.reduce.as_millis_f64(),
            total,
            out.report.fps()
        );
        if best.map(|(_, t)| total < t).unwrap_or(true) {
            best = Some((gpus, total));
        }
    }
    let (g, t) = best.unwrap();
    println!(
        "\nbest configuration: {g} GPUs at {t:.1} ms — the paper found 8 GPUs \
         optimal for volumes of this size (§5)"
    );
}
