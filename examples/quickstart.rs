//! Quickstart: render the Skull on a simulated 4-GPU node and write a PPM.
//!
//!     cargo run --release --example quickstart
//!
//! Prints the phase breakdown the library measures (the same accounting that
//! regenerates the paper's Figure 3) and writes `skull.ppm`.

use gpumr::prelude::*;

fn main() {
    // A 128³ procedural stand-in for the paper's Skull dataset.
    let volume = Dataset::Skull.volume(128);

    // One Accelerator-Cluster node: 4 Tesla C1060-class GPUs.
    let cluster = ClusterSpec::accelerator_cluster(4);

    // Orbit camera + CT-bone transfer function; 512² image (paper setup).
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let config = RenderConfig::default();

    let outcome = render(&cluster, &volume, &scene, &config);
    let report = &outcome.report;

    println!(
        "rendered {} on {} GPUs ({} bricks)",
        report.volume_label, report.gpus, report.bricks
    );
    println!("frame time (simulated 2010 cluster): {}", report.runtime());
    println!("  map:            {}", report.breakdown().map);
    println!("  partition+i/o:  {}", report.breakdown().partition_io);
    println!("  sort:           {}", report.breakdown().sort);
    println!("  reduce:         {}", report.breakdown().reduce);
    println!(
        "throughput: {:.2} FPS, {:.0}M voxels/s",
        report.fps(),
        report.vps() / 1e6
    );
    println!(
        "fragments: {} reduced over {} pixels; {} batches on the wire",
        report.job.reduced_items, report.job.reduced_groups, report.job.batches
    );

    outcome
        .image
        .write_ppm("skull.ppm")
        .expect("writing skull.ppm");
    println!("wrote skull.ppm");
}
