//! Figure 2 reproduction: render all three datasets (Skull, Supernova,
//! Plume) with their transfer functions and write PPMs.
//!
//!     cargo run --release --example render_datasets [base_size]
//!
//! `base_size` defaults to 128 (Skull/Supernova at 128³, Plume at
//! 128×128×512). The paper's full-size Plume is 512×512×2048 — pass 512 if
//! you have a few minutes.

use gpumr::prelude::*;
use gpumr::voldata::Dataset as Ds;

fn main() {
    let base: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);

    let cluster = ClusterSpec::accelerator_cluster(8);
    let config = RenderConfig::default();

    for dataset in Ds::ALL {
        let volume = dataset.volume(base);
        let tf = TransferFunction::for_dataset(dataset.name());
        // A slightly raised vantage shows the plume column and skull face.
        let scene = Scene::orbit(&volume, 35.0, 15.0, tf);
        let outcome = render(&cluster, &volume, &scene, &config);
        let file = format!("{}.ppm", dataset.name());
        outcome.image.write_ppm(&file).expect("writing image");
        println!(
            "{:<10} {:>16}  frame {:>10}  coverage {:>5.1}%  -> {}",
            dataset.name(),
            outcome.report.volume_label,
            outcome.report.runtime().to_string(),
            outcome.image.coverage(0.02) * 100.0,
            file
        );
    }
}
