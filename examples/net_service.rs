//! The render service on the wire, driven through the same `RenderBackend`
//! trait as the in-process services: a [`RenderServer`] (2 shards,
//! per-session rate limiting) serves two [`RemoteBackend`] clients over
//! localhost — one orbiting the skull, one the supernova — plus a repeated
//! view that comes back from the frame cache without a render. Every
//! delivered frame is verified bit-identical to a direct `render` call; the
//! `STATS` round-trip shows the per-shard heat the routing produced; a
//! final vignette shows the token bucket throttling a client that submits
//! faster than its budget (visible on the raw [`RenderClient`] — the
//! backend wrapper would politely sleep the throttle out).
//!
//!     cargo run --release --example net_service

use gpumr::prelude::*;

fn main() {
    let server = RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        // Generous per-session budget: the demo clients stay under it.
        rate_limit: Some(RateLimitConfig::new(200.0, 64)),
        ..ServerConfig::default()
    })
    .expect("bind a loopback port");
    println!("render server listening on {} (2 shards)\n", server.addr());

    let cfg = RenderConfig::test_size(64);
    let frames_per_client = 8;

    // Two backends = two connections (sessions); the SAME session code
    // would run over a local RenderService — that is the point of the
    // trait. Explicit timeouts: a dead node fails the call instead of
    // hanging it.
    let client_cfg = ClientConfig {
        connect_timeout: Some(std::time::Duration::from_secs(5)),
        read_timeout: Some(std::time::Duration::from_secs(120)),
        ..ClientConfig::default()
    };
    let skull_backend =
        RemoteBackend::connect_with(server.addr(), client_cfg).expect("connect skull client");
    let nova_backend =
        RemoteBackend::connect_with(server.addr(), client_cfg).expect("connect nova client");
    println!(
        "clients connected (server reports {} shards)\n",
        skull_backend.shards()
    );

    let skull = Dataset::Skull.volume(32);
    let nova = Dataset::Supernova.volume(32);
    // Distinct (volume, cluster) keys that rendezvous-route to distinct
    // shards (routing is deterministic, so this split is stable).
    let skull_session = skull_backend.session(
        ClusterSpec::accelerator_cluster(4),
        skull.clone(),
        cfg.clone(),
    );
    let nova_session = nova_backend.session(
        ClusterSpec::accelerator_cluster(1),
        nova.clone(),
        cfg.clone(),
    );

    let mut rendered = 0u32;
    let mut cache_hits = 0u32;
    for i in 0..frames_per_client {
        let az = i as f32 * (360.0 / frames_per_client as f32);
        for (session, volume, gpus, transfer) in [
            (&skull_session, &skull, 4, TransferFunction::bone()),
            (&nova_session, &nova, 1, TransferFunction::fire()),
        ] {
            let frame = session
                .render(Scene::orbit(volume, az, 20.0, transfer.clone()))
                .expect("render over the socket");

            // The ground truth, built locally without the wire types.
            let spec = ClusterSpec::accelerator_cluster(gpus);
            let scene = Scene::orbit(volume, az, 20.0, transfer);
            let direct = gpumr::volren::render(&spec, volume, &scene, &cfg);
            assert_eq!(
                *frame.image, direct.image,
                "socket frame must be bit-identical to a direct render"
            );
            rendered += 1;
            cache_hits += frame.from_cache as u32;
        }
    }
    println!("{rendered} frames fetched over TCP, all bit-identical to direct renders");

    // The same view again: answered from the frame cache, no render.
    let frame = skull_session
        .render(Scene::orbit(&skull, 0.0, 20.0, TransferFunction::bone()))
        .expect("repeat view");
    assert!(frame.from_cache, "repeated view must hit the frame cache");
    assert_eq!(frame.sim_frame, std::time::Duration::ZERO);
    println!("repeated view served from the frame cache (no render, sim time zero)\n");
    cache_hits += 1;

    // Trait-level accounting plus the wire-only heat view.
    let merged = skull_backend.report().expect("report over the socket");
    assert_eq!(merged.frames_completed, (rendered + 1) as u64);
    assert_eq!(merged.cache_hits, cache_hits as u64);
    let stats_client = RenderClient::connect(server.addr()).expect("stats connection");
    let stats = stats_client.stats().expect("stats over the socket");
    println!("server stats as seen over the wire:\n{stats}\n");
    assert!(
        stats.shards.iter().all(|h| h.frames_completed > 0),
        "both shards served traffic"
    );

    drop(skull_session);
    drop(nova_session);
    let last_seen = RenderBackend::shutdown(skull_backend);
    assert_eq!(last_seen.frames_completed, (rendered + 1) as u64);
    let report = server.shutdown();
    println!(
        "main server drained: {} frames completed, {:.1} frames/s wall\n",
        report.frames_completed,
        report.frames_per_sec()
    );

    // Rate-limit vignette on the RAW client: 2 frames of budget, then
    // typed throttling with an exact retry-after. (RemoteBackend would
    // sleep the retry_after out instead of surfacing it.)
    let throttled_server = RenderServer::start(ServerConfig {
        shards: 1,
        rate_limit: Some(RateLimitConfig::new(0.5, 2)),
        ..ServerConfig::default()
    })
    .expect("bind throttle demo server");
    let hasty = RenderClient::connect(throttled_server.addr()).expect("connect");
    let tiny =
        NetSceneRequest::orbit_dataset(Dataset::Skull, 16, 1, 0.0, 0.0, &TransferFunction::bone())
            .with_config(RenderConfig::test_size(32));
    let mut throttled = 0;
    for i in 0..4 {
        match hasty.render(&tiny.clone().with_azimuth(i as f32 * 10.0)) {
            Ok(_) => println!("hasty client: frame {i} admitted"),
            Err(ClientError::Throttled { retry_after }) => {
                throttled += 1;
                println!(
                    "hasty client: frame {i} throttled, retry in {:.1} s",
                    retry_after.as_secs_f64()
                );
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(throttled, 2, "burst of 2, then the token bucket says no");
    let report = throttled_server.shutdown();
    println!(
        "\nthrottle demo: {} admitted, {} throttled at the door (never queued)",
        report.frames_completed, throttled
    );
}
