//! Pluggability (§6.1): "It is straightforward to change either the
//! volume-sampling technique or the compositing technique, without changing
//! both." This example swaps the compositor to binary-swap, the partitioner
//! to tiles, turns the combiner on, and uses a custom transfer function —
//! all without touching the library.
//!
//!     cargo run --release --example custom_pipeline

use gpumr::prelude::*;
use gpumr::volren::transfer::ControlPoint;
use gpumr::volren::{Compositor, PartitionStrategy};

fn main() {
    let volume = Dataset::Supernova.volume(128);

    // A custom transfer function from raw control points.
    let tf = TransferFunction::from_points(
        "custom-teal",
        vec![
            ControlPoint {
                value: 0.0,
                rgba: [0.0, 0.0, 0.0, 0.0],
            },
            ControlPoint {
                value: 0.2,
                rgba: [0.0, 0.3, 0.4, 0.02],
            },
            ControlPoint {
                value: 0.6,
                rgba: [0.2, 0.9, 0.8, 0.3],
            },
            ControlPoint {
                value: 1.0,
                rgba: [1.0, 1.0, 0.9, 0.9],
            },
        ],
    );
    let scene = Scene::orbit(&volume, 45.0, 25.0, tf);
    let cluster = ClusterSpec::accelerator_cluster(8);

    // The paper's default pipeline...
    let default_cfg = RenderConfig::default();
    let default_run = render(&cluster, &volume, &scene, &default_cfg);

    // ...and a re-plumbed one: binary-swap compositing, tiled partitioning,
    // combine stage enabled.
    let custom_cfg = RenderConfig {
        compositor: Compositor::BinarySwap,
        partition: PartitionStrategy::Tiled { tile: 64 },
        combiner: true,
        ..RenderConfig::default()
    };
    let custom_run = render(&cluster, &volume, &scene, &custom_cfg);

    println!(
        "default  (direct-send, round-robin): {}",
        default_run.report.runtime()
    );
    println!(
        "custom   (binary-swap, tiled, comb): {}",
        custom_run.report.runtime()
    );

    // Over is associative, so the pixels must agree regardless of plumbing.
    let diff = default_run.image.max_abs_diff(&custom_run.image);
    println!("max pixel difference between pipelines: {diff:e} (must be ~0)");
    assert!(diff < 1e-4);

    custom_run
        .image
        .write_ppm("supernova_custom.ppm")
        .expect("write");
    println!("wrote supernova_custom.ppm");
}
