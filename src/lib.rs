//! # gpumr — Multi-GPU Volume Rendering using MapReduce
//!
//! A full Rust reproduction of *"Multi-GPU Volume Rendering using MapReduce"*
//! (Stuart, Chen, Ma, Owens — HPDC/MAPREDUCE 2010) on a simulated GPU
//! cluster. This facade crate re-exports the public API of the workspace:
//!
//! * [`sim`] — discrete-event simulation engine and cost models;
//! * [`gpu`] — the software GPU (textures, VRAM, grid/block kernels, PCIe);
//! * [`cluster`] — cluster topology, disks and the interconnect;
//! * [`mapreduce`] — the paper's streaming multi-GPU MapReduce library;
//! * [`voldata`] — procedural volume datasets and the out-of-core brick store;
//! * [`volren`] — the ray-casting volume renderer built on all of the above;
//! * [`serve`] — the multi-scene render service (job queue with admission
//!   control, frame batching, cross-batch plan cache, frame cache, shard
//!   router) layered on the renderer, and the [`serve::RenderBackend`]
//!   trait every front-end implements;
//! * [`net`] — the service on the wire: protocol,
//!   [`net::RenderServer`]/[`net::RenderClient`], per-session rate
//!   limiting, per-shard heat stats, plus the remote backends —
//!   [`net::RemoteBackend`] (one server) and [`net::NodePool`] (N servers
//!   behind a live, epoch-versioned placement [`net::Directory`] with
//!   retry budgets, failover, zero-loss graceful drains and heat-driven
//!   [`net::rebalance`]) — behind the same trait;
//! * [`obs`] — the observability layer: the unified metrics
//!   [`obs::Registry`] (counters, gauges, log₂ histograms) with exactly
//!   mergeable [`obs::Snapshot`]s, and per-request [`obs::Trace`]s whose
//!   stage spans land in a bounded ring served by the `TRACES` wire
//!   request and the `obs_top` dashboard.
//!
//! ## Quickstart
//!
//! ```no_run
//! use gpumr::prelude::*;
//!
//! // A 128³ procedural "skull" on a 1-node × 4-GPU simulated cluster.
//! let volume = Dataset::Skull.volume(128);
//! let cluster = ClusterSpec::accelerator_cluster(4);
//! let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
//! let config = RenderConfig::default();
//! let outcome = render(&cluster, &volume, &scene, &config);
//! println!("frame in {}", outcome.report.accounting.makespan);
//! outcome.image.write_ppm("skull.ppm").unwrap();
//! ```

#![forbid(unsafe_code)]

pub use mgpu_cluster as cluster;
pub use mgpu_gpu as gpu;
pub use mgpu_mapreduce as mapreduce;
pub use mgpu_net as net;
pub use mgpu_obs as obs;
pub use mgpu_serve as serve;
pub use mgpu_sim as sim;
pub use mgpu_voldata as voldata;
pub use mgpu_volren as volren;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use mgpu_cluster::topology::ClusterSpec;
    pub use mgpu_net::{
        rebalance_once, ClientConfig, ClientError, Directory, DirectoryError, DrainState,
        MigrationReport, NetFrame, NetSceneRequest, NetStats, NetTicket, NodeError, NodePool,
        NodePoolConfig, PendingRender, PoolConfigError, PoolTicket, RateLimitConfig,
        RebalanceConfig, RebalanceOutcome, Rebalancer, RemoteBackend, RenderClient, RenderServer,
        RetryBudget, ServerConfig, WireError,
    };
    pub use mgpu_obs::{CompletedTrace, Counter, Gauge, Histogram, Registry, Snapshot, Trace};
    pub use mgpu_serve::{
        AdmissionError, BackendError, BackendFrame, CacheSnapshot, FrameError, FrameTicket,
        Priority, QueueBounds, RenderBackend, RenderService, RenderedFrame, SceneRequest,
        SceneSession, ServiceConfig, ServiceReport, SessionTicket, ShardHeat, ShardedService,
    };
    pub use mgpu_sim::{Fig3Bucket, SimDuration};
    pub use mgpu_voldata::datasets::Dataset;
    pub use mgpu_volren::camera::Scene;
    pub use mgpu_volren::config::RenderConfig;
    pub use mgpu_volren::renderer::{render, render_planned, FramePlan, RenderOutcome};
    pub use mgpu_volren::transfer::TransferFunction;
}
