#!/usr/bin/env bash
# Print a one-line frames/sec delta between two smoke-bench JSON artifacts
# (the previous run's and this run's), e.g.:
#
#   bench serve: frames/sec 118.40 -> 124.91 (+5.5%)
#
# Usage: ci/bench_delta.sh <previous.json> <current.json> <label>
# Missing files are reported, never fatal — the delta is advisory.
set -euo pipefail

prev="${1:?previous json}"
curr="${2:?current json}"
label="${3:?label}"

fps() {
    # The artifacts are flat one-field-per-line JSON written by
    # mgpu_bench::JsonObject; no jq in the base image, sed suffices.
    sed -n 's/^[[:space:]]*"frames_per_sec":[[:space:]]*\([0-9.][0-9.]*\).*$/\1/p' "$1" | head -1
}

if [ ! -f "$curr" ]; then
    echo "bench $label: no current artifact ($curr missing)"
    exit 0
fi
now="$(fps "$curr")"
if [ ! -f "$prev" ]; then
    echo "bench $label: frames/sec $now (no previous artifact to diff against)"
    exit 0
fi
before="$(fps "$prev")"
awk -v b="$before" -v n="$now" -v l="$label" 'BEGIN {
    if (b + 0 == 0) { printf "bench %s: frames/sec %s (previous artifact unreadable)\n", l, n; exit }
    printf "bench %s: frames/sec %.2f -> %.2f (%+.1f%%)\n", l, b, n, (n - b) / b * 100
}'
