#!/usr/bin/env bash
# Gate a smoke-bench JSON artifact against the previous run's: print the
# frames/sec delta and FAIL when throughput regressed past the tolerance
# band, e.g.:
#
#   bench serve: frames/sec 118.40 -> 124.91 (+5.5%)
#   bench net: frames/sec 130.00 -> 70.00 (-46.2%)  REGRESSION (tolerance -25%)
#
# Usage: ci/bench_delta.sh <previous.json> <current.json> <label> [tolerance_pct]
#
#   tolerance_pct  how far frames/sec may drop before the gate fails,
#                  as a positive percentage (default 25 — wide enough to
#                  absorb shared-runner jitter on smoke benches, tight
#                  enough to catch step-function regressions).
#
# Escape hatches (both exit 0 with the delta still printed):
#   * BENCH_SKIP=1 in the environment, set by CI when the head commit
#     message contains [bench-skip] — for commits that knowingly trade
#     throughput (say, correctness fixes) and say so.
#   * a missing previous artifact (first run, expired retention): there is
#     nothing sound to gate against.
set -euo pipefail

prev="${1:?previous json}"
curr="${2:?current json}"
label="${3:?label}"
tolerance="${4:-25}"

fps() {
    # The artifacts are flat one-field-per-line JSON written by
    # mgpu_bench::JsonObject; no jq in the base image, sed suffices.
    sed -n 's/^[[:space:]]*"frames_per_sec":[[:space:]]*\([0-9.][0-9.]*\).*$/\1/p' "$1" | head -1
}

if [ ! -f "$curr" ]; then
    echo "bench $label: FAIL — no current artifact ($curr missing)"
    exit 1
fi
now="$(fps "$curr")"
if [ -z "$now" ]; then
    echo "bench $label: FAIL — current artifact has no frames_per_sec field"
    exit 1
fi
if [ ! -f "$prev" ]; then
    echo "bench $label: frames/sec $now (no previous artifact to gate against)"
    exit 0
fi
before="$(fps "$prev")"

skip="${BENCH_SKIP:-0}"
awk -v b="$before" -v n="$now" -v l="$label" -v tol="$tolerance" -v skip="$skip" 'BEGIN {
    if (b + 0 == 0) {
        printf "bench %s: frames/sec %s (previous artifact unreadable)\n", l, n
        exit 0
    }
    delta = (n - b) / b * 100
    if (delta < -tol) {
        if (skip + 0 == 1) {
            printf "bench %s: frames/sec %.2f -> %.2f (%+.1f%%)  regression waived by [bench-skip]\n", l, b, n, delta
            exit 0
        }
        printf "bench %s: frames/sec %.2f -> %.2f (%+.1f%%)  REGRESSION (tolerance -%s%%)\n", l, b, n, delta, tol
        exit 1
    }
    printf "bench %s: frames/sec %.2f -> %.2f (%+.1f%%)\n", l, b, n, delta
}'
