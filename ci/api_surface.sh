#!/usr/bin/env bash
# Public-API surface listing: every item page `cargo doc` generates for the
# workspace's own crates, one path per line, sorted. CI diffs this against
# the checked-in snapshot (ci/api-surface.txt) so API additions, removals
# and renames only land when the snapshot is updated in the same change —
# i.e. deliberately.
#
#   ci/api_surface.sh            print the current listing to stdout
#   ci/api_surface.sh --update   regenerate ci/api-surface.txt in place
#   ci/api_surface.sh --check    diff current listing against the snapshot
set -euo pipefail
cd "$(dirname "$0")/.."

listing() {
    cargo doc --workspace --no-deps --quiet >&2
    # One line per documented item: struct./enum./trait./fn./constant./
    # type. pages, scoped by crate and module directory. index/all/sidebar
    # pages carry no API identity and are skipped.
    (
        cd target/doc
        find gpumr mgpu_* -name '*.html' \
            ! -name 'index.html' ! -name 'all.html' ! -name 'sidebar-items.js' \
            | LC_ALL=C sort
    )
}

case "${1:-}" in
--update)
    listing > ci/api-surface.txt
    echo "ci/api-surface.txt updated ($(wc -l < ci/api-surface.txt) items)" >&2
    ;;
--check)
    listing > /tmp/api-surface.current
    if ! diff -u ci/api-surface.txt /tmp/api-surface.current; then
        echo >&2
        echo "public API surface changed: review the diff above and, if" >&2
        echo "intended, run ci/api_surface.sh --update and commit it." >&2
        exit 1
    fi
    echo "public API surface matches the checked-in snapshot" >&2
    ;;
*)
    listing
    ;;
esac
