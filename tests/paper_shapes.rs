//! Shape assertions against the paper's claims, at test-friendly scale.
//! (The full-scale figures come from `cargo bench -p mgpu-bench`; these
//! tests pin the qualitative structure so a regression cannot slip in.)
//!
//! The sweep is computed **once** for the whole binary (the tests only read
//! it), and the largest GPU counts — the expensive points that exist to pin
//! the communication crossover — run in release builds only. Debug builds
//! keep the 1–8 GPU band, which is where every remaining debug assertion
//! lives; `cargo test --release` still checks the full curve.

use std::sync::OnceLock;

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Dataset;
use gpumr::volren::camera::Scene;
use gpumr::volren::renderer::{render, RenderReport};
use gpumr::volren::{RenderConfig, TransferFunction};

/// GPU counts under test: the full paper band in release, the cheap 1–8
/// prefix in debug (the 16/32-GPU points dominate debug wall-clock).
fn gpu_counts() -> &'static [u32] {
    if cfg!(debug_assertions) {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

/// Render skull-128³ at the paper's 512² image across GPU counts — shared
/// across every test in this binary via a lazy static.
fn sweep() -> &'static [(u32, RenderReport)] {
    static SWEEP: OnceLock<Vec<(u32, RenderReport)>> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let volume = Dataset::Skull.volume(128);
        let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
        let cfg = RenderConfig::default(); // 512², the paper's image size
        gpu_counts()
            .iter()
            .map(|&gpus| {
                let spec = ClusterSpec::accelerator_cluster(gpus);
                (gpus, render(&spec, &volume, &scene, &cfg).report)
            })
            .collect()
    })
}

fn report_at(gpus: u32) -> &'static RenderReport {
    &sweep().iter().find(|(g, _)| *g == gpus).unwrap().1
}

#[test]
fn figure3_shapes_hold() {
    let reports = sweep();

    // 1. Map (kernel side) time shrinks monotonically with more GPUs.
    for w in reports.windows(2) {
        assert!(
            w[1].1.breakdown().map < w[0].1.breakdown().map,
            "map must shrink: {} GPUs {} vs {} GPUs {}",
            w[0].0,
            w[0].1.breakdown().map,
            w[1].0,
            w[1].1.breakdown().map
        );
    }

    // 2. Communication grows once the cluster spans nodes (8+ GPUs).
    //    The 16/32-GPU points are release-only.
    let part = |g: u32| report_at(g).breakdown().partition_io;
    if !cfg!(debug_assertions) {
        assert!(part(16) > part(8));
        assert!(part(32) > part(16));
    }

    // 3. The paper's crossover: a middling GPU count wins; 32 GPUs is worse
    //    ("with more than 8 GPUs, there is too much communication").
    let total = |g: u32| report_at(g).runtime();
    let best = gpu_counts()
        .iter()
        .copied()
        .min_by_key(|g| total(*g))
        .unwrap();
    assert!(
        best == 4 || best == 8,
        "best config must sit in the paper's 4–8 band, got {best}"
    );
    assert!(total(1) > total(best));
    if !cfg!(debug_assertions) {
        assert!(total(32) > total(best));
    }
}

#[test]
fn section63_comm_overtakes_compute() {
    if cfg!(debug_assertions) {
        // Needs the 32-GPU point, which only the release sweep renders.
        return;
    }
    let r8 = report_at(8);
    let r32 = report_at(32);
    let ratio8 = r8.accounting.communication_demand.as_secs_f64()
        / r8.accounting.computation_demand.as_secs_f64();
    let ratio32 = r32.accounting.communication_demand.as_secs_f64()
        / r32.accounting.computation_demand.as_secs_f64();
    // "As the number of GPUs grows large, the communication time for
    // fragments is the dominant part of the algorithm."
    assert!(
        ratio32 > ratio8,
        "comm/compute must grow: {ratio8} -> {ratio32}"
    );
    assert!(
        ratio32 > 1.0,
        "at 32 GPUs communication must dominate: {ratio32}"
    );
}

#[test]
fn more_gpus_more_fragments() {
    // §5/Figure 3 caption: "As more GPUs are added, more ray fragments
    // generated" (bricks scale with GPUs for small volumes).
    let frags: Vec<u64> = sweep().iter().map(|(_, r)| r.job.reduced_items).collect();
    assert!(frags.windows(2).all(|w| w[1] >= w[0]), "{frags:?}");
    assert!(
        frags.last().unwrap() > frags.first().unwrap(),
        "the largest GPU count must emit more fragments than 1"
    );
}

#[test]
fn footnote_paraview_comparison_shape() {
    // At test scale we check the *machinery*: VPS computed, baseline wired.
    let r8 = report_at(8);
    let pv = gpumr::volren::baseline::ParaViewClassBaseline::moreland_cray_xt3();
    assert!(r8.vps() > 0.0);
    assert!((pv.total_vps - 346e6).abs() < 1.0);
}
