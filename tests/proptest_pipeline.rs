//! Property tests across the whole stack: random volumes, random cameras,
//! random brickings — the MapReduce render must match the reference, and the
//! compositing algebra must hold for arbitrary fragment sets.

use proptest::prelude::*;

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Volume;
use gpumr::volren::baseline::reference_render;
use gpumr::volren::camera::Scene;
use gpumr::volren::composite::{composite_sorted, composite_unsorted, over};
use gpumr::volren::renderer::render;
use gpumr::volren::{Fragment, RenderConfig, TransferFunction};

fn random_volume(seed: u64, dim: usize) -> Volume {
    // Smooth-ish random voxels: hash lattice, so neighbouring runs differ.
    let mut data = Vec::with_capacity(dim * dim * dim);
    let mut s = seed | 1;
    for _ in 0..dim * dim * dim {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        data.push(((s >> 40) as f32) / (1u64 << 24) as f32);
    }
    Volume::in_memory("prop", [dim as u32; 3], data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bricked_render_matches_reference(
        seed in 1u64..u64::MAX,
        az in 0f32..360.0,
        el in -60f32..60.0,
        gpus in 1u32..9,
        bricks_per_gpu in 1u32..4,
    ) {
        let volume = random_volume(seed, 16);
        let scene = Scene::orbit(&volume, az, el, TransferFunction::grayscale());
        let mut cfg = RenderConfig::test_size(48);
        cfg.early_term = 1.1;
        cfg.bricks_per_gpu = bricks_per_gpu;
        let reference = reference_render(&volume, &scene, &cfg);
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let out = render(&spec, &volume, &scene, &cfg);
        let diff = out.image.max_abs_diff(&reference);
        prop_assert!(diff < 5e-4, "diff {diff} at seed {seed} az {az} el {el} gpus {gpus}");
        prop_assert!(out.report.job.conserved());
    }

    #[test]
    fn over_associativity(
        colors in prop::collection::vec((0f32..1.0, 0f32..1.0, 0f32..1.0, 0f32..1.0), 2..8)
    ) {
        // Premultiply to valid fragments.
        let frags: Vec<[f32; 4]> = colors
            .iter()
            .map(|(r, g, b, a)| [r * a, g * a, b * a, *a])
            .collect();
        // Left fold vs right fold.
        let left = frags.iter().fold([0f32; 4], |acc, f| over(acc, *f));
        let right = frags.iter().rev().fold([0f32; 4], |acc, f| over(*f, acc));
        for c in 0..4 {
            prop_assert!((left[c] - right[c]).abs() < 1e-4, "channel {c}: {left:?} vs {right:?}");
        }
    }

    #[test]
    fn composite_is_permutation_invariant(
        mut depths in prop::collection::vec(0f32..100.0, 1..10),
        alphas in prop::collection::vec(0.01f32..1.0, 10),
        rotate in 0usize..10,
    ) {
        depths.sort_by(f32::total_cmp);
        depths.dedup();
        let frags: Vec<Fragment> = depths
            .iter()
            .zip(&alphas)
            .map(|(&d, &a)| Fragment {
                color: [0.3 * a, 0.5 * a, 0.7 * a, a],
                depth: d,
                exit: d + 0.5,
            })
            .collect();
        let sorted = composite_sorted(&frags, [0.1, 0.2, 0.3, 1.0]);
        let mut rotated = frags.clone();
        let n = rotated.len().max(1);
        rotated.rotate_left(rotate % n);
        let recomposed = composite_unsorted(&mut rotated, [0.1, 0.2, 0.3, 1.0]);
        for c in 0..4 {
            prop_assert!((sorted[c] - recomposed[c]).abs() < 1e-5);
        }
    }

    #[test]
    fn alpha_is_monotone_in_fragment_count(
        alphas in prop::collection::vec(0.05f32..0.9, 1..8)
    ) {
        // Adding a fragment behind can only increase accumulated alpha.
        let mut frags: Vec<Fragment> = Vec::new();
        let mut prev = 0f32;
        for (i, &a) in alphas.iter().enumerate() {
            frags.push(Fragment {
                color: [0.2 * a, 0.2 * a, 0.2 * a, a],
                depth: i as f32,
                exit: i as f32 + 1.0,
            });
            let out = composite_sorted(&frags, [0.0; 4]);
            prop_assert!(out[3] >= prev - 1e-6);
            prev = out[3];
        }
    }
}
