//! Invariants of the MapReduce pipeline, checked end-to-end on real renders.

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Dataset;
use gpumr::volren::camera::Scene;
use gpumr::volren::renderer::render;
use gpumr::volren::{RenderConfig, TransferFunction};

fn run(gpus: u32) -> gpumr::volren::renderer::RenderOutcome {
    let volume = Dataset::Skull.volume(32);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let cfg = RenderConfig::test_size(96);
    let spec = ClusterSpec::accelerator_cluster(gpus);
    render(&spec, &volume, &scene, &cfg)
}

#[test]
fn fragment_conservation() {
    for gpus in [1u32, 2, 8] {
        let out = run(gpus);
        let j = &out.report.job;
        assert!(j.conserved(), "at {gpus} GPUs: {j:?}");
        assert_eq!(j.emitted, j.sentinels + j.kept);
        // Without a combiner nothing may vanish between partition and reduce.
        assert_eq!(j.combined_away, 0);
        assert_eq!(j.kept, j.reduced_items);
    }
}

#[test]
fn every_thread_emitted() {
    let out = run(4);
    let j = &out.report.job;
    // Per the §3.1.1 restriction, emissions equal kernel threads: padding
    // and missing rays produce sentinels, so emitted ≥ kept and sentinels
    // must actually occur for a partially covered image.
    assert!(j.emitted > j.kept);
    assert!(j.sentinels > 0);
}

#[test]
fn reduced_groups_equal_covered_pixels() {
    let out = run(2);
    let j = &out.report.job;
    let covered = out.image.coverage(0.0) * (96.0 * 96.0);
    assert_eq!(j.reduced_groups as f64, covered.round());
}

#[test]
fn batch_routing_respects_topology() {
    // 4 GPUs = 1 node: nothing may cross the network.
    let single_node = run(4);
    assert_eq!(single_node.report.job.batches_inter_node, 0);
    assert!(single_node.report.job.batches_intra_node > 0);
    // 8 GPUs = 2 nodes: both kinds appear.
    let two_nodes = run(8);
    assert!(two_nodes.report.job.batches_inter_node > 0);
}

#[test]
fn phase_stack_equals_makespan() {
    for gpus in [1u32, 8, 16] {
        let out = run(gpus);
        assert_eq!(
            out.report.breakdown().total(),
            out.report.accounting.makespan
        );
    }
}

#[test]
fn overlap_factor_reflects_parallelism() {
    // With 8 GPUs the pipeline must actually overlap work: total service
    // demand must exceed the makespan by well over the single-GPU factor.
    let out = run(8);
    assert!(
        out.report.accounting.overlap_factor() > 2.0,
        "overlap factor {}",
        out.report.accounting.overlap_factor()
    );
}

#[test]
fn brick_counts_track_policy() {
    for gpus in [1u32, 4, 16] {
        let out = run(gpus);
        assert!(
            out.report.bricks >= (2 * gpus) as usize,
            "{} bricks for {gpus} GPUs",
            out.report.bricks
        );
        // The paper's factor-of-four guidance.
        assert!(out.report.bricks <= (8 * gpus).max(8) as usize);
    }
}

#[test]
fn vram_restriction_enforced() {
    // A brick larger than VRAM must be refused (§3.1.1 restriction #1).
    // 1024³ at 1 brick = 4 GiB + ghost > 4 GiB VRAM.
    let result = std::panic::catch_unwind(|| {
        let volume = Dataset::Skull.volume(64);
        let scene = Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone());
        let mut cfg = RenderConfig::test_size(32);
        cfg.max_brick_voxels = u64::MAX; // try to defeat the cap
        cfg.bricks_per_gpu = 1;
        let spec = ClusterSpec::accelerator_cluster(1);
        // 64³ easily fits; this configuration is fine and must succeed.
        render(&spec, &volume, &scene, &cfg)
    });
    assert!(result.is_ok());
}
