//! The central correctness property of the reproduction: rendering through
//! the full multi-GPU MapReduce pipeline must reproduce the unbricked
//! single-texture reference, for every dataset, GPU count and viewpoint.
//!
//! Ghost layers + the global ray-parameter sample grid + half-open segment
//! ownership are what make this hold; these tests would catch a regression
//! in any of them.

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Dataset;
use gpumr::volren::baseline::reference_render;
use gpumr::volren::camera::Scene;
use gpumr::volren::renderer::render;
use gpumr::volren::{RenderConfig, Residency, TransferFunction};

fn exact_cfg(image: u32) -> RenderConfig {
    let mut cfg = RenderConfig::test_size(image);
    cfg.early_term = 1.1; // ET truncates per brick; disable for exactness
    cfg
}

#[test]
fn every_dataset_matches_reference_across_gpu_counts() {
    for dataset in Dataset::ALL {
        let volume = dataset.volume(32);
        let tf = TransferFunction::for_dataset(dataset.name());
        let scene = Scene::orbit(&volume, 30.0, 20.0, tf);
        let cfg = exact_cfg(96);
        let reference = reference_render(&volume, &scene, &cfg);
        assert!(
            reference.coverage(0.01) > 0.02,
            "{} reference should be visible",
            dataset.name()
        );
        for gpus in [1u32, 3, 8] {
            let spec = ClusterSpec::accelerator_cluster(gpus);
            let out = render(&spec, &volume, &scene, &cfg);
            let diff = out.image.max_abs_diff(&reference);
            assert!(
                diff < 2e-4,
                "{} at {gpus} GPUs diverges from reference: {diff}",
                dataset.name()
            );
        }
    }
}

#[test]
fn many_viewpoints_match_reference() {
    let volume = Dataset::Supernova.volume(24);
    let cfg = exact_cfg(64);
    for (az, el) in [(0.0f32, 0.0f32), (90.0, 45.0), (200.0, -30.0), (45.0, 88.0)] {
        let scene = Scene::orbit(&volume, az, el, TransferFunction::fire());
        let reference = reference_render(&volume, &scene, &cfg);
        let spec = ClusterSpec::accelerator_cluster(4);
        let out = render(&spec, &volume, &scene, &cfg);
        let diff = out.image.max_abs_diff(&reference);
        assert!(diff < 2e-4, "view ({az},{el}) diverges: {diff}");
    }
}

#[test]
fn sub_voxel_steps_match_reference() {
    // Opacity correction must behave identically in bricked and unbricked
    // paths for non-unit steps.
    let volume = Dataset::Skull.volume(24);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let mut cfg = exact_cfg(64);
    cfg.step_voxels = 0.5;
    let reference = reference_render(&volume, &scene, &cfg);
    let spec = ClusterSpec::accelerator_cluster(4);
    let out = render(&spec, &volume, &scene, &cfg);
    assert!(out.image.max_abs_diff(&reference) < 2e-4);
}

#[test]
fn early_termination_divergence_is_bounded() {
    let volume = Dataset::Skull.volume(32);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let mut cfg = RenderConfig::test_size(96);
    cfg.early_term = 0.98;
    let reference = reference_render(&volume, &scene, &cfg);
    let spec = ClusterSpec::accelerator_cluster(8);
    let out = render(&spec, &volume, &scene, &cfg);
    let diff = out.image.max_abs_diff(&reference);
    assert!(
        diff <= (1.0 - 0.98) + 0.01,
        "ET divergence must stay below the residual transmittance bound: {diff}"
    );
}

#[test]
fn out_of_core_pixels_identical_to_in_core() {
    let volume = Dataset::Plume.volume(24); // 24×24×96
    let scene = Scene::orbit(&volume, 10.0, 5.0, TransferFunction::smoke());
    let mut cfg = RenderConfig::test_size(64);
    let spec = ClusterSpec::accelerator_cluster(4);

    cfg.residency = Residency::HostResident;
    let resident = render(&spec, &volume, &scene, &cfg);

    cfg.residency = Residency::Disk;
    cfg.host_cache_bytes = 64 << 10; // starve the cache: force re-materialization
    let streamed = render(&spec, &volume, &scene, &cfg);

    assert_eq!(resident.image, streamed.image);
    assert!(streamed.report.runtime() > resident.report.runtime());
    assert!(streamed.report.store.evictions > 0, "cache should thrash");
}

#[test]
fn file_backed_volume_matches_procedural() {
    let procedural = Dataset::Supernova.volume(24);
    let path = std::env::temp_dir().join(format!("gpumr_eq_{}.vol", std::process::id()));
    let data = procedural.materialize_full();
    gpumr::voldata::io::write_volume(&path, procedural.dims(), &data).unwrap();
    let file_volume = gpumr::voldata::Volume {
        meta: procedural.meta.clone(),
        source: gpumr::voldata::VolumeSource::File(path.clone()),
    };

    let scene = Scene::orbit(&procedural, 25.0, 15.0, TransferFunction::fire());
    let cfg = RenderConfig::test_size(64);
    let spec = ClusterSpec::accelerator_cluster(2);
    let a = render(&spec, &procedural, &scene, &cfg);
    let b = render(&spec, &file_volume, &scene, &cfg);
    assert_eq!(a.image, b.image, "file round-trip must be lossless");
    std::fs::remove_file(&path).ok();
}
