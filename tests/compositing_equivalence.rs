//! Pluggable compositing (§6.1): direct-send and binary-swap must produce
//! identical pixels (over is associative); the combiner must never change
//! results; partition strategy must never change results.

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Dataset;
use gpumr::volren::camera::Scene;
use gpumr::volren::renderer::render;
use gpumr::volren::{Compositor, PartitionStrategy, RenderConfig, TransferFunction};

fn scene_and_volume() -> (gpumr::voldata::Volume, Scene) {
    let volume = Dataset::Supernova.volume(32);
    let scene = Scene::orbit(&volume, 40.0, 10.0, TransferFunction::fire());
    (volume, scene)
}

#[test]
fn binary_swap_pixels_equal_direct_send() {
    let (volume, scene) = scene_and_volume();
    for gpus in [2u32, 4, 8, 16] {
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let mut cfg = RenderConfig::test_size(96);
        cfg.compositor = Compositor::DirectSend;
        let ds = render(&spec, &volume, &scene, &cfg);
        cfg.compositor = Compositor::BinarySwap;
        let bs = render(&spec, &volume, &scene, &cfg);
        assert_eq!(
            ds.image, bs.image,
            "compositor changed pixels at {gpus} GPUs"
        );
        // But the schedules differ: binary swap has synchronized rounds.
        assert_ne!(
            ds.report.runtime(),
            bs.report.runtime(),
            "schedules should differ at {gpus} GPUs"
        );
    }
}

#[test]
fn combiner_never_changes_pixels() {
    let (volume, scene) = scene_and_volume();
    let spec = ClusterSpec::accelerator_cluster(4);
    let mut cfg = RenderConfig::test_size(96);
    cfg.combiner = false;
    let off = render(&spec, &volume, &scene, &cfg);
    cfg.combiner = true;
    let on = render(&spec, &volume, &scene, &cfg);
    // Merging is algebraically exact (over-associativity) but reassociates
    // floating-point ops, so allow rounding-level differences only.
    let diff = off.image.max_abs_diff(&on.image);
    assert!(
        diff < 1e-5,
        "combiner changed pixels beyond rounding: {diff}"
    );
    // The combiner only merges provably adjacent segments; whatever it
    // merged must be accounted.
    assert_eq!(
        on.report.job.kept,
        on.report.job.combined_away + on.report.job.reduced_items
    );
}

#[test]
fn partition_strategy_never_changes_pixels() {
    let (volume, scene) = scene_and_volume();
    let spec = ClusterSpec::accelerator_cluster(8);
    let strategies = [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::Striped { rows_per_stripe: 8 },
        PartitionStrategy::Tiled { tile: 32 },
        PartitionStrategy::Checkerboard { cell: 16 },
    ];
    let mut reference: Option<gpumr::volren::Image> = None;
    for s in strategies {
        let mut cfg = RenderConfig::test_size(96);
        cfg.partition = s;
        let out = render(&spec, &volume, &scene, &cfg);
        match &reference {
            None => reference = Some(out.image),
            Some(r) => assert_eq!(r, &out.image, "{} changed pixels", s.label()),
        }
    }
}

#[test]
fn reduce_device_changes_schedule_not_pixels() {
    let (volume, scene) = scene_and_volume();
    let spec = ClusterSpec::accelerator_cluster(8);
    let mut cfg = RenderConfig::test_size(96);
    cfg.trace.reduce_on_gpu = false;
    let cpu = render(&spec, &volume, &scene, &cfg);
    cfg.trace.reduce_on_gpu = true;
    let gpu = render(&spec, &volume, &scene, &cfg);
    assert_eq!(cpu.image, gpu.image);
    // §3.1.2: CPU compositing wins at paper scale.
    assert!(cpu.report.runtime() <= gpu.report.runtime());
}

#[test]
fn async_upload_is_a_strict_improvement() {
    let (volume, scene) = scene_and_volume();
    let spec = ClusterSpec::accelerator_cluster(4);
    let mut cfg = RenderConfig::test_size(96);
    cfg.trace.async_upload = false;
    let sync = render(&spec, &volume, &scene, &cfg);
    cfg.trace.async_upload = true;
    let asy = render(&spec, &volume, &scene, &cfg);
    assert_eq!(sync.image, asy.image);
    assert!(asy.report.runtime() <= sync.report.runtime());
}
