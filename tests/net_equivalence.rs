//! End-to-end proof of the wire protocol's headline guarantee: a frame
//! requested through [`RenderClient`] over a real localhost socket — through
//! the per-session rate limiter and a ≥2-shard server — is **bit-identical**
//! to a direct `mgpu_volren::render` call whose inputs are constructed
//! independently on the client side. Also locks the fire-and-forget
//! submit/redeem path, the cache provenance flag, the `STATS` round-trip
//! and the typed error round-trips (throttle, admission, render failure).

use std::time::Duration;

use gpumr::net::{TransferSpec, VolumeSpec};
use gpumr::prelude::*;
use gpumr::voldata::Volume;
use gpumr::volren::transfer::ControlPoint;

fn test_server(shards: usize, rate: Option<RateLimitConfig>) -> RenderServer {
    RenderServer::start(ServerConfig {
        shards,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        rate_limit: rate,
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

/// The canonical request mix: two procedural datasets on different cluster
/// sizes (distinct batch keys spread over the shards), plus one repeated
/// view to exercise the frame cache across the wire.
#[test]
fn socket_frames_are_bit_identical_to_direct_renders() {
    // Rate limiter ON (generous): every frame below passes through it.
    let server = test_server(2, Some(RateLimitConfig::new(500.0, 64)));
    let client = RenderClient::connect(server.addr()).expect("connect");
    assert_eq!(client.shards(), 2);

    let cfg = RenderConfig::test_size(24);
    let cases: Vec<(Dataset, u32, u32, f32)> = vec![
        (Dataset::Skull, 16, 2, 0.0),
        (Dataset::Skull, 16, 2, 72.0),
        (Dataset::Supernova, 16, 1, 144.0),
        (Dataset::Plume, 8, 2, 216.0),
        (Dataset::Skull, 16, 2, 0.0), // repeat: must come from the cache
    ];
    let mut cache_hits = 0;
    for (dataset, base, gpus, az) in &cases {
        let transfer = TransferFunction::for_dataset(dataset.name());
        let request = NetSceneRequest::orbit_dataset(*dataset, *base, *gpus, *az, 20.0, &transfer)
            .with_config(cfg.clone());
        let frame = client.render(&request).expect("render over socket");

        // The ground truth is built WITHOUT the wire types: if any field
        // were lost or re-encoded lossily in transit, the pixels diverge.
        let spec = ClusterSpec::accelerator_cluster(*gpus);
        let volume = dataset.volume(*base);
        let scene = Scene::orbit(&volume, *az, 20.0, transfer);
        let direct = gpumr::volren::render(&spec, &volume, &scene, &cfg);
        assert_eq!(
            frame.image, direct.image,
            "socket frame diverged for {dataset:?} az {az}"
        );
        if frame.from_cache {
            cache_hits += 1;
        }
    }
    assert_eq!(cache_hits, 1, "exactly the repeated view is a cache hit");

    // STATS round-trips and accounts for everything the client sent.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.merged.frames_completed, cases.len() as u64);
    let per_shard: u64 = stats.shards.iter().map(|h| h.frames_completed).sum();
    assert_eq!(per_shard, stats.merged.frames_completed);
    // Distinct (volume, cluster) keys must actually use both shards.
    assert!(
        stats.shards.iter().all(|h| h.frames_completed > 0),
        "rendezvous routing left a shard idle: {stats}"
    );
    // The local view agrees with what crossed the socket.
    assert_eq!(server.stats().merged.frames_completed, cases.len() as u64);

    let report = server.shutdown();
    assert_eq!(report.frames_completed, cases.len() as u64);
    assert_eq!(report.frames_failed, 0);
}

/// In-memory volumes and custom transfer functions ship their full content
/// over the wire and still render bit-identically.
#[test]
fn shipped_voxels_and_custom_transfers_render_bit_identically() {
    let server = test_server(2, None);
    let client = RenderClient::connect(server.addr()).expect("connect");

    let dims = [6u32, 6, 6];
    let voxels: Vec<f32> = (0..216).map(|i| (i as f32) / 215.0).collect();
    let points = vec![
        ControlPoint {
            value: 0.0,
            rgba: [0.0, 0.0, 0.1, 0.0],
        },
        ControlPoint {
            value: 0.6,
            rgba: [0.9, 0.4, 0.2, 0.5],
        },
        ControlPoint {
            value: 1.0,
            rgba: [1.0, 1.0, 1.0, 1.0],
        },
    ];
    let cfg = RenderConfig::test_size(16);
    let mut request = NetSceneRequest::orbit_dataset(
        Dataset::Skull, // placeholder, replaced below
        8,
        1,
        30.0,
        -15.0,
        &TransferFunction::bone(),
    )
    .with_config(cfg.clone())
    .with_background([0.05, 0.1, 0.2, 1.0]);
    request.volume = VolumeSpec::InMemory {
        name: "shipped".into(),
        dims,
        voxels: voxels.clone(),
    };
    request.transfer = TransferSpec::Points(points.clone());

    let frame = client.render(&request).expect("render shipped volume");

    let spec = ClusterSpec::accelerator_cluster(1);
    let volume = Volume::in_memory("shipped", dims, voxels);
    let transfer = TransferFunction::from_points("wire", points);
    let scene = Scene::orbit(&volume, 30.0, -15.0, transfer).with_background([0.05, 0.1, 0.2, 1.0]);
    let direct = gpumr::volren::render(&spec, &volume, &scene, &cfg);
    assert_eq!(frame.image, direct.image, "shipped-voxel frame diverged");
    assert!(!frame.from_cache);
    server.shutdown();
}

/// Fire-and-forget submit mirrors `try_submit`: tickets redeem in any
/// order, each exactly as the direct render.
#[test]
fn submit_and_redeem_out_of_order() {
    let server = test_server(2, None);
    let client = RenderClient::connect(server.addr()).expect("connect");
    let cfg = RenderConfig::test_size(16);
    let azimuths = [10.0f32, 100.0, 250.0];

    let tickets: Vec<NetTicket> = azimuths
        .iter()
        .map(|az| {
            let req = NetSceneRequest::orbit_dataset(
                Dataset::Supernova,
                16,
                2,
                *az,
                5.0,
                &TransferFunction::fire(),
            )
            .with_config(cfg.clone());
            client.submit(&req).expect("fire-and-forget submit")
        })
        .collect();

    // Redeem newest-first: ticket order must not matter.
    for (az, ticket) in azimuths.iter().zip(tickets.iter()).rev() {
        let frame = client.redeem(*ticket).expect("redeem");
        let spec = ClusterSpec::accelerator_cluster(2);
        let volume = Dataset::Supernova.volume(16);
        let scene = Scene::orbit(&volume, *az, 5.0, TransferFunction::fire());
        let direct = gpumr::volren::render(&spec, &volume, &scene, &cfg);
        assert_eq!(frame.image, direct.image, "redeemed frame az {az}");
    }

    // A ticket redeems exactly once.
    let err = client.redeem(tickets[0]).expect_err("double redeem");
    match err {
        ClientError::Protocol(msg) => assert!(msg.contains("unknown ticket"), "{msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

/// The typed errors cross the socket intact: throttling carries a usable
/// retry-after, admission shedding restores the same `AdmissionError`, and
/// a render panic comes back as the same `FrameError` message a local
/// `wait_result` would see.
#[test]
fn typed_errors_round_trip() {
    // 1 frame burst, 1 frame/min steady: the second render throttles.
    let server = test_server(1, Some(RateLimitConfig::new(1.0 / 60.0, 1)));
    let client = RenderClient::connect(server.addr()).expect("connect");
    let ok =
        NetSceneRequest::orbit_dataset(Dataset::Skull, 8, 1, 0.0, 0.0, &TransferFunction::bone())
            .with_config(RenderConfig::test_size(8));
    client.render(&ok).expect("first frame in the burst");
    match client.render(&ok.clone().with_azimuth(90.0)) {
        Err(ClientError::Throttled { retry_after }) => {
            assert!(retry_after > Duration::ZERO);
            assert!(retry_after <= Duration::from_secs(61));
        }
        other => panic!("expected throttle, got {other:?}"),
    }
    // PING/STATS bypass the limiter (they are not render submissions).
    client.ping().expect("ping while throttled");
    assert_eq!(server.shutdown().frames_completed, 1);

    // Admission: a paused 1-shard server with a bound of 1 sheds the second
    // fire-and-forget submit with the server-side AdmissionError.
    let server = RenderServer::start(ServerConfig {
        shards: 1,
        service: ServiceConfig {
            workers: 1,
            start_paused: true,
            queue_bounds: QueueBounds {
                batch: 1,
                normal: 1,
                interactive: 1,
            },
            ..ServiceConfig::default()
        },
        rate_limit: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let client = RenderClient::connect(server.addr()).expect("connect");
    client.submit(&ok).expect("first submit fills the queue");
    match client.submit(&ok.clone().with_azimuth(45.0)) {
        Err(ClientError::Admission(err)) => {
            assert_eq!(err.priority, Priority::Normal);
            assert_eq!((err.queued, err.limit), (1, 1));
        }
        other => panic!("expected admission error, got {other:?}"),
    }
    // Shutdown drains the paused queue; the un-redeemed ticket still renders.
    assert_eq!(server.shutdown().frames_completed, 1);

    // Render failure: a 0×0 image makes the render panic server-side; the
    // worker catches it and the message crosses the wire as a FrameError.
    let server = test_server(1, None);
    let client = RenderClient::connect(server.addr()).expect("connect");
    let poison = ok.clone().with_config(RenderConfig {
        image: (0, 0),
        ..RenderConfig::test_size(8)
    });
    match client.render(&poison) {
        Err(ClientError::Render(err)) => {
            assert!(
                err.message().contains("render panicked"),
                "unexpected message: {}",
                err.message()
            );
        }
        other => panic!("expected render failure, got {other:?}"),
    }
    // The connection — and the server — survive the failure.
    let frame = client.render(&ok).expect("render after failure");
    assert!(!frame.image.pixels().is_empty());
    let report = server.shutdown();
    assert_eq!(report.frames_failed, 1);
    assert_eq!(report.frames_completed, 1);
}
