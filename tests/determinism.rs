//! Same configuration and seed ⇒ byte-identical image AND identical
//! simulated timings, regardless of real thread interleavings.

use gpumr::cluster::ClusterSpec;
use gpumr::voldata::Dataset;
use gpumr::volren::camera::Scene;
use gpumr::volren::renderer::render;
use gpumr::volren::{RenderConfig, TransferFunction};

#[test]
fn renders_are_fully_deterministic() {
    let volume = Dataset::Plume.volume(24);
    let scene = Scene::orbit(&volume, 15.0, 25.0, TransferFunction::smoke());
    let cfg = RenderConfig::test_size(96);
    let spec = ClusterSpec::accelerator_cluster(8);

    let runs: Vec<_> = (0..3)
        .map(|_| render(&spec, &volume, &scene, &cfg))
        .collect();
    for pair in runs.windows(2) {
        assert_eq!(pair[0].image, pair[1].image, "images must be bit-identical");
        assert_eq!(
            pair[0].report.runtime(),
            pair[1].report.runtime(),
            "simulated time must be identical"
        );
        assert_eq!(pair[0].report.job, pair[1].report.job);
        assert_eq!(pair[0].report.breakdown(), pair[1].report.breakdown());
    }
}

#[test]
fn dataset_seeds_are_stable() {
    // Document the seeds: changing them silently would invalidate every
    // recorded experiment.
    assert_eq!(Dataset::Skull.seed(), 0x5C11);
    assert_eq!(Dataset::Supernova.seed(), 0x50BA);
    assert_eq!(Dataset::Plume.seed(), 0x9127);
    let a = Dataset::Skull.volume(16).materialize_full();
    let b = Dataset::Skull.volume(16).materialize_full();
    assert_eq!(a, b);
}
