//! Workspace smoke test: the whole stack — procedural dataset, bricking,
//! MapReduce render, DES replay — driven twice through nothing but
//! `gpumr::prelude`, asserting bit-identical output. This locks in the
//! determinism guarantee documented in `crates/core/src/runtime.rs` (chunks
//! assigned round-robin, batches re-ordered by `(mapper, sequence)`) at the
//! facade level, and doubles as a check that the prelude exposes everything
//! the quickstart needs.

use gpumr::prelude::*;

#[test]
fn prelude_render_is_bit_identical_across_runs() {
    let volume = Dataset::Skull.volume(16);
    let cluster = ClusterSpec::accelerator_cluster(4);
    let scene = Scene::orbit(&volume, 30.0, 20.0, TransferFunction::bone());
    let config = RenderConfig::test_size(32);

    let first: RenderOutcome = render(&cluster, &volume, &scene, &config);
    let second: RenderOutcome = render(&cluster, &volume, &scene, &config);

    // Bit-level comparison (stricter than f32 PartialEq: distinguishes -0.0
    // from 0.0 and would catch NaNs).
    assert_eq!(first.image.width(), second.image.width());
    assert_eq!(first.image.height(), second.image.height());
    for (i, (a, b)) in first
        .image
        .pixels()
        .iter()
        .zip(second.image.pixels())
        .enumerate()
    {
        for c in 0..4 {
            assert_eq!(
                a[c].to_bits(),
                b[c].to_bits(),
                "pixel {i} channel {c} differs: {} vs {}",
                a[c],
                b[c]
            );
        }
    }

    // The simulated schedule must replay identically too.
    assert_eq!(first.report.runtime(), second.report.runtime());

    // The render must have actually hit the image.
    assert!(
        first.image.coverage(0.01) > 0.0,
        "smoke render produced an empty image"
    );
}
