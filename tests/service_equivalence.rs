//! Facade-level check of the render service: frames served through
//! `gpumr::serve` — plain, plan-cache-warmed or sharded — are bit-identical
//! to direct `render` calls, and the service report accounts for every
//! frame.

use gpumr::prelude::*;

#[test]
fn service_frames_equal_direct_renders_through_the_facade() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    let volume = Dataset::Supernova.volume(16);
    let session = service.session(spec.clone(), volume.clone(), cfg.clone());

    let scenes: Vec<Scene> = (0..4)
        .map(|i| Scene::orbit(&volume, i as f32 * 85.0, -10.0, TransferFunction::fire()))
        .collect();
    let tickets: Vec<FrameTicket> = scenes.iter().map(|s| session.request(s.clone())).collect();

    for (scene, ticket) in scenes.iter().zip(tickets) {
        let frame = ticket.wait();
        let direct = render(&spec, &volume, scene, &cfg);
        assert_eq!(*frame.image, direct.image);
    }
    let report: ServiceReport = service.shutdown();
    assert_eq!(report.frames_completed, 4);
    assert_eq!(report.frames_rendered + report.cache_hits, 4);
    assert_eq!(report.frames_failed, 0);
}

/// Plan-cache reuse across separate waves must not change a single pixel,
/// and the sharded front-end must agree with both.
#[test]
fn sharded_and_plan_cached_frames_equal_direct_renders() {
    let sharded = ShardedService::start(
        2,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    let skull = Dataset::Skull.volume(16);
    let plume = Dataset::Plume.volume(8);

    let s1 = sharded.session(spec.clone(), skull.clone(), cfg.clone());
    let s2 = sharded.session(spec.clone(), plume.clone(), cfg.clone());

    // Two waves: the second reuses whatever plans the first warmed.
    for wave in 0..2 {
        let scenes: Vec<(Scene, &gpumr::voldata::Volume)> = (0..3)
            .flat_map(|i| {
                let az = (wave * 3 + i) as f32 * 40.0;
                [
                    (
                        Scene::orbit(&skull, az, 20.0, TransferFunction::bone()),
                        &skull,
                    ),
                    (
                        Scene::orbit(&plume, az, 5.0, TransferFunction::smoke()),
                        &plume,
                    ),
                ]
            })
            .collect();
        let tickets: Vec<_> = scenes
            .iter()
            .map(|(scene, volume)| {
                if std::ptr::eq(*volume, &skull) {
                    s1.request(scene.clone())
                } else {
                    s2.request(scene.clone())
                }
            })
            .collect();
        for ((scene, volume), ticket) in scenes.iter().zip(tickets) {
            let frame = ticket.wait();
            let direct = render(&spec, volume, scene, &cfg);
            assert_eq!(
                *frame.image, direct.image,
                "wave {wave}: sharded + plan-cached frame must stay bit-identical"
            );
        }
    }
    let report = sharded.shutdown();
    assert_eq!(report.frames_completed, 12);
    assert_eq!(report.frames_failed, 0);
}
