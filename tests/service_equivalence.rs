//! Facade-level check of the render service: frames served through
//! `gpumr::serve` are bit-identical to direct `render` calls, and the
//! service report accounts for every frame.

use gpumr::prelude::*;

#[test]
fn service_frames_equal_direct_renders_through_the_facade() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    let volume = Dataset::Supernova.volume(16);
    let session = service.session(spec.clone(), volume.clone(), cfg.clone());

    let scenes: Vec<Scene> = (0..4)
        .map(|i| Scene::orbit(&volume, i as f32 * 85.0, -10.0, TransferFunction::fire()))
        .collect();
    let tickets: Vec<FrameTicket> = scenes.iter().map(|s| session.request(s.clone())).collect();

    for (scene, ticket) in scenes.iter().zip(tickets) {
        let frame = ticket.wait();
        let direct = render(&spec, &volume, scene, &cfg);
        assert_eq!(*frame.image, direct.image);
    }
    let report: ServiceReport = service.shutdown();
    assert_eq!(report.frames_completed, 4);
    assert_eq!(report.frames_rendered + report.cache_hits, 4);
}
