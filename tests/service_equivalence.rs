//! Facade-level checks of the in-process service that go beyond the
//! four-backend harness in `backend_equivalence.rs`: cross-wave plan-cache
//! reuse under sharding must not change a single pixel. Everything here is
//! written against the `RenderBackend` trait (sessions included).

use gpumr::prelude::*;

/// Plan-cache reuse across separate waves must not change a single pixel,
/// and the sharded front-end must agree with direct renders throughout.
#[test]
fn sharded_and_plan_cached_frames_equal_direct_renders() {
    let sharded = ShardedService::start(
        2,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    let skull = Dataset::Skull.volume(16);
    let plume = Dataset::Plume.volume(8);

    let s1 = sharded.session(spec.clone(), skull.clone(), cfg.clone());
    let s2 = sharded.session(spec.clone(), plume.clone(), cfg.clone());

    // Two waves: the second reuses whatever plans the first warmed.
    for wave in 0..2 {
        let scenes: Vec<(Scene, &gpumr::voldata::Volume)> = (0..3)
            .flat_map(|i| {
                let az = (wave * 3 + i) as f32 * 40.0;
                [
                    (
                        Scene::orbit(&skull, az, 20.0, TransferFunction::bone()),
                        &skull,
                    ),
                    (
                        Scene::orbit(&plume, az, 5.0, TransferFunction::smoke()),
                        &plume,
                    ),
                ]
            })
            .collect();
        let tickets: Vec<_> = scenes
            .iter()
            .map(|(scene, volume)| {
                if std::ptr::eq(*volume, &skull) {
                    s1.request(scene.clone())
                } else {
                    s2.request(scene.clone())
                }
            })
            .collect();
        for ((scene, volume), ticket) in scenes.iter().zip(tickets) {
            let frame = ticket.wait();
            let direct = render(&spec, volume, scene, &cfg);
            assert_eq!(
                *frame.image, direct.image,
                "wave {wave}: sharded + plan-cached frame must stay bit-identical"
            );
        }
    }
    let report = sharded.shutdown();
    assert_eq!(report.frames_completed, 12);
    assert_eq!(report.frames_failed, 0);
}

/// The trait's synchronous `render` agrees with the ticketed path and the
/// service accounting, through the facade prelude alone.
#[test]
fn trait_render_matches_ticketed_session_requests() {
    let service = RenderService::start(ServiceConfig::default());
    let spec = ClusterSpec::accelerator_cluster(2);
    let cfg = RenderConfig::test_size(24);
    let volume = Dataset::Supernova.volume(16);

    let scene = Scene::orbit(&volume, 85.0, -10.0, TransferFunction::fire());
    let via_render = service
        .render(SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene.clone(),
            config: cfg.clone(),
            priority: Priority::Normal,
        })
        .expect("trait render");

    let session = service.session(spec.clone(), volume.clone(), cfg.clone());
    let via_ticket = session.request(scene.clone()).wait();
    assert_eq!(via_ticket.image, via_render.image, "same allocation reused");
    assert!(
        via_ticket.from_cache,
        "second identical view hits the cache"
    );

    let direct = render(&spec, &volume, &scene, &cfg);
    assert_eq!(*via_render.image, direct.image);

    let report: ServiceReport = service.shutdown();
    assert_eq!(report.frames_completed, 2);
    assert_eq!(report.frames_rendered, 1);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.frames_failed, 0);
}
