//! THE acceptance test of the `RenderBackend` redesign: one generic
//! harness, written once against the trait, drives every backend —
//! [`RenderService`] (one process), [`ShardedService`] (in-process shards),
//! [`RemoteBackend`] (one TCP server) and [`NodePool`] (N TCP servers
//! behind a placement directory) — through the same mixed workload and
//! proves every delivered frame **bit-identical** to a direct
//! `mgpu_volren::render` call with the same request. Plus the multi-node
//! specifics: failover within the retry budget when a node dies mid-run,
//! and the ticket-redemption edge cases (double redemption, unknown
//! tickets, redemption after the issuing connection failed over).

use std::time::Duration;

use gpumr::prelude::*;
use gpumr::voldata::Volume;
use gpumr::volren::render;
use gpumr::volren::transfer::ControlPoint;

/// One deterministic mixed workload: three procedural datasets on two
/// cluster sizes (distinct batch keys — shards/nodes both get traffic), a
/// shipped in-memory volume with a custom transfer function, a non-orbit
/// camera, and one repeated view (must come from a frame cache).
fn workload() -> Vec<SceneRequest> {
    let cfg = RenderConfig::test_size(16);
    let mut requests: Vec<SceneRequest> = [
        (Dataset::Skull, 16u32, 2u32, 0.0f32),
        (Dataset::Skull, 16, 2, 72.0),
        (Dataset::Supernova, 16, 1, 144.0),
        (Dataset::Plume, 8, 2, 216.0),
    ]
    .into_iter()
    .map(|(dataset, base, gpus, az)| {
        let volume = dataset.volume(base);
        let scene = Scene::orbit(
            &volume,
            az,
            20.0,
            TransferFunction::for_dataset(dataset.name()),
        );
        SceneRequest {
            spec: ClusterSpec::accelerator_cluster(gpus),
            volume,
            scene,
            config: cfg.clone(),
            priority: Priority::Normal,
        }
    })
    .collect();

    // A shipped volume + custom transfer points + custom background: the
    // parts of a request that must cross a wire by value, not by name.
    let voxels: Vec<f32> = (0..125).map(|i| (i as f32) / 124.0).collect();
    let custom = Volume::in_memory("shipped", [5, 5, 5], voxels);
    let scene = Scene::orbit(
        &custom,
        30.0,
        -15.0,
        TransferFunction::from_points(
            "harness",
            vec![
                ControlPoint {
                    value: 0.0,
                    rgba: [0.0, 0.0, 0.1, 0.0],
                },
                ControlPoint {
                    value: 1.0,
                    rgba: [1.0, 0.9, 0.8, 1.0],
                },
            ],
        ),
    )
    .with_background([0.05, 0.1, 0.2, 1.0]);
    requests.push(SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        volume: custom,
        scene,
        config: cfg.clone(),
        priority: Priority::Normal,
    });

    // A non-orbit camera (hand-built look-at): only representable on the
    // wire through the raw CameraSpec — exercises the v2 protocol arm.
    let skull = Dataset::Skull.volume(16);
    let mut tilted = Scene::orbit(&skull, 10.0, 35.0, TransferFunction::bone());
    tilted.camera = gpumr::volren::Camera::look_at(
        gpumr::volren::math::vec3(40.0, -22.0, 31.0),
        gpumr::volren::math::vec3(8.0, 8.0, 8.0),
        gpumr::volren::math::vec3(0.2, 0.1, 1.0),
        35.0,
    );
    requests.push(SceneRequest {
        spec: ClusterSpec::accelerator_cluster(2),
        volume: skull,
        scene: tilted,
        config: cfg,
        priority: Priority::Normal,
    });

    // The repeat: identical to the first request — a frame cache somewhere
    // behind the backend must answer it without rendering.
    requests.push(requests[0].clone());
    requests
}

/// The generic harness. Everything here is written against the trait —
/// no backend-specific code — and every delivered pixel is compared
/// bit-for-bit against an independently constructed direct render.
fn prove_frames_bit_identical<B: RenderBackend>(backend: &B, label: &str) -> u64 {
    let requests = workload();
    let mut completed = 0u64;
    let mut cache_hits = 0u64;

    // Blocking render path.
    for (i, request) in requests.iter().enumerate() {
        let frame = backend
            .render(request.clone())
            .unwrap_or_else(|err| panic!("{label}: request {i} failed: {err}"));
        let direct = render(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        assert_eq!(
            *frame.image, direct.image,
            "{label}: request {i} diverged from the direct render"
        );
        completed += 1;
        cache_hits += frame.from_cache as u64;
        if frame.from_cache {
            assert_eq!(
                frame.sim_frame,
                Duration::ZERO,
                "{label}: cache hits re-deliver, they don't re-render"
            );
        }
    }
    assert!(
        cache_hits >= 1,
        "{label}: the repeated view must hit a frame cache"
    );

    // Fire-and-forget path: submit all, redeem newest-first — ticket order
    // must not matter, and every redeemed frame matches its direct render.
    let nova = Dataset::Supernova.volume(16);
    let cfg = RenderConfig::test_size(16);
    let ticketed: Vec<SceneRequest> = [10.0f32, 100.0, 250.0]
        .into_iter()
        .map(|az| SceneRequest {
            spec: ClusterSpec::accelerator_cluster(2),
            volume: nova.clone(),
            scene: Scene::orbit(&nova, az, 5.0, TransferFunction::fire()),
            config: cfg.clone(),
            priority: Priority::Normal,
        })
        .collect();
    let tickets: Vec<B::Ticket> = ticketed
        .iter()
        .map(|r| {
            backend
                .try_submit(r.clone())
                .unwrap_or_else(|err| panic!("{label}: try_submit under no load failed: {err}"))
        })
        .collect();
    for (request, ticket) in ticketed.iter().zip(tickets).rev() {
        let frame = backend
            .redeem(ticket)
            .unwrap_or_else(|err| panic!("{label}: redeem failed: {err}"));
        let direct = render(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        assert_eq!(
            *frame.image, direct.image,
            "{label}: out-of-order redemption diverged"
        );
        completed += 1;
    }

    // Session layer: the same generic session code runs over any backend.
    let skull = Dataset::Skull.volume(16);
    let session = backend.session(
        ClusterSpec::accelerator_cluster(2),
        skull.clone(),
        RenderConfig::test_size(16),
    );
    let ticket = session.request_orbit(33.0, 12.0, TransferFunction::bone());
    let frame = ticket.wait();
    let spec = ClusterSpec::accelerator_cluster(2);
    let scene = Scene::orbit(&skull, 33.0, 12.0, TransferFunction::bone());
    let direct = render(&spec, &skull, &scene, &RenderConfig::test_size(16));
    assert_eq!(
        *frame.image, direct.image,
        "{label}: session frame diverged"
    );
    assert_eq!(session.frames_submitted(), 1);
    completed += 1;

    // The backend's own accounting saw every frame.
    let report = backend
        .report()
        .unwrap_or_else(|err| panic!("{label}: report failed: {err}"));
    assert_eq!(
        report.frames_completed, completed,
        "{label}: accounting mismatch"
    );
    assert_eq!(report.frames_failed, 0, "{label}: no frame may fail");
    completed
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }
}

#[test]
fn render_service_frames_are_bit_identical() {
    let service = RenderService::start(service_config());
    let completed = prove_frames_bit_identical(&service, "RenderService");
    assert_eq!(service.shutdown().frames_completed, completed);
}

#[test]
fn sharded_service_frames_are_bit_identical() {
    let sharded = ShardedService::start(2, service_config());
    let completed = prove_frames_bit_identical(&sharded, "ShardedService");
    assert_eq!(sharded.shutdown().frames_completed, completed);
}

#[test]
fn remote_backend_frames_are_bit_identical() {
    let server = RenderServer::start(ServerConfig {
        shards: 2,
        service: service_config(),
        // Generous per-session budget: every harness frame passes the door.
        rate_limit: Some(RateLimitConfig::new(500.0, 64)),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let backend = RemoteBackend::connect_with(
        server.addr(),
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            // Must exceed the slowest render in the workload.
            read_timeout: Some(Duration::from_secs(60)),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    assert_eq!(backend.shards(), 2);
    let completed = prove_frames_bit_identical(&backend, "RemoteBackend");
    // The remote shutdown is a disconnect: the server survives and its
    // final report agrees with what the client saw.
    let last_seen = RenderBackend::shutdown(backend);
    assert_eq!(last_seen.frames_completed, completed);
    assert_eq!(server.shutdown().frames_completed, completed);
}

fn start_node(shards: usize) -> RenderServer {
    RenderServer::start(ServerConfig {
        shards,
        service: service_config(),
        rate_limit: None,
        ..ServerConfig::default()
    })
    .expect("bind loopback node")
}

#[test]
fn node_pool_frames_are_bit_identical() {
    let nodes = [start_node(1), start_node(2)];
    let pool = NodePool::new(
        Directory::new(nodes.iter().map(|n| n.addr()).collect()).expect("two-node directory"),
        NodePoolConfig::default(),
    );
    let completed = prove_frames_bit_identical(&pool, "NodePool");
    assert_eq!(RenderBackend::shutdown(pool).frames_completed, completed);
    // The workload's distinct batch keys actually spread over both nodes.
    let per_node: Vec<u64> = nodes
        .into_iter()
        .map(|n| n.shutdown().frames_completed)
        .collect();
    assert!(
        per_node.iter().all(|&f| f > 0),
        "rendezvous placement left a node idle: {per_node:?}"
    );
    assert_eq!(per_node.iter().sum::<u64>(), completed);
}

/// The multi-node acceptance test: kill a node mid-run and the pool
/// completes the frame anyway, within its retry budget, on the next node
/// in the key's preference order — bit-identical to a direct render.
#[test]
fn node_pool_fails_over_within_its_retry_budget_when_a_node_dies() {
    let mut nodes: Vec<Option<RenderServer>> = vec![Some(start_node(1)), Some(start_node(1))];
    let directory = Directory::new(nodes.iter().map(|n| n.as_ref().unwrap().addr()).collect())
        .expect("two-node directory");
    let pool = NodePool::new(
        directory,
        NodePoolConfig {
            retry: RetryBudget {
                attempts: 3,
                ..RetryBudget::default()
            },
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(5)),
                read_timeout: Some(Duration::from_secs(60)),
                ..ClientConfig::default()
            },
        },
    );

    let skull = Dataset::Skull.volume(16);
    let cfg = RenderConfig::test_size(16);
    let request_at = |az: f32| SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        volume: skull.clone(),
        scene: Scene::orbit(&skull, az, 10.0, TransferFunction::bone()),
        config: cfg.clone(),
        priority: Priority::Normal,
    };
    let owner = pool.node_for(&request_at(0.0));

    // Warm the connection to the owner with a real frame.
    let frame = pool.render(request_at(0.0)).expect("healthy render");
    let direct = render(
        &ClusterSpec::accelerator_cluster(1),
        &skull,
        &Scene::orbit(&skull, 0.0, 10.0, TransferFunction::bone()),
        &cfg,
    );
    assert_eq!(*frame.image, direct.image);

    // Kill the owning node mid-run.
    nodes[owner].take().unwrap().shutdown();

    // Same batch key → same (dead) owner; the pool must absorb the loss
    // and complete on the survivor within its budget.
    let failed_over = pool
        .render(request_at(40.0))
        .expect("failover render within the retry budget");
    let direct = render(
        &ClusterSpec::accelerator_cluster(1),
        &skull,
        &Scene::orbit(&skull, 40.0, 10.0, TransferFunction::bone()),
        &cfg,
    );
    assert_eq!(
        *failed_over.image, direct.image,
        "failover must not change a single pixel"
    );

    // Observability agrees: the dead node errors, the survivor reports,
    // and the pool-level merged report still answers.
    let stats = pool.node_stats();
    assert!(stats[owner].is_err(), "dead node must surface its error");
    assert!(stats[1 - owner].is_ok(), "survivor must answer");
    let merged = RenderBackend::report(&pool).expect("merged report over survivors");
    assert!(merged.frames_completed >= 1);

    nodes[1 - owner].take().unwrap().shutdown();
}

/// Satellite: ticket-redemption edge cases through the trait.
#[test]
fn ticket_redemption_edge_cases() {
    // Remote: a ticket redeems exactly once; the second attempt and a
    // never-issued ticket are typed transport errors, and the connection
    // survives both.
    let server = start_node(1);
    let backend = RemoteBackend::connect(server.addr()).expect("connect");
    let skull = Dataset::Skull.volume(8);
    let request = SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&skull, 15.0, 0.0, TransferFunction::bone()),
        volume: skull.clone(),
        config: RenderConfig::test_size(8),
        priority: Priority::Normal,
    };
    let ticket = backend.try_submit(request.clone()).expect("submit");
    backend.redeem(ticket).expect("first redemption");
    match backend.redeem(ticket) {
        Err(BackendError::Transport(msg)) => {
            assert!(msg.contains("unknown ticket"), "{msg}")
        }
        other => panic!("double redemption must fail typed, got {other:?}"),
    }
    match backend.redeem(NetTicket::from_id(0xDEAD)) {
        Err(BackendError::Transport(msg)) => {
            assert!(msg.contains("unknown ticket"), "{msg}")
        }
        other => panic!("unknown ticket must fail typed, got {other:?}"),
    }
    // The session (and server) survive the bad redemptions.
    backend
        .render(request)
        .expect("render after bad redemptions");
    server.shutdown();

    // Pool: a ticket is pinned to the connection that issued it — but
    // since the elastic-pool work, losing that connection no longer loses
    // the frame: the pool re-renders the remembered request on a survivor
    // (bit-identical, because renders are deterministic). Double
    // redemption stays a typed error at the pool layer.
    let mut nodes: Vec<Option<RenderServer>> = vec![Some(start_node(1)), Some(start_node(1))];
    let pool = NodePool::new(
        Directory::new(nodes.iter().map(|n| n.as_ref().unwrap().addr()).collect())
            .expect("two-node directory"),
        NodePoolConfig {
            retry: RetryBudget {
                attempts: 3,
                ..RetryBudget::default()
            },
            ..NodePoolConfig::default()
        },
    );
    let plume = Dataset::Plume.volume(8);
    let request_at = |az: f32| SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&plume, az, 5.0, TransferFunction::smoke()),
        volume: plume.clone(),
        config: RenderConfig::test_size(8),
        priority: Priority::Normal,
    };
    let owner = pool.node_for(&request_at(0.0));
    let parked = pool.submit(request_at(0.0)).expect("submit to the owner");
    assert_eq!(parked.node(), owner);

    // Kill the owner; a new render fails over (poisoning + re-dialing the
    // owner's slot on the way).
    nodes[owner].take().unwrap().shutdown();
    pool.render(request_at(80.0)).expect("failover render");

    // Zero-loss hand-off: the issuing connection is gone, so the pool
    // re-renders the parked request on the survivor — same pixels as a
    // direct render, no frame lost.
    let handed_off = pool
        .redeem(parked)
        .expect("post-failover redemption hands off to a survivor");
    let direct = render(
        &ClusterSpec::accelerator_cluster(1),
        &plume,
        &Scene::orbit(&plume, 0.0, 5.0, TransferFunction::smoke()),
        &RenderConfig::test_size(8),
    );
    assert_eq!(
        *handed_off.image, direct.image,
        "handed-off frame must be bit-identical to a direct render"
    );
    // …and the ticket is spent: redeeming it again is a typed error.
    match pool.redeem(parked) {
        Err(BackendError::Transport(msg)) => {
            assert!(msg.contains("unknown or already redeemed"), "{msg}");
        }
        other => panic!("double redemption must fail typed, got {other:?}"),
    }
    nodes[1 - owner].take().unwrap().shutdown();
}

/// Wire v3 pipelined submission: the same bit-identity contract holds when
/// a single connection holds many renders in flight and collects them out
/// of order — multiplexing changes delivery order, never pixels.
#[test]
fn pipelined_submissions_are_bit_identical_to_direct_renders() {
    let server = RenderServer::start(ServerConfig {
        shards: 2,
        service: service_config(),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let client = RenderClient::connect(server.addr()).expect("connect");

    // At least nine distinct views, all issued before any reply is read:
    // the mixed workload, topped up with extra orbit angles.
    let mut requests: Vec<SceneRequest> = workload();
    let skull = Dataset::Skull.volume(16);
    let mut extra = 0.0f32;
    while requests.len() < 9 {
        extra += 41.0;
        requests.push(SceneRequest {
            spec: ClusterSpec::accelerator_cluster(2),
            scene: Scene::orbit(&skull, extra, 7.0, TransferFunction::bone()),
            volume: skull.clone(),
            config: RenderConfig::test_size(16),
            priority: Priority::Normal,
        });
    }
    let pending: Vec<_> = requests
        .iter()
        .map(|request| {
            let net = NetSceneRequest::from_request(request).expect("portable request");
            client.begin_render(&net).expect("issue render")
        })
        .collect();
    assert!(
        pending.len() >= 8,
        "the pipelining claim needs ≥ 8 in flight"
    );

    // Collect out of order: middle-out (4, 5, 3, 6, 2, 7, 1, 8, 0).
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|i| (*i as i64 - 4).unsigned_abs());
    let mut slots: Vec<Option<gpumr::net::PendingRender>> = pending.into_iter().map(Some).collect();
    for i in order {
        let handle = slots[i].take().expect("collected once");
        let frame = client.finish_render(handle).expect("collect render");
        let request = &requests[i];
        let direct = render(
            &request.spec,
            &request.volume,
            &request.scene,
            &request.config,
        );
        assert_eq!(
            frame.image, direct.image,
            "pipelined request {i} diverged from the direct render"
        );
    }

    let report = server.shutdown();
    assert_eq!(report.frames_failed, 0);
}
