//! Offline shim for `parking_lot`: same `Mutex`/`RwLock` surface (panic-free
//! `lock()` returning the guard directly), implemented over `std::sync`.
//! Poisoned locks are recovered rather than propagated, matching
//! parking_lot's poison-free semantics.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
