//! Offline shim for `proptest`: the subset of the API the workspace's
//! property tests use — range and tuple strategies, `prop::collection::vec`,
//! `prop_map`/`prop_flat_map`, and the `proptest!`/`prop_assert*` macros —
//! backed by a deterministic SplitMix64 generator instead of the real
//! shrinking test runner. Each case is seeded from its index, so the whole
//! suite is reproducible run-to-run; there is no shrinking, failures report
//! the case number and the formatted assertion message.

pub mod test_runner {
    /// Deterministic per-case random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> TestRng {
            // Fixed suite seed mixed with the case index: reproducible and
            // well-spread even for consecutive cases.
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15u64 ^ ((case as u64) << 1),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values. Unlike real proptest there is no value
    /// tree / shrinking: `sample` draws directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.inner.sample(rng);
            (self.f)(intermediate).sample(rng)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % width;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % width;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = rng.next_unit_f64() as $t;
                    let v = self.start + frac * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Mirror of real proptest's `prelude::prop` module alias.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use crate as prop;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        ::std::panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}
