//! Offline shim for `serde`. The workspace derives `Serialize`/`Deserialize`
//! on its config and report types for future interop but never serializes
//! through them yet, so marker traits plus no-op derives are enough to
//! compile. Replace with the real serde when a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (namespaced apart from the derive).
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize` (namespaced apart from the derive).
pub trait DeserializeTrait<'de> {}
