//! Offline shim for `serde_derive`: the container image has no crates-io
//! access, and nothing in the workspace serializes through serde yet — the
//! derives only need to parse. Each derive expands to nothing; swap in the
//! real serde once a registry is reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
