//! Offline shim for `crossbeam`: just the `channel::bounded` MPSC surface the
//! MapReduce runtime uses (clonable `Sender`, single-consumer `Receiver` with
//! blocking `recv`/`iter`), implemented over `std::sync::mpsc::sync_channel`.
//! The runtime never clones receivers or `select!`s, so std's semantics match.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }
}
