//! Offline shim for `criterion`: the subset used by the workspace benches —
//! `Criterion`, `benchmark_group`/`bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!`/`criterion_main!` macros. It
//! runs each benchmark for a fixed small number of timed iterations and
//! prints mean wall time; no statistics, HTML reports or outlier analysis.

use std::time::Instant;

const WARMUP_ITERS: u32 = 2;
const MEASURE_ITERS: u32 = 10;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Bencher {
    mean_nanos: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let mut total = 0u128;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.mean_nanos = total as f64 / MEASURE_ITERS as f64;
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.mean_nanos >= 1e6 {
        println!("{id:<50} {:>12.3} ms", b.mean_nanos / 1e6);
    } else if b.mean_nanos >= 1e3 {
        println!("{id:<50} {:>12.3} µs", b.mean_nanos / 1e3);
    } else {
        println!("{id:<50} {:>12.1} ns", b.mean_nanos);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
