//! `cargo bench -p mgpu-bench --bench fig3_breakdown` — regenerates the
//! paper's Figure 3. Deterministic single-shot measurement: the timing comes
//! from the DES replay, so statistical repetition would measure nothing.

use mgpu_bench::figures::{fig3_report, run_sweep};
use mgpu_bench::BenchScale;

fn main() {
    let scale = BenchScale::from_env();
    println!(
        "Figure 3 — runtime breakdown by phase (scale {:.2})",
        scale.factor
    );
    let rows = run_sweep(&scale);
    fig3_report(&rows);
}
