//! `cargo bench -p mgpu-bench --bench micro_transfers` — §3 anchors.

fn main() {
    mgpu_bench::figures::micro_report();
}
