//! `cargo bench -p mgpu-bench --bench fig4_throughput` — regenerates the
//! paper's Figure 4 (FPS + VPS) and checks the abstract's <1 s headline.

use mgpu_bench::figures::{fig4_report, run_sweep};
use mgpu_bench::BenchScale;

fn main() {
    let scale = BenchScale::from_env();
    println!("Figure 4 — FPS and VPS (scale {:.2})", scale.factor);
    let rows = run_sweep(&scale);
    fig4_report(&rows, &scale);
}
