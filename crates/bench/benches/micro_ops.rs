//! Criterion micro-benchmarks of the hot primitives: the counting sort
//! against the comparison sort it replaces (the §3.1.2 θ(n) claim), the
//! partition strategies, trilinear texture sampling, fragment compositing,
//! value noise and the DES replay itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mgpu_gpu::Texture3D;
use mgpu_mapreduce::{counting_sort_groups, Partitioner, RoundRobin, Striped, Tiled};
use mgpu_sim::{simulate, Activity, SimDuration, Trace};
use mgpu_voldata::noise::{fbm, value_noise};
use mgpu_volren::composite::{composite_unsorted, over};
use mgpu_volren::Fragment;

fn pairs(n: usize, key_space: u32) -> (Vec<u32>, Vec<u64>) {
    let keys = (0..n as u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % key_space as u64) as u32)
        .collect();
    let values = (0..n as u64).collect();
    (keys, values)
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(20);
    let (in_keys, in_values) = pairs(100_000, 262_144);
    g.bench_function("counting_sort_100k_pairs", |b| {
        b.iter(|| counting_sort_groups(black_box(&in_keys), black_box(&in_values), 262_144))
    });
    let tupled: Vec<(u32, u64)> = in_keys
        .iter()
        .copied()
        .zip(in_values.iter().copied())
        .collect();
    g.bench_function("comparison_sort_100k_pairs", |b| {
        b.iter_batched(
            || tupled.clone(),
            |mut v| {
                v.sort_by_key(|(k, _)| *k);
                v
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    let keys: Vec<u32> = (0..262_144u32).collect();
    let strategies: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("round_robin", Box::new(RoundRobin)),
        (
            "striped",
            Box::new(Striped {
                width: 512,
                rows_per_stripe: 16,
            }),
        ),
        (
            "tiled",
            Box::new(Tiled {
                width: 512,
                tile: 64,
            }),
        ),
    ];
    for (name, p) in strategies {
        g.bench_function(format!("{name}_262k_keys"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &k in &keys {
                    acc = acc.wrapping_add(p.reducer_of(black_box(k), 8));
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_texture(c: &mut Criterion) {
    let mut g = c.benchmark_group("texture");
    g.sample_size(20);
    let dims = [64usize; 3];
    let data: Vec<f32> = (0..dims[0] * dims[1] * dims[2])
        .map(|i| (i % 97) as f32 / 97.0)
        .collect();
    let tex = Texture3D::new(dims, data);
    g.bench_function("trilinear_sample_64cubed", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            let mut p = 0.7f32;
            for _ in 0..1000 {
                acc += tex.sample(black_box(p), p * 0.9, p * 1.1);
                p = (p + 0.061) % 62.0;
            }
            acc
        })
    });
    g.finish();
}

fn bench_composite(c: &mut Criterion) {
    let mut g = c.benchmark_group("composite");
    g.sample_size(20);
    let frags: Vec<Fragment> = (0..16)
        .map(|i| Fragment {
            color: [0.05, 0.04, 0.03, 0.1],
            depth: ((i * 7) % 16) as f32,
            exit: ((i * 7) % 16) as f32 + 1.0,
        })
        .collect();
    g.bench_function("depth_sort_and_blend_16_fragments", |b| {
        b.iter_batched(
            || frags.clone(),
            |mut f| composite_unsorted(black_box(&mut f), [0.0; 4]),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("over_operator", |b| {
        b.iter(|| {
            let mut acc = [0f32; 4];
            for _ in 0..1000 {
                acc = over(black_box(acc), [0.01, 0.01, 0.01, 0.02]);
            }
            acc
        })
    });
    g.finish();
}

fn bench_noise(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise");
    g.sample_size(20);
    g.bench_function("value_noise_1k", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for i in 0..1000 {
                let x = i as f32 * 0.37;
                acc += value_noise(black_box(x), x * 0.5, x * 0.25, 7);
            }
            acc
        })
    });
    g.bench_function("fbm3_1k", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for i in 0..1000 {
                let x = i as f32 * 0.37;
                acc += fbm(black_box(x), x * 0.5, x * 0.25, 3, 2.0, 0.5, 7);
            }
            acc
        })
    });
    g.finish();
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(20);
    // A synthetic 10k-task pipeline: 8 chains with cross dependencies.
    let mut tr = Trace::new();
    let rs = tr.add_resources(16);
    let mut prev = Vec::new();
    for i in 0..10_000u32 {
        let deps = if i >= 8 {
            vec![prev[(i - 8) as usize]]
        } else {
            vec![]
        };
        let t = tr.task(
            Activity::Kernel,
            rs[(i % 16) as usize],
            SimDuration(100 + (i as u64 % 37)),
            deps,
        );
        prev.push(t);
    }
    g.bench_function("replay_10k_tasks", |b| b.iter(|| simulate(black_box(&tr))));
    g.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_partition,
    bench_texture,
    bench_composite,
    bench_noise,
    bench_des
);
criterion_main!(benches);
