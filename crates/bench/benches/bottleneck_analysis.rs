//! `cargo bench -p mgpu-bench --bench bottleneck_analysis` — §6.3 table.

use mgpu_bench::BenchScale;

fn main() {
    mgpu_bench::figures::bottleneck_report(&BenchScale::from_env());
}
