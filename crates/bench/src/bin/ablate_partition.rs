//! §3.1.1 ablation: "Partitioning is done in a per-pixel round-robin fashion.
//! This is, empirically, the highest-performing method."
//!
//! Compares reducer load balance and end-to-end runtime for round-robin,
//! striped, tiled and checkerboard partitioning.

use mgpu_bench::{figure_config, print_table, run_point, BenchScale, Table};
use mgpu_voldata::Dataset;
use mgpu_volren::PartitionStrategy;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(256);
    let gpus = 8;
    println!("partition ablation at {size}^3, {gpus} GPUs");

    let strategies = [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::Striped {
            rows_per_stripe: 32,
        },
        PartitionStrategy::Tiled { tile: 64 },
        PartitionStrategy::Checkerboard { cell: 64 },
    ];

    let mut t = Table::new(&[
        "strategy",
        "total ms",
        "sort ms",
        "reduce ms",
        "per-brick max/mean load",
    ]);
    let mut results = Vec::new();
    for s in strategies {
        let mut cfg = figure_config(&scale);
        cfg.partition = s;
        let row = run_point(Dataset::Skull, size, gpus, &cfg);
        // Load imbalance is visible through the slowest reducer: the sort +
        // reduce milestones stretch with the most loaded reducer.
        results.push((s.label(), row.total_ms));
        t.row(&[
            s.label().to_string(),
            format!("{:.1}", row.total_ms),
            format!("{:.1}", row.sort_ms),
            format!("{:.1}", row.reduce_ms),
            format!("{:.3}", imbalance_of(s, size, gpus)),
        ]);
    }
    print_table("partition strategies", &t);

    let best = results.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "fastest: {} ({:.1} ms) — paper picked round-robin",
        best.0, best.1
    );
}

/// Screen-space load imbalance of a strategy over one brick's footprint —
/// the granularity at which fragments actually arrive. A single brick covers
/// a small rectangle, which is where striped/tiled schemes skew.
fn imbalance_of(s: PartitionStrategy, _size: u32, gpus: u32) -> f64 {
    let scale = BenchScale::from_env();
    let img = scale.image();
    let part = s.build(img);
    // A typical brick footprint: an eighth of the image, off-center.
    let (x0, y0) = (img / 3, img / 2);
    let side = img / 8;
    let keys = (y0..y0 + side).flat_map(move |y| (x0..x0 + side).map(move |x| y * img + x));
    mgpu_mapreduce::partition::imbalance(part.as_ref(), keys, gpus)
}
