//! Figure 3 reproduction: stacked runtime breakdown (Map / Partition + I/O /
//! Sort / Reduce) for 128³–1024³ volumes at 1–32 GPUs, 512² image.
//!
//! `cargo run --release -p mgpu-bench --bin fig3`
//! (scale with `MGPU_BENCH_SCALE=0.25` for a quick pass)

use mgpu_bench::figures::{fig3_report, run_sweep};
use mgpu_bench::BenchScale;

fn main() {
    let scale = BenchScale::from_env();
    println!(
        "Figure 3 — runtime breakdown by phase (scale {:.2})",
        scale.factor
    );
    let rows = run_sweep(&scale);
    fig3_report(&rows);
}
