//! Pipeline inspector: ASCII Gantt timeline + per-resource utilization for
//! one rendering configuration — makes the overlap the paper relies on
//! ("hiding communication requirements behind computation") visible.
//!
//! `cargo run --release -p mgpu-bench --bin timeline [size] [gpus]`

use mgpu_bench::{bench_volume, figure_config, print_table, standard_scene, BenchScale, Table};
use mgpu_cluster::{ClusterSpec, ResourceMap};
use mgpu_mapreduce::{build_trace, run_job, CostBook, JobConfig, TraceOptions};
use mgpu_sim::{ascii_timeline, resource_use, simulate};
use mgpu_voldata::Dataset;
use mgpu_volren::brick::{RenderBrick, Staging};
use mgpu_volren::mapper::VolumeMapper;
use mgpu_volren::reduce::CompositeReducer;
use mgpu_volren::PartitionStrategy;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let gpus: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let scale = BenchScale::from_env();
    let cfg = figure_config(&scale);

    let volume = bench_volume(Dataset::Skull, size);
    let scene = standard_scene(&volume);
    let spec = ClusterSpec::accelerator_cluster(gpus);

    // Run the job manually so we keep the trace around for inspection.
    let grid = mgpu_voldata::BrickGrid::subdivide(
        volume.dims(),
        &mgpu_voldata::BrickPolicy::for_gpus(gpus, cfg.max_brick_voxels),
    );
    let store = Arc::new(mgpu_voldata::BrickStore::new(
        volume.clone(),
        grid.clone(),
        1,
        u64::MAX,
    ));
    let bricks: Vec<RenderBrick> = (0..grid.brick_count())
        .map(|i| RenderBrick::new(Arc::clone(&store), i, Staging::HostResident))
        .collect();
    let mapper = VolumeMapper::new(scene.clone(), cfg.image, 1.0, cfg.early_term, 2);
    let reducer = CompositeReducer {
        background: scene.background,
    };
    let partitioner = PartitionStrategy::RoundRobin.build(cfg.image.0);
    let job_cfg = JobConfig::new(gpus, cfg.image.0 * cfg.image.1);
    let out = run_job(
        &bricks,
        &mapper,
        &reducer,
        partitioner.as_ref(),
        None,
        &spec,
        &job_cfg,
    );

    let book = CostBook::from_cluster(&spec);
    let trace = build_trace(&out.record, &spec, &book, &TraceOptions::default());
    let schedule = simulate(&trace);

    println!(
        "skull {size}^3 on {gpus} GPUs — {} tasks, makespan {:.1} ms\n",
        trace.len(),
        schedule.makespan().as_secs_f64() * 1e3
    );
    println!("resource legend (per cluster::ResourceMap order): GPUs, PCIe links,");
    println!("host cores, disks, NICs-out, NICs-in. K=kernel H=h2d D=d2h/disk");
    println!("P=partition N=net-send/recv L=local-copy S=sort R=reduce\n");
    println!("{}", ascii_timeline(&trace, &schedule, 100));

    let mut t = Table::new(&["resource", "class", "busy ms", "tasks", "utilization"]);
    let mut tr_probe = mgpu_sim::Trace::new();
    let rm = ResourceMap::build(&spec, &mut tr_probe);
    let class_of = |r: u32| -> &'static str {
        let r = mgpu_sim::ResourceId(r);
        if rm.gpu.contains(&r) {
            "gpu"
        } else if rm.pcie.contains(&r) {
            "pcie"
        } else if rm.core.contains(&r) {
            "core"
        } else if rm.disk.contains(&r) {
            "disk"
        } else if rm.nic_out.contains(&r) {
            "nic-out"
        } else {
            "nic-in"
        }
    };
    for u in resource_use(&trace, &schedule) {
        if u.tasks == 0 {
            continue;
        }
        t.row(&[
            format!("r{:02}", u.resource),
            class_of(u.resource).to_string(),
            format!("{:.2}", u.busy.as_millis_f64()),
            u.tasks.to_string(),
            format!("{:.0}%", u.utilization * 100.0),
        ]);
    }
    print_table("resource utilization", &t);
}
