//! §3.1.2 ablation: CPU vs GPU compositing in the reduce phase.
//!
//! "We found empirically that while the GPU would be very good at
//! compositing ... it is actually quicker to do the compositing on the CPU."

use mgpu_bench::{figure_config, print_table, run_point, BenchScale, Table};
use mgpu_voldata::Dataset;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(256);
    println!("reduce-device ablation at {size}^3");

    let mut t = Table::new(&["gpus", "cpu reduce ms", "gpu reduce ms", "winner"]);
    for gpus in [4u32, 8, 16] {
        let mut cfg = figure_config(&scale);
        cfg.trace.reduce_on_gpu = false;
        let cpu = run_point(Dataset::Skull, size, gpus, &cfg);
        cfg.trace.reduce_on_gpu = true;
        let gpu = run_point(Dataset::Skull, size, gpus, &cfg);
        t.row(&[
            gpus.to_string(),
            format!("{:.1}", cpu.total_ms),
            format!("{:.1}", gpu.total_ms),
            if cpu.total_ms <= gpu.total_ms {
                "cpu"
            } else {
                "gpu"
            }
            .to_string(),
        ]);
    }
    print_table("reduce on CPU vs GPU", &t);
    println!("paper: CPU wins at this scale; GPU pays upload + many small kernels.");
}
