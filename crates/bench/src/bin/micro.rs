//! §3 micro-benchmarks: disk / H2D / D2H transfer anchors.
//!
//! `cargo run --release -p mgpu-bench --bin micro`

fn main() {
    mgpu_bench::figures::micro_report();
}
