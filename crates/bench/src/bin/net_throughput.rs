//! Network front-end throughput: clients × connections over a loopback
//! [`RenderServer`], with client-side round-trip accounting.
//!
//! Each *client* is a thread standing for one user; it opens `connections`
//! TCP connections and round-robins its frame requests across them (the
//! fan-out a connection pool would give a real front-end). Every request is
//! timed individually, so the table reports wall frames/sec next to p50/p90
//! round-trip latency — the loopback protocol overhead on top of the render
//! itself. Repeated views per client exercise the frame cache across the
//! wire; distinct (dataset, cluster) pairs give the shard router keys to
//! spread.
//!
//! `--smoke` shrinks the sweep for CI and writes `BENCH_net.json`
//! (frames/sec, cache hit rate, p50 queue wait, p50/p90 round trip) for the
//! per-PR perf-trend artifact.
//!
//!     cargo run --release -p mgpu-bench --bin net_throughput -- [--smoke] [--shards N]

use std::time::{Duration, Instant};

use mgpu_bench::JsonObject;
use mgpu_net::{NetSceneRequest, RenderClient, RenderServer, ServerConfig};
use mgpu_serve::ServiceConfig;
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

struct SweepPoint {
    clients: usize,
    connections: usize,
    frames_per_client: usize,
}

struct SweepResult {
    wall: Duration,
    rtts: Vec<Duration>,
    server_frames: u64,
    cache_hit_rate: f64,
    p50_queue_wait: Duration,
    frames_per_sec: f64,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_point(point: &SweepPoint, shards: usize, volume_size: u32, image: u32) -> SweepResult {
    let server = RenderServer::start(ServerConfig {
        shards,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.addr();
    let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
    let started = Instant::now();

    let rtts: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..point.clients)
            .map(|c| {
                let datasets = &datasets;
                scope.spawn(move || {
                    let mut pool: Vec<RenderClient> = (0..point.connections)
                        .map(|_| RenderClient::connect(addr).expect("connect"))
                        .collect();
                    let dataset = datasets[c % datasets.len()];
                    let gpus = 1 + (c % 2) as u32;
                    let transfer = TransferFunction::for_dataset(dataset.name());
                    let mut rtts = Vec::with_capacity(point.frames_per_client);
                    for f in 0..point.frames_per_client {
                        // Two repeated views per client → cache traffic.
                        let view = f % point.frames_per_client.saturating_sub(2).max(1);
                        let request = NetSceneRequest::orbit_dataset(
                            dataset,
                            volume_size,
                            gpus,
                            view as f32 * 29.0,
                            15.0,
                            &transfer,
                        )
                        .with_config(RenderConfig::test_size(image));
                        let client = &mut pool[f % point.connections];
                        let sent = Instant::now();
                        let frame = client.render(&request).expect("render over socket");
                        rtts.push(sent.elapsed());
                        assert_eq!(frame.image.width(), image);
                    }
                    rtts
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let wall = started.elapsed();
    let report = server.shutdown();
    let total = (point.clients * point.frames_per_client) as u64;
    assert_eq!(report.frames_completed, total, "every frame accounted for");
    let mut sorted = rtts.clone();
    sorted.sort_unstable();
    SweepResult {
        wall,
        rtts: sorted,
        server_frames: report.frames_completed,
        cache_hit_rate: report.cache_hit_rate(),
        p50_queue_wait: report.queue_wait_p50(),
        frames_per_sec: total as f64 / wall.as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);
    let (volume_size, image, frames): (u32, u32, usize) =
        if smoke { (16, 48, 6) } else { (32, 96, 8) };
    let sweep: Vec<(usize, usize)> = if smoke {
        vec![(2, 1), (2, 2)]
    } else {
        vec![(1, 1), (2, 1), (2, 2), (4, 1), (4, 2)]
    };

    println!(
        "net throughput — {shards}-shard server on loopback, {volume_size}^3 volumes, \
         {image}^2 frames, {frames} frames/client\n"
    );
    println!(
        "{:>7} {:>5} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "clients", "conns", "frames/s", "p50 rtt", "p90 rtt", "max rtt", "hit rate", "p50 wait"
    );

    let mut smoke_summary: Option<SweepResult> = None;
    let mut smoke_point = (0usize, 0usize);
    for (clients, connections) in sweep {
        let point = SweepPoint {
            clients,
            connections,
            frames_per_client: frames,
        };
        let result = run_point(&point, shards, volume_size, image);
        println!(
            "{:>7} {:>5} {:>9.2} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.1}% {:>7.2}ms",
            clients,
            connections,
            result.frames_per_sec,
            quantile(&result.rtts, 0.5).as_secs_f64() * 1e3,
            quantile(&result.rtts, 0.9).as_secs_f64() * 1e3,
            result
                .rtts
                .last()
                .copied()
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
            result.cache_hit_rate * 100.0,
            result.p50_queue_wait.as_secs_f64() * 1e3,
        );
        assert!(
            result.cache_hit_rate > 0.0,
            "repeated views must produce cache hits over the wire"
        );
        // The trend artifact tracks the widest smoke point.
        if smoke && (clients, connections) >= smoke_point {
            smoke_point = (clients, connections);
            smoke_summary = Some(result);
        }
    }
    println!(
        "\nround-trip = encode + loopback TCP + queue + render + frame download; \
         the gap between p50 rtt and p50 queue wait is protocol + pixel transfer"
    );

    if let Some(result) = smoke_summary {
        JsonObject::new()
            .str("bench", "net_throughput")
            .int("shards", shards as u64)
            .int("clients", smoke_point.0 as u64)
            .int("connections", smoke_point.1 as u64)
            .int("frames", result.server_frames)
            .num("frames_per_sec", result.frames_per_sec)
            .num("cache_hit_rate", result.cache_hit_rate)
            .num(
                "p50_queue_wait_ms",
                result.p50_queue_wait.as_secs_f64() * 1e3,
            )
            .num(
                "p50_rtt_ms",
                quantile(&result.rtts, 0.5).as_secs_f64() * 1e3,
            )
            .num(
                "p90_rtt_ms",
                quantile(&result.rtts, 0.9).as_secs_f64() * 1e3,
            )
            .num("wall_secs", result.wall.as_secs_f64())
            .write("BENCH_net.json")
            .expect("write BENCH_net.json");
    }
}
