//! Network front-end throughput, measured through the `RenderBackend`
//! trait, in two parts:
//!
//! 1. **Clients × connections** over a loopback [`RenderServer`]: each
//!    *client* is a thread standing for one user; it opens `connections`
//!    [`RemoteBackend`]s and round-robins its frame requests across them
//!    (the fan-out a connection pool gives a real front-end). Every request
//!    is timed individually, so the table reports wall frames/sec next to
//!    p50/p90 round-trip latency — the loopback protocol overhead on top of
//!    the render itself. Repeated views per client exercise the frame cache
//!    across the wire; distinct (dataset, cluster) pairs give the shard
//!    router keys to spread.
//! 2. **Node sweep** — the same many-volume workload through a
//!    [`NodePool`] over 1..N [`RenderServer`]s: the placement directory
//!    spreads distinct batch keys over whole nodes, the multi-node
//!    analogue of `serve_throughput`'s shard sweep.
//!
//! `--smoke` shrinks the sweep for CI and writes `BENCH_net.json`
//! (frames/sec, cache hit rate, p50 queue wait, p50/p90 round trip, pooled
//! frames/sec) for the per-PR perf-trend artifact.
//!
//!     cargo run --release -p mgpu-bench --bin net_throughput -- [--smoke] [--rebalance] [--shards N]
//!
//! `--rebalance` adds an elastic-pool pass: traffic skewed onto one batch
//! key, one `rebalance_once` tick migrating it (pre-warm before cutover,
//! epoch bump), with the migration delta recorded in `BENCH_net.json`.

use std::time::{Duration, Instant};

use mgpu_bench::JsonObject;
use mgpu_cluster::ClusterSpec;
use mgpu_net::{Directory, NodePool, NodePoolConfig, RemoteBackend, RenderServer, ServerConfig};
use mgpu_serve::{Priority, RenderBackend, SceneRequest, ServiceConfig};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::{RenderConfig, TransferFunction};

struct SweepPoint {
    clients: usize,
    connections: usize,
    frames_per_client: usize,
}

struct SweepResult {
    wall: Duration,
    rtts: Vec<Duration>,
    server_frames: u64,
    cache_hit_rate: f64,
    p50_queue_wait: Duration,
    frames_per_sec: f64,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn request_for(dataset: Dataset, volume_size: u32, gpus: u32, az: f32, image: u32) -> SceneRequest {
    let volume = dataset.volume(volume_size);
    let transfer = TransferFunction::for_dataset(dataset.name());
    let scene = Scene::orbit(&volume, az, 15.0, transfer);
    SceneRequest {
        spec: ClusterSpec::accelerator_cluster(gpus),
        volume,
        scene,
        config: RenderConfig::test_size(image),
        priority: Priority::Normal,
    }
}

fn run_point(point: &SweepPoint, shards: usize, volume_size: u32, image: u32) -> SweepResult {
    let server = RenderServer::start(ServerConfig {
        shards,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.addr();
    let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
    let started = Instant::now();

    let rtts: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..point.clients)
            .map(|c| {
                let datasets = &datasets;
                scope.spawn(move || {
                    let pool: Vec<RemoteBackend> = (0..point.connections)
                        .map(|_| RemoteBackend::connect(addr).expect("connect"))
                        .collect();
                    let dataset = datasets[c % datasets.len()];
                    let gpus = 1 + (c % 2) as u32;
                    let mut rtts = Vec::with_capacity(point.frames_per_client);
                    for f in 0..point.frames_per_client {
                        // Two repeated views per client → cache traffic.
                        let view = f % point.frames_per_client.saturating_sub(2).max(1);
                        let request =
                            request_for(dataset, volume_size, gpus, view as f32 * 29.0, image);
                        let backend = &pool[f % point.connections];
                        let sent = Instant::now();
                        let frame = backend.render(request).expect("render over socket");
                        rtts.push(sent.elapsed());
                        assert_eq!(frame.image.width(), image);
                    }
                    rtts
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let wall = started.elapsed();
    let report = server.shutdown();
    let total = (point.clients * point.frames_per_client) as u64;
    assert_eq!(report.frames_completed, total, "every frame accounted for");
    let mut sorted = rtts.clone();
    sorted.sort_unstable();
    SweepResult {
        wall,
        rtts: sorted,
        server_frames: report.frames_completed,
        cache_hit_rate: report.cache_hit_rate(),
        p50_queue_wait: report.queue_wait_p50(),
        frames_per_sec: total as f64 / wall.as_secs_f64(),
    }
}

/// Part 2: the same many-volume workload through a NodePool over 1..N
/// whole render nodes. Returns the widest point's frames/sec for the trend
/// artifact.
fn node_sweep(
    max_nodes: usize,
    shards: usize,
    volumes: usize,
    frames_each: usize,
    volume_size: u32,
    image: u32,
) -> f64 {
    println!("\nnode sweep — {volumes} distinct volumes × {frames_each} frames, pooled:");
    let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
    let mut widest = 0.0f64;
    for nodes in 1..=max_nodes {
        let servers: Vec<RenderServer> = (0..nodes)
            .map(|_| {
                RenderServer::start(ServerConfig {
                    shards,
                    service: ServiceConfig {
                        workers: 2,
                        ..ServiceConfig::default()
                    },
                    ..ServerConfig::default()
                })
                .expect("bind loopback node")
            })
            .collect();
        let pool = NodePool::new(
            Directory::new(servers.iter().map(RenderServer::addr).collect())
                .expect("distinct loopback nodes"),
            NodePoolConfig::default(),
        );
        let started = Instant::now();
        let total = std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..volumes)
                .map(|v| {
                    let datasets = &datasets;
                    scope.spawn(move || {
                        let dataset = datasets[v % datasets.len()];
                        let gpus = 1 + (v % 2) as u32;
                        for f in 0..frames_each {
                            let request =
                                request_for(dataset, volume_size, gpus, f as f32 * 31.0, image);
                            pool.render(request).expect("pooled render");
                        }
                        frames_each as u64
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("volume thread"))
                .sum::<u64>()
        });
        let wall = started.elapsed();
        let merged = pool.report().expect("pool report");
        assert_eq!(merged.frames_completed, total);
        let per_node: Vec<u64> = servers
            .into_iter()
            .map(|s| s.shutdown().frames_completed)
            .collect();
        let fps = total as f64 / wall.as_secs_f64();
        widest = fps;
        println!("  {nodes} node(s): {fps:>8.2} frames/s, per-node frames {per_node:?}");
    }
    widest
}

/// Part 3: the C10K knee — `total` connections held open against ONE
/// server, of which only `hot` issue renders; the rest are mostly-idle
/// sessions that just sit registered in the event loop (the fleet-viewer
/// shape: thousands watching, a few driving). Reports the hot sessions'
/// p50/p99 round trip as the idle population grows: a thread-per-connection
/// design pays for every parked thread, a readiness loop should price only
/// the hot set.
fn knee_point(
    total: usize,
    hot: usize,
    frames_each: usize,
    shards: usize,
    volume_size: u32,
    image: u32,
) -> (f64, Duration, Duration) {
    let server = RenderServer::start(ServerConfig {
        shards,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.addr();

    // The idle population: connected, handshaken, then silent.
    let idle: Vec<mgpu_net::RenderClient> = (0..total.saturating_sub(hot))
        .map(|_| mgpu_net::RenderClient::connect(addr).expect("idle connect"))
        .collect();

    let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
    let started = Instant::now();
    let mut rtts: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..hot)
            .map(|h| {
                let datasets = &datasets;
                scope.spawn(move || {
                    let client = mgpu_net::RenderClient::connect(addr).expect("hot connect");
                    let backend = RemoteBackend::from_client(client);
                    let dataset = datasets[h % datasets.len()];
                    let mut rtts = Vec::with_capacity(frames_each);
                    for f in 0..frames_each {
                        let request = request_for(dataset, volume_size, 1, f as f32 * 23.0, image);
                        let sent = Instant::now();
                        backend.render(request).expect("hot render");
                        rtts.push(sent.elapsed());
                    }
                    rtts
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("hot session"))
            .collect()
    });
    let wall = started.elapsed();
    rtts.sort_unstable();
    let (p50, p99) = (quantile(&rtts, 0.5), quantile(&rtts, 0.99));
    drop(idle);
    server.shutdown();
    let fps = (hot * frames_each) as f64 / wall.as_secs_f64();
    (fps, p50, p99)
}

/// What the `--rebalance` pass measured, for the trend artifact.
struct RebalanceSmoke {
    imbalance: f64,
    moves: u64,
    owner_before: usize,
    owner_after: usize,
    prewarmed: bool,
    epoch: u64,
    /// Frames the destination served for the migrated key after cutover.
    migrated_frames: u64,
}

/// Part 4 (`--rebalance`): skew all traffic onto one key so its owner
/// runs hot, then let a single rebalance pass move the key — pre-warm
/// before cutover, epoch bump, and the migration visible in the
/// destination's frame delta.
fn rebalance_smoke(shards: usize, volume_size: u32, image: u32) -> RebalanceSmoke {
    use mgpu_net::{rebalance_once, RebalanceConfig};
    let servers: Vec<RenderServer> = (0..2)
        .map(|_| {
            RenderServer::start(ServerConfig {
                shards,
                service: ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
                ..ServerConfig::default()
            })
            .expect("bind loopback node")
        })
        .collect();
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("validated pool");

    // One batch key carries every frame: its owner runs hot, the other
    // node sits idle — the canonical imbalance.
    for f in 0..10 {
        pool.render(request_for(
            Dataset::Skull,
            volume_size,
            1,
            f as f32 * 33.0,
            image,
        ))
        .expect("skewed render");
    }
    let probe = request_for(Dataset::Skull, volume_size, 1, 0.0, image);
    let owner_before = pool.node_for(&probe);
    let frames_before: Vec<u64> = pool
        .node_stats()
        .iter()
        .map(|s| s.as_ref().map(|s| s.merged.frames_completed).unwrap_or(0))
        .collect();

    let outcome = rebalance_once(
        &pool,
        &RebalanceConfig {
            band: 1.2,
            min_frames: 4,
            ..RebalanceConfig::default()
        },
    );
    let owner_after = pool.node_for(&probe);
    assert_eq!(outcome.moves.len(), 1, "the skewed key must migrate");
    assert_ne!(owner_after, owner_before, "migration must change the owner");
    assert!(
        outcome.moves[0].prewarmed,
        "the destination plan cache must be pre-warmed before cutover"
    );

    // Post-cutover traffic lands on the new owner (plan already warm).
    for f in 0..4 {
        pool.render(request_for(
            Dataset::Skull,
            volume_size,
            1,
            500.0 + f as f32 * 33.0,
            image,
        ))
        .expect("post-migration render");
    }
    let frames_after: Vec<u64> = pool
        .node_stats()
        .iter()
        .map(|s| s.as_ref().map(|s| s.merged.frames_completed).unwrap_or(0))
        .collect();
    let migrated_frames = frames_after[owner_after].saturating_sub(frames_before[owner_after]);
    assert!(
        migrated_frames >= 4,
        "post-cutover frames must land on the destination"
    );
    let smoke = RebalanceSmoke {
        imbalance: outcome.imbalance,
        moves: outcome.moves.len() as u64,
        owner_before,
        owner_after,
        prewarmed: outcome.moves[0].prewarmed,
        epoch: outcome.epoch,
        migrated_frames,
    };
    drop(pool);
    for server in servers {
        server.shutdown();
    }
    smoke
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebalance = args.iter().any(|a| a == "--rebalance");
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);
    let (volume_size, image, frames): (u32, u32, usize) =
        if smoke { (16, 48, 6) } else { (32, 96, 8) };
    let sweep: Vec<(usize, usize)> = if smoke {
        vec![(2, 1), (2, 2)]
    } else {
        vec![(1, 1), (2, 1), (2, 2), (4, 1), (4, 2)]
    };

    println!(
        "net throughput — {shards}-shard server on loopback, {volume_size}^3 volumes, \
         {image}^2 frames, {frames} frames/client (RenderBackend trait end to end)\n"
    );
    println!(
        "{:>7} {:>5} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "clients", "conns", "frames/s", "p50 rtt", "p90 rtt", "max rtt", "hit rate", "p50 wait"
    );

    let mut smoke_summary: Option<SweepResult> = None;
    let mut smoke_point = (0usize, 0usize);
    for (clients, connections) in sweep {
        let point = SweepPoint {
            clients,
            connections,
            frames_per_client: frames,
        };
        let result = run_point(&point, shards, volume_size, image);
        println!(
            "{:>7} {:>5} {:>9.2} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.1}% {:>7.2}ms",
            clients,
            connections,
            result.frames_per_sec,
            quantile(&result.rtts, 0.5).as_secs_f64() * 1e3,
            quantile(&result.rtts, 0.9).as_secs_f64() * 1e3,
            result
                .rtts
                .last()
                .copied()
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
            result.cache_hit_rate * 100.0,
            result.p50_queue_wait.as_secs_f64() * 1e3,
        );
        assert!(
            result.cache_hit_rate > 0.0,
            "repeated views must produce cache hits over the wire"
        );
        // The trend artifact tracks the widest smoke point.
        if smoke && (clients, connections) >= smoke_point {
            smoke_point = (clients, connections);
            smoke_summary = Some(result);
        }
    }
    println!(
        "\nround-trip = encode + loopback TCP + queue + render + frame download; \
         the gap between p50 rtt and p50 queue wait is protocol + pixel transfer"
    );

    let (max_nodes, volumes, each) = if smoke { (2, 4, 2) } else { (2, 6, 4) };
    let pooled_fps = node_sweep(max_nodes, shards, volumes, each, volume_size, image);

    // Part 3: the connection knee. `--connections 64,256,1024` overrides
    // the default sweep of mostly-idle session counts.
    let knee_points: Vec<usize> = args
        .iter()
        .position(|a| a == "--connections")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .filter_map(|v| v.trim().parse::<usize>().ok())
                .collect()
        })
        .unwrap_or_else(|| {
            if smoke {
                vec![16, 64]
            } else {
                vec![64, 256, 1024]
            }
        });
    let hot = 4usize;
    let knee_frames = if smoke { 4 } else { 6 };
    println!(
        "\nconnection knee — {hot} hot sessions rendering, the rest idle \
         (one event loop owns them all):"
    );
    println!(
        "{:>11} {:>9} {:>10} {:>10}",
        "connections", "frames/s", "p50 rtt", "p99 rtt"
    );
    let mut knee_widest: Option<(usize, f64, Duration, Duration)> = None;
    for total in knee_points {
        let total = total.max(hot);
        let (fps, p50, p99) = knee_point(total, hot, knee_frames, shards, volume_size, image);
        println!(
            "{:>11} {:>9.2} {:>8.2}ms {:>8.2}ms",
            total,
            fps,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        );
        knee_widest = Some((total, fps, p50, p99));
    }

    let rebalance_summary = if rebalance {
        let r = rebalance_smoke(shards, volume_size, image);
        println!(
            "\nrebalance — skewed key, one pass: imbalance {:.2}, {} move(s) \
             node {} → node {} (pre-warmed: {}), epoch {}, {} post-cutover frames on the destination",
            r.imbalance, r.moves, r.owner_before, r.owner_after, r.prewarmed, r.epoch, r.migrated_frames
        );
        Some(r)
    } else {
        None
    };

    if let Some(result) = smoke_summary {
        let json = JsonObject::new()
            .str("bench", "net_throughput")
            .int("shards", shards as u64)
            .int("clients", smoke_point.0 as u64)
            .int("connections", smoke_point.1 as u64)
            .int("frames", result.server_frames)
            .num("frames_per_sec", result.frames_per_sec)
            .num("cache_hit_rate", result.cache_hit_rate)
            .num(
                "p50_queue_wait_ms",
                result.p50_queue_wait.as_secs_f64() * 1e3,
            )
            .num(
                "p50_rtt_ms",
                quantile(&result.rtts, 0.5).as_secs_f64() * 1e3,
            )
            .num(
                "p90_rtt_ms",
                quantile(&result.rtts, 0.9).as_secs_f64() * 1e3,
            )
            .num("pooled_frames_per_sec", pooled_fps);
        let json = if let Some((total, fps, p50, p99)) = knee_widest {
            json.int("knee_connections", total as u64)
                .num("knee_frames_per_sec", fps)
                .num("knee_p50_rtt_ms", p50.as_secs_f64() * 1e3)
                .num("knee_p99_rtt_ms", p99.as_secs_f64() * 1e3)
        } else {
            json
        };
        let json = if let Some(r) = &rebalance_summary {
            json.num("rebalance_imbalance", r.imbalance)
                .int("rebalance_moves", r.moves)
                .int("rebalance_owner_before", r.owner_before as u64)
                .int("rebalance_owner_after", r.owner_after as u64)
                .int("rebalance_prewarmed", r.prewarmed as u64)
                .int("rebalance_epoch", r.epoch)
                .int("rebalance_migrated_frames", r.migrated_frames)
        } else {
            json
        };
        json.num("wall_secs", result.wall.as_secs_f64())
            .write("BENCH_net.json")
            .expect("write BENCH_net.json");
    }
}
