//! §6.3 bottleneck analysis: communication vs computation at 1024³.
//!
//! `cargo run --release -p mgpu-bench --bin bottlenecks`

use mgpu_bench::BenchScale;

fn main() {
    mgpu_bench::figures::bottleneck_report(&BenchScale::from_env());
}
