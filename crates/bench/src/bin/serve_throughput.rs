//! Render-service throughput experiment, in three parts:
//!
//! 1. **Mode sweep** — concurrent clients × queued scenes, comparing the
//!    full service (plan cache + batching + frame cache) against batching
//!    alone and the bare per-frame path on the same workload. Reports wall
//!    frames/sec, batch occupancy, cache hit rate and brick stagings.
//! 2. **Cross-batch plan reuse** — repeated same-volume waves (each wave a
//!    separate batch): with the plan cache on, later waves reuse the warm
//!    brick store instead of re-staging, and the report's plan-cache hit
//!    rate shows it.
//! 3. **Shard sweep** — the same many-volume workload through a
//!    [`ShardedService`] with 1..N shards: rendezvous routing spreads
//!    distinct volumes over independent queues/plan caches.
//!
//!     cargo run --release -p mgpu-bench --bin serve_throughput [-- --smoke] [--shards N]

use mgpu_bench::JsonObject;
use mgpu_cluster::ClusterSpec;
use mgpu_serve::{RenderBackend, RenderService, ServiceConfig, ServiceReport, ShardedService};
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

struct Workload {
    clients: usize,
    frames_per_client: usize,
    /// Distinct azimuths per client; fewer than `frames_per_client` means
    /// repeated views that exercise the frame cache.
    distinct_views: usize,
}

fn run(w: &Workload, volume_size: u32, image: u32, service_cfg: ServiceConfig) -> ServiceReport {
    let service = RenderService::start(ServiceConfig {
        start_paused: true, // enqueue the full workload, then release
        ..service_cfg
    });
    let cfg = RenderConfig::test_size(image);
    // Clients alternate over two datasets: same-volume batching happens
    // across clients, not only within one.
    let volumes = [
        Dataset::Skull.volume(volume_size),
        Dataset::Supernova.volume(volume_size),
    ];
    let transfers = [TransferFunction::bone(), TransferFunction::fire()];

    let sessions: Vec<_> = (0..w.clients)
        .map(|c| {
            service.session(
                ClusterSpec::accelerator_cluster(2),
                volumes[c % volumes.len()].clone(),
                cfg.clone(),
            )
        })
        .collect();

    let mut tickets = Vec::new();
    for f in 0..w.frames_per_client {
        for (c, session) in sessions.iter().enumerate() {
            let view = f % w.distinct_views;
            let az = view as f32 * (360.0 / w.distinct_views as f32);
            tickets.push(session.request_orbit(az, 20.0, transfers[c % transfers.len()].clone()));
        }
    }
    service.resume();
    for t in tickets {
        t.wait();
    }
    service.shutdown()
}

fn print_row(clients: usize, mode: &str, r: &ServiceReport) {
    println!(
        "{:>7} {:>7} {:>9.2} {:>7.2} {:>8.1}% {:>8.1}% {:>9} {:>9} {:>9}",
        clients,
        mode,
        r.frames_per_sec(),
        r.batch_occupancy(),
        r.cache_hit_rate() * 100.0,
        r.plan_cache_hit_rate() * 100.0,
        r.brick_stagings,
        r.brick_reuses,
        r.frames_completed
    );
}

/// Part 2: repeated same-volume waves, each wave its own batch. The plan
/// cache carries the warm store across waves; the baseline re-stages.
fn cross_batch_reuse(volume_size: u32, image: u32, waves: usize, frames_per_wave: usize) {
    let run_waves = |plan_cache_plans: usize| -> ServiceReport {
        let service = RenderService::start(ServiceConfig {
            workers: 1,
            max_batch: frames_per_wave,
            cache_frames: 0, // isolate plan reuse from frame caching
            plan_cache_plans,
            ..ServiceConfig::default()
        });
        let volume = Dataset::Skull.volume(volume_size);
        let session = service.session(
            ClusterSpec::accelerator_cluster(2),
            volume.clone(),
            RenderConfig::test_size(image),
        );
        for wave in 0..waves {
            let tickets: Vec<_> = (0..frames_per_wave)
                .map(|f| {
                    let az = (wave * frames_per_wave + f) as f32 * 17.0;
                    session.request_orbit(az, 20.0, TransferFunction::bone())
                })
                .collect();
            // Waiting out the wave forces a batch boundary before the next.
            for t in tickets {
                t.wait();
            }
        }
        service.shutdown()
    };

    let warm = run_waves(8);
    let cold = run_waves(0);
    println!("\ncross-batch plan reuse — {waves} waves × {frames_per_wave} frames, same volume:");
    println!(
        "  plan cache ON : {:>4} stagings, {:>4} reuses, plan hit rate {:>5.1}% ({} batches)",
        warm.brick_stagings,
        warm.brick_reuses,
        warm.plan_cache_hit_rate() * 100.0,
        warm.batches
    );
    println!(
        "  plan cache OFF: {:>4} stagings, {:>4} reuses, plan hit rate {:>5.1}% ({} batches)",
        cold.brick_stagings,
        cold.brick_reuses,
        cold.plan_cache_hit_rate() * 100.0,
        cold.batches
    );
    assert!(
        warm.brick_stagings < cold.brick_stagings,
        "plan cache must cut cross-batch stagings ({} vs {})",
        warm.brick_stagings,
        cold.brick_stagings
    );
    assert!(
        warm.brick_reuses > cold.brick_reuses,
        "plan cache must raise staging reuse ({} vs {})",
        warm.brick_reuses,
        cold.brick_reuses
    );
    assert!(warm.plan_cache_hit_rate() > 0.0);
}

/// Part 3: many distinct volumes through 1..max_shards shards.
fn shard_sweep(
    volume_size: u32,
    image: u32,
    volumes: usize,
    frames_each: usize,
    max_shards: usize,
) {
    println!("\nshard sweep — {volumes} distinct volumes × {frames_each} frames:");
    let mut shard_counts = vec![1usize];
    let mut s = 2;
    while s <= max_shards {
        shard_counts.push(s);
        s *= 2;
    }
    for &shards in &shard_counts {
        let sharded = ShardedService::start(
            shards,
            ServiceConfig {
                workers: 2,
                start_paused: true,
                ..ServiceConfig::default()
            },
        );
        let cfg = RenderConfig::test_size(image);
        let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
        let sessions: Vec<_> = (0..volumes)
            .map(|v| {
                // Distinct (dataset, cluster) pairs: different batch keys,
                // so rendezvous routing has something to spread.
                let base = datasets[v % datasets.len()].volume(volume_size);
                sharded.session(
                    ClusterSpec::accelerator_cluster(1 + (v % 2) as u32),
                    base,
                    cfg.clone(),
                )
            })
            .collect();
        let mut tickets = Vec::new();
        for f in 0..frames_each {
            for session in &sessions {
                tickets.push(session.request_orbit(
                    f as f32 * 31.0,
                    10.0,
                    TransferFunction::bone(),
                ));
            }
        }
        sharded.resume();
        for t in tickets {
            t.wait();
        }
        let per_shard: Vec<u64> = sharded
            .shard_reports()
            .iter()
            .map(|r| r.frames_completed)
            .collect();
        let merged = sharded.shutdown();
        println!(
            "  {shards} shard(s): {:>8.2} frames/s, per-shard frames {:?}, mean queue wait {:.2} ms",
            merged.frames_per_sec(),
            per_shard,
            merged.mean_queue_wait.as_secs_f64() * 1e3
        );
        assert_eq!(merged.frames_completed as usize, volumes * frames_each);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if smoke { 2 } else { 4 });
    let (volume_size, image, client_sweep, frames): (u32, u32, &[usize], usize) = if smoke {
        (16, 64, &[2], 6)
    } else {
        (32, 128, &[1, 2, 4], 8)
    };

    println!(
        "render-service throughput — {volume_size}^3 volumes, {image}^2 frames, \
         {frames} frames/client (2 repeated views each)\n"
    );
    println!(
        "{:>7} {:>7} {:>9} {:>7} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "clients", "mode", "frames/s", "occ", "hit rate", "plan", "stagings", "reuses", "frames"
    );

    let mut smoke_summary: Option<(usize, ServiceReport)> = None;
    for &clients in client_sweep {
        let w = Workload {
            clients,
            frames_per_client: frames,
            distinct_views: frames - 2, // two repeats per client → cache hits
        };
        let svc = |max_batch: usize, cache_frames: usize, plans: usize| ServiceConfig {
            workers: 2,
            max_batch,
            cache_frames,
            plan_cache_plans: plans,
            start_paused: true,
            ..ServiceConfig::default()
        };
        // Four modes so each effect is attributable: plan cache + batching +
        // frame cache, batching + frame cache, batching alone, and the bare
        // per-frame path.
        let full = run(&w, volume_size, image, svc(8, 256, 8));
        let no_plans = run(&w, volume_size, image, svc(8, 256, 0));
        let batch_only = run(&w, volume_size, image, svc(8, 0, 0));
        let bare = run(&w, volume_size, image, svc(1, 0, 0));
        for (mode, r) in [
            ("p+b+c", &full),
            ("b+c", &no_plans),
            ("batch", &batch_only),
            ("none", &bare),
        ] {
            print_row(clients, mode, r);
        }
        // Cache disabled in both operands: this is batching's effect alone.
        assert!(
            batch_only.brick_stagings < bare.brick_stagings,
            "batching must reduce stagings ({} vs {})",
            batch_only.brick_stagings,
            bare.brick_stagings
        );
        // Plan cache on top of batching+cache never stages more.
        assert!(
            full.brick_stagings <= no_plans.brick_stagings,
            "plan cache must not add stagings ({} vs {})",
            full.brick_stagings,
            no_plans.brick_stagings
        );
        if smoke {
            // The trend artifact tracks the full-featured mode at the
            // widest client count.
            smoke_summary = Some((clients, full));
        }
    }
    if let Some((clients, report)) = &smoke_summary {
        JsonObject::new()
            .str("bench", "serve_throughput")
            .int("clients", *clients as u64)
            .int("frames", report.frames_completed)
            .num("frames_per_sec", report.frames_per_sec())
            .num("cache_hit_rate", report.cache_hit_rate())
            .num("plan_cache_hit_rate", report.plan_cache_hit_rate())
            .num("batch_occupancy", report.batch_occupancy())
            .num(
                "p50_queue_wait_ms",
                report.queue_wait_p50().as_secs_f64() * 1e3,
            )
            .num(
                "mean_queue_wait_ms",
                report.mean_queue_wait.as_secs_f64() * 1e3,
            )
            .int("brick_stagings", report.brick_stagings)
            .write("BENCH_serve.json")
            .expect("write BENCH_serve.json");
    }
    println!(
        "\nbatched mode stages each brick once per batch (shared store); the plan \
         cache extends that across batches (warm store, 'plan' hit-rate column); \
         unbatched mode re-stages per frame — the stagings column is the paper's \
         disk/host traffic the service front-end removes"
    );

    let (waves, per_wave) = if smoke { (3, 2) } else { (4, 4) };
    cross_batch_reuse(volume_size, image, waves, per_wave);

    let (nvol, each) = if smoke { (4, 2) } else { (8, 4) };
    shard_sweep(volume_size, image, nvol, each, max_shards);
}
