//! Render-service throughput experiment: sweep concurrent clients × queued
//! scenes and compare the batched+cached service against an unbatched,
//! uncached one on the same workload. Reports wall frames/sec, batch
//! occupancy, cache hit rate and brick stagings per configuration.
//!
//!     cargo run --release -p mgpu-bench --bin serve_throughput [-- --smoke]

use mgpu_cluster::ClusterSpec;
use mgpu_serve::{RenderService, ServiceConfig, ServiceReport};
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

struct Workload {
    clients: usize,
    frames_per_client: usize,
    /// Distinct azimuths per client; fewer than `frames_per_client` means
    /// repeated views that exercise the frame cache.
    distinct_views: usize,
}

fn run(w: &Workload, volume_size: u32, image: u32, service_cfg: ServiceConfig) -> ServiceReport {
    let service = RenderService::start(ServiceConfig {
        start_paused: true, // enqueue the full workload, then release
        ..service_cfg
    });
    let cfg = RenderConfig::test_size(image);
    // Clients alternate over two datasets: same-volume batching happens
    // across clients, not only within one.
    let volumes = [
        Dataset::Skull.volume(volume_size),
        Dataset::Supernova.volume(volume_size),
    ];
    let transfers = [TransferFunction::bone(), TransferFunction::fire()];

    let sessions: Vec<_> = (0..w.clients)
        .map(|c| {
            service.session(
                ClusterSpec::accelerator_cluster(2),
                volumes[c % volumes.len()].clone(),
                cfg.clone(),
            )
        })
        .collect();

    let mut tickets = Vec::new();
    for f in 0..w.frames_per_client {
        for (c, session) in sessions.iter().enumerate() {
            let view = f % w.distinct_views;
            let az = view as f32 * (360.0 / w.distinct_views as f32);
            tickets.push(session.request_orbit(az, 20.0, transfers[c % transfers.len()].clone()));
        }
    }
    service.resume();
    for t in tickets {
        t.wait();
    }
    service.shutdown()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (volume_size, image, client_sweep, frames): (u32, u32, &[usize], usize) = if smoke {
        (16, 64, &[2], 6)
    } else {
        (32, 128, &[1, 2, 4], 8)
    };

    println!(
        "render-service throughput — {volume_size}^3 volumes, {image}^2 frames, \
         {frames} frames/client (2 repeated views each)\n"
    );
    println!(
        "{:>7} {:>7} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "clients", "mode", "frames/s", "occ", "hit rate", "stagings", "reuses", "frames"
    );

    for &clients in client_sweep {
        let w = Workload {
            clients,
            frames_per_client: frames,
            distinct_views: frames - 2, // two repeats per client → cache hits
        };
        let svc = |max_batch: usize, cache_frames: usize| ServiceConfig {
            workers: 2,
            max_batch,
            cache_frames,
            start_paused: true,
        };
        // Three modes so each effect is attributable: full service
        // (batching + cache), batching alone, and the bare per-frame path.
        let full = run(&w, volume_size, image, svc(8, 256));
        let batch_only = run(&w, volume_size, image, svc(8, 0));
        let bare = run(&w, volume_size, image, svc(1, 0));
        for (mode, r) in [("b+c", &full), ("batch", &batch_only), ("none", &bare)] {
            println!(
                "{:>7} {:>7} {:>9.2} {:>7.2} {:>8.1}% {:>9} {:>9} {:>9}",
                clients,
                mode,
                r.frames_per_sec(),
                r.batch_occupancy(),
                r.cache_hit_rate() * 100.0,
                r.brick_stagings,
                r.brick_reuses,
                r.frames_completed
            );
        }
        // Cache disabled in both operands: this is batching's effect alone.
        assert!(
            batch_only.brick_stagings < bare.brick_stagings,
            "batching must reduce stagings ({} vs {})",
            batch_only.brick_stagings,
            bare.brick_stagings
        );
    }
    println!(
        "\nbatched mode stages each brick once per batch (shared store); unbatched \
         mode re-stages per frame — the stagings column is the paper's disk/host \
         traffic the service front-end removes"
    );
}
