//! §6 ablation: direct-send (the paper's choice) vs binary-swap compositing.
//!
//! "We chose direct-send compositing because it allows an overlap of
//! communication and computation, and also because it fits within the
//! MapReduce model."

use mgpu_bench::{figure_config, print_table, run_point, BenchScale, Table};
use mgpu_voldata::Dataset;
use mgpu_volren::Compositor;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(256);
    println!("compositing ablation at {size}^3");

    let mut t = Table::new(&["gpus", "direct-send ms", "binary-swap ms", "winner"]);
    for gpus in [2u32, 4, 8, 16, 32] {
        let mut cfg = figure_config(&scale);
        cfg.compositor = Compositor::DirectSend;
        let ds = run_point(Dataset::Skull, size, gpus, &cfg);
        cfg.compositor = Compositor::BinarySwap;
        let bs = run_point(Dataset::Skull, size, gpus, &cfg);
        t.row(&[
            gpus.to_string(),
            format!("{:.1}", ds.total_ms),
            format!("{:.1}", bs.total_ms),
            if ds.total_ms <= bs.total_ms {
                "direct-send".to_string()
            } else {
                "binary-swap".to_string()
            },
        ]);
    }
    print_table("direct-send vs binary-swap", &t);
    println!("(identical pixels either way — over is associative; only the schedule differs)");
}
