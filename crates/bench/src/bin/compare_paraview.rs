//! Footnote 1 reproduction: ParaView's 346 M VPS vs this system at 16 GPUs.
//!
//! `cargo run --release -p mgpu-bench --bin compare_paraview`

use mgpu_bench::BenchScale;

fn main() {
    mgpu_bench::figures::paraview_report(&BenchScale::from_env());
}
