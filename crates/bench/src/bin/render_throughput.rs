//! Raw ray-march throughput: the batched `BlockKernel` production path
//! head-to-head against the retained scalar `Kernel` path on one resident
//! 256³ brick, plus an end-to-end out-of-core render of the paper-shaped
//! plume (1:1:4 column, 512×512×2048 at full scale).
//!
//!     cargo run --release -p mgpu-bench --bin render_throughput [-- --smoke]
//!
//! Smoke mode writes `BENCH_volren.json` — the CI trend artifact whose
//! `frames_per_sec` field (batched kernel frames over the full image) is
//! gated by `ci/bench_delta.sh`. The run also asserts the two paths agree
//! bit-for-bit, so the perf gate doubles as an equivalence check at scale.

use std::time::Instant;

use mgpu_bench::{bench_volume, standard_scene, JsonObject};
use mgpu_cluster::ClusterSpec;
use mgpu_gpu::{launch, launch_blocks, LaunchConfig, Texture3D};
use mgpu_voldata::Dataset;
use mgpu_volren::kernel::RayCastKernel;
use mgpu_volren::math::vec3;
use mgpu_volren::renderer::render;
use mgpu_volren::{RenderConfig, Residency};

struct HeadToHead {
    pixels: f64,
    scalar_px_s: f64,
    batched_px_s: f64,
    samples_per_sec: f64,
    total_samples: u64,
    p50_kernel_ms: f64,
}

/// One resident brick, full-image launch: the paper's map kernel with the
/// MapReduce plumbing stripped away, so the number is pure ray-march speed.
fn head_to_head(volume_size: u32, image: u32, reps: usize) -> HeadToHead {
    let volume = Dataset::Skull.volume(volume_size);
    let scene = standard_scene(&volume);
    let d = volume.dims();
    let ghost = 1i64;
    let store_dims = [d[0] as usize + 2, d[1] as usize + 2, d[2] as usize + 2];
    let voxels = volume.materialize_clamped([-ghost, -ghost, -ghost], store_dims);
    let texture = Texture3D::new(store_dims, voxels);
    let lut = scene.transfer.bake();
    let cfg = RenderConfig::default();
    let kernel = RayCastKernel {
        camera: &scene.camera,
        lut: &lut,
        texture: &texture,
        store_origin: vec3(-1.0, -1.0, -1.0),
        core_lo: vec3(0.0, 0.0, 0.0),
        core_hi: vec3(d[0] as f32, d[1] as f32, d[2] as f32),
        image: (image, image),
        offset: (0, 0),
        step: cfg.step_voxels,
        early_term: cfg.early_term,
    };
    let config = LaunchConfig::cover(image, image);
    let pixels = image as f64 * image as f64;

    let mut scalar_best = f64::INFINITY;
    let mut scalar_out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = launch(&kernel, config, 1);
        scalar_best = scalar_best.min(t.elapsed().as_secs_f64());
        scalar_out = Some(out);
    }
    let scalar_out = scalar_out.unwrap();

    let mut batched_times = Vec::with_capacity(reps);
    let mut batched_out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = launch_blocks(&kernel, config, 1);
        batched_times.push(t.elapsed().as_secs_f64());
        batched_out = Some(out);
    }
    let batched_out = batched_out.unwrap();
    let batched_best = batched_times.iter().cloned().fold(f64::INFINITY, f64::min);
    batched_times.sort_by(f64::total_cmp);
    let p50_kernel_ms = batched_times[batched_times.len() / 2] * 1e3;

    // The perf gate is only meaningful if the fast path is the same math.
    assert_eq!(scalar_out.stats, batched_out.stats, "launch stats diverged");
    for (i, (k, f)) in scalar_out.outputs.iter().enumerate() {
        assert_eq!(*k, batched_out.keys[i], "key mismatch at lane {i}");
        let b = &batched_out.values[i];
        assert_eq!(
            f.color.map(f32::to_bits),
            b.color.map(f32::to_bits),
            "color mismatch at lane {i}"
        );
        assert_eq!(f.depth.to_bits(), b.depth.to_bits());
        assert_eq!(f.exit.to_bits(), b.exit.to_bits());
    }

    HeadToHead {
        pixels,
        scalar_px_s: pixels / scalar_best,
        batched_px_s: pixels / batched_best,
        samples_per_sec: batched_out.stats.total_samples as f64 / batched_best,
        total_samples: batched_out.stats.total_samples,
        p50_kernel_ms,
    }
}

struct Oocore {
    wall_px_s: f64,
    wall_ms: f64,
    evictions: u64,
    materialized_mb: f64,
}

/// End-to-end out-of-core render of the plume column through the whole
/// MapReduce pipeline (staging from disk under a small host cache).
fn plume_out_of_core(base: u32, image: u32, cache_bytes: u64) -> Oocore {
    let volume = bench_volume(Dataset::Plume, base);
    let scene = standard_scene(&volume);
    let spec = ClusterSpec::accelerator_cluster(4);
    let cfg = RenderConfig {
        image: (image, image),
        residency: Residency::Disk,
        host_cache_bytes: cache_bytes,
        ..RenderConfig::default()
    };
    let t = Instant::now();
    let out = render(&spec, &volume, &scene, &cfg);
    let wall = t.elapsed().as_secs_f64();
    let pixels = image as f64 * image as f64;
    Oocore {
        wall_px_s: pixels / wall,
        wall_ms: wall * 1e3,
        evictions: out.report.store.evictions,
        materialized_mb: out.report.store.bytes_materialized as f64 / (1 << 20) as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The head-to-head always runs at 256³ — the scale the ≥1.5× batched
    // speedup is asserted and trended at. Smoke trims repetitions and the
    // plume, not the workload shape.
    let (reps, plume_base, plume_image) = if smoke { (3, 64, 128) } else { (5, 512, 512) };
    let image = 512u32;

    println!("ray-march throughput — 256^3 resident brick, {image}^2 image, best of {reps}");
    let hh = head_to_head(256, image, reps);
    let speedup = hh.batched_px_s / hh.scalar_px_s;
    println!("  scalar : {:>8.3} Mpx/s", hh.scalar_px_s / 1e6);
    println!(
        "  batched: {:>8.3} Mpx/s  ({speedup:.2}x)  {:>8.1} Msamples/s  p50 {:.1} ms",
        hh.batched_px_s / 1e6,
        hh.samples_per_sec / 1e6,
        hh.p50_kernel_ms
    );
    println!("  bit-identity: OK ({} samples)", hh.total_samples);

    let plume_dims = Dataset::Plume.dims(plume_base);
    println!(
        "\nout-of-core plume — {}x{}x{} from disk, {plume_image}^2 image, 4 GPUs",
        plume_dims[0], plume_dims[1], plume_dims[2]
    );
    let oo = plume_out_of_core(plume_base, plume_image, 128 << 20);
    println!(
        "  {:>8.3} Mpx/s wall ({:.0} ms), {} evictions, {:.1} MB materialized",
        oo.wall_px_s / 1e6,
        oo.wall_ms,
        oo.evictions,
        oo.materialized_mb
    );

    if smoke {
        JsonObject::new()
            .str("bench", "render_throughput")
            .int("image", image as u64)
            .int("volume", 256)
            // The gated metric: batched kernel frames over the full image.
            .num("frames_per_sec", hh.batched_px_s / hh.pixels)
            .num("pixels_per_sec", hh.batched_px_s)
            .num("pixels_per_sec_scalar", hh.scalar_px_s)
            .num("speedup_vs_scalar", speedup)
            .num("samples_per_sec", hh.samples_per_sec)
            .int("total_samples", hh.total_samples)
            .num("p50_kernel_ms", hh.p50_kernel_ms)
            .num("oocore_pixels_per_sec", oo.wall_px_s)
            .num("oocore_total_ms", oo.wall_ms)
            .int("oocore_evictions", oo.evictions)
            .write("BENCH_volren.json")
            .expect("write BENCH_volren.json");
    }
}
