//! §6.3 speed-of-light analysis: hardware lower bounds vs achieved runtime.
//!
//! `cargo run --release -p mgpu-bench --bin speed_of_light`

use mgpu_bench::BenchScale;

fn main() {
    mgpu_bench::figures::speed_of_light_report(&BenchScale::from_env());
}
