//! Figure 4 reproduction: FPS and VPS vs GPU count for the four volumes.
//!
//! `cargo run --release -p mgpu-bench --bin fig4`

use mgpu_bench::figures::{fig4_report, run_sweep};
use mgpu_bench::BenchScale;

fn main() {
    let scale = BenchScale::from_env();
    println!("Figure 4 — FPS and VPS (scale {:.2})", scale.factor);
    let rows = run_sweep(&scale);
    fig4_report(&rows, &scale);
}
