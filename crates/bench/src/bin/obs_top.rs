//! `obs_top` — a live dashboard over the observability pipeline: starts a
//! local [`RenderServer`], drives a pipelined render workload against it,
//! and redraws per-stage latency quantiles, cache hit rates, wire traffic
//! and the most recent request traces from the server's **STATS v2**
//! snapshot and **TRACES** ring each tick — the same data any remote
//! `obs_top` would see, fetched through the same wire requests.
//!
//!     cargo run --release -p mgpu-bench --bin obs_top [-- --smoke] [--json] [--ticks N]
//!
//! `--smoke` (or `--json`) also dumps `BENCH_obs.json` with per-stage
//! p50/p99 for queue wait, brick staging, kernel and composite — the
//! bench-trend artifact CI tracks.

use std::sync::Arc;
use std::time::Duration;

use mgpu_bench::JsonObject;
use mgpu_cluster::ClusterSpec;
use mgpu_net::{
    rebalance_once, NetSceneRequest, NodePool, NodePoolConfig, RebalanceConfig, RenderClient,
    RenderServer, ServerConfig,
};
use mgpu_obs::names;
use mgpu_obs::{CompletedTrace, Snapshot};
use mgpu_serve::{Priority, RenderBackend, SceneRequest, ServiceConfig};
use mgpu_volren::camera::Scene;
use mgpu_volren::{RenderConfig, TransferFunction};

/// The stage histograms the dashboard (and the JSON artifact) report,
/// as `(label, snapshot key)` in pipeline order.
const STAGES: [(&str, &str); 6] = [
    ("queue wait", names::SERVE_QUEUE_WAIT_NS),
    ("plan prepare", names::VOLREN_PLAN_PREPARE_NS),
    ("brick staging", names::VOLREN_STAGING_NS),
    ("kernel", names::VOLREN_KERNEL_NS),
    ("composite", names::VOLREN_COMPOSITE_NS),
    ("render total", names::SERVE_RENDER_NS),
];

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn draw(label: &str, snap: &Snapshot, traces: &[CompletedTrace]) {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    println!("\n━━ obs_top — {label} ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    println!(
        "frames: {} submitted, {} rendered, {} completed, {} failed   queue depth {}",
        c(names::SERVE_FRAMES_SUBMITTED),
        c(names::SERVE_FRAMES_RENDERED),
        c(names::SERVE_FRAMES_COMPLETED),
        c(names::SERVE_FRAMES_FAILED),
        snap.gauge(names::SERVE_QUEUE_DEPTH).unwrap_or(0),
    );
    println!(
        "caches: frame {:.1}% hit, plan {:.1}% hit   batches {} ({} frames)   stagings {} / reuses {}",
        rate(c(names::SERVE_FRAME_CACHE_HITS), c(names::SERVE_FRAME_CACHE_MISSES)) * 100.0,
        rate(c(names::SERVE_PLAN_CACHE_HITS), c(names::SERVE_PLAN_CACHE_MISSES)) * 100.0,
        c(names::SERVE_BATCHES),
        c(names::SERVE_BATCHED_FRAMES),
        c(names::SERVE_BRICK_STAGINGS),
        c(names::SERVE_BRICK_REUSES),
    );
    println!(
        "net:    {} frames in / {} out, {} B read / {} B written   {} conns, {} wakeups, {} throttled",
        c(names::NET_FRAMES_IN),
        c(names::NET_FRAMES_OUT),
        c(names::NET_BYTES_READ),
        c(names::NET_BYTES_WRITTEN),
        snap.gauge(names::NET_CONNECTIONS).unwrap_or(0),
        c(names::NET_LOOP_WAKEUPS),
        c(names::NET_THROTTLED),
    );
    println!(
        "\n{:>14} {:>8} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 ms", "p90 ms", "p99 ms"
    );
    for (label, key) in STAGES {
        let count = snap
            .histogram(key)
            .map(|b| b.iter().sum::<u64>())
            .unwrap_or(0);
        let q = |q: f64| snap.hist_quantile(key, q).map(ms).unwrap_or(0.0);
        println!(
            "{label:>14} {count:>8} {:>10.3} {:>10.3} {:>10.3}",
            q(0.5),
            q(0.9),
            q(0.99)
        );
    }
    println!("\nrecent traces (newest first):");
    for trace in traces.iter().take(4) {
        let mut spans = trace.spans.clone();
        spans.sort_by_key(|s| s.start_ns);
        let line: Vec<String> = spans
            .iter()
            .map(|s| format!("{} {:.2}ms", s.name, s.nanos() as f64 / 1e6))
            .collect();
        println!("  #{:<6} {}", trace.id, line.join(" → "));
    }
    if traces.is_empty() {
        println!("  (none completed yet)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = smoke || args.iter().any(|a| a == "--json");
    let ticks = args
        .iter()
        .position(|a| a == "--ticks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if smoke { 3 } else { 8 });
    let (volume_size, image, clients, frames_each, tick_wait) = if smoke {
        (16u32, 64u32, 2usize, 8usize, Duration::from_millis(150))
    } else {
        (32, 128, 4, 24, Duration::from_millis(400))
    };

    let server = RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind obs_top server");
    let addr = server.addr();
    println!(
        "obs_top — {clients} pipelined clients × {frames_each} frames \
         ({volume_size}³ volumes, {image}² frames) against {addr}"
    );

    // The workload: each client pipelines its frames on one connection.
    // Every 4th view repeats so the frame cache sees hits.
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let client = Arc::new(RenderClient::connect(addr).expect("connect workload"));
                let volume = mgpu_voldata::Dataset::Skull.volume(volume_size);
                let pending: Vec<_> = (0..frames_each)
                    .map(|f| {
                        let view = if f % 4 == 3 { 0 } else { f };
                        let request = SceneRequest {
                            spec: ClusterSpec::accelerator_cluster(1 + (c % 2) as u32),
                            scene: Scene::orbit(
                                &volume,
                                view as f32 * 13.0,
                                20.0,
                                TransferFunction::bone(),
                            ),
                            volume: volume.clone(),
                            config: RenderConfig::test_size(image),
                            priority: Priority::Normal,
                        };
                        let net = NetSceneRequest::from_request(&request).expect("portable");
                        client.begin_render(&net).expect("begin render")
                    })
                    .collect();
                for p in pending {
                    client.finish_render(p).expect("finish render");
                }
            })
        })
        .collect();

    // The dashboard: a separate observer connection polling STATS v2 and
    // TRACES — exactly what a remote operator console would do.
    let observer = RenderClient::connect(addr).expect("connect observer");
    for tick in 1..=ticks {
        std::thread::sleep(tick_wait);
        let stats = observer.stats().expect("stats");
        let traces = observer.traces(8).expect("traces");
        draw(&format!("tick {tick}/{ticks}"), &stats.obs, &traces);
    }
    for w in workers {
        w.join().expect("workload thread");
    }

    // Final snapshot after the workload fully drains.
    let stats = observer.stats().expect("final stats");
    let traces = observer.traces(16).expect("final traces");
    draw("final (workload drained)", &stats.obs, &traces);
    let snap = &stats.obs;
    let completed = snap.counter(names::SERVE_FRAMES_COMPLETED).unwrap_or(0);
    assert_eq!(
        completed,
        (clients * frames_each) as u64,
        "every workload frame must complete"
    );
    assert!(
        traces.iter().any(|t| t.span("kernel").is_some()),
        "traces must carry renderer stage spans"
    );

    // Cluster-ops episode: a two-node pool in-process — skewed traffic,
    // one rebalance pass, a graceful drain/resume, and a crash hand-off —
    // so the `pool.rebalance.*` / `pool.drain.*` control-plane counters
    // and the `rebalance` trace span show up on this dashboard next to
    // the data plane they steer.
    let mut nodes: Vec<Option<RenderServer>> = (0..2)
        .map(|_| {
            Some(
                RenderServer::start(ServerConfig {
                    shards: 2,
                    service: ServiceConfig {
                        workers: 2,
                        ..ServiceConfig::default()
                    },
                    ..ServerConfig::default()
                })
                .expect("bind pool node"),
            )
        })
        .collect();
    let pool = NodePool::try_new(
        nodes.iter().map(|n| n.as_ref().unwrap().addr()).collect(),
        NodePoolConfig::default(),
    )
    .expect("validated pool");
    let volume = mgpu_voldata::Dataset::Plume.volume(volume_size);
    let pool_request = |az: f32| SceneRequest {
        spec: ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&volume, az, 10.0, TransferFunction::smoke()),
        volume: volume.clone(),
        config: RenderConfig::test_size(image),
        priority: Priority::Normal,
    };
    // All traffic on one key: its owner runs hot, the other node idles.
    for f in 0..6 {
        pool.render(pool_request(f as f32 * 19.0))
            .expect("pool render");
    }
    let owner_before = pool.node_for(&pool_request(0.0));
    let outcome = rebalance_once(
        &pool,
        &RebalanceConfig {
            band: 1.2,
            min_frames: 4,
            ..RebalanceConfig::default()
        },
    );
    let dest = pool.node_for(&pool_request(0.0));
    // Graceful drain + resume of the now-cold node.
    pool.drain_node(owner_before).expect("drain");
    while !pool.node_drained(owner_before) {
        std::thread::sleep(Duration::from_millis(5));
    }
    pool.resume_node(owner_before).expect("resume");
    // Crash hand-off: park a ticket on the new owner, kill it, redeem —
    // the frame re-renders on the survivor instead of being lost.
    let parked = pool.submit(pool_request(777.0)).expect("park ticket");
    nodes[dest].take().unwrap().shutdown();
    pool.redeem(parked).expect("zero-loss hand-off redemption");

    let ops = mgpu_obs::global().snapshot();
    let oc = |name: &str| ops.counter(name).unwrap_or(0);
    println!(
        "\ncluster ops: rebalance {} tick(s), {} migration(s) (imbalance {:.2}, \
         node {} → {}), {} prewarm(s); drains {} initiated / {} resumed, \
         {} hand-off(s); epoch {}",
        oc(names::POOL_REBALANCE_TICKS),
        oc(names::POOL_REBALANCE_MIGRATIONS),
        outcome.imbalance,
        owner_before,
        dest,
        oc(names::POOL_REBALANCE_PREWARMS),
        oc(names::POOL_DRAIN_INITIATED),
        oc(names::POOL_DRAIN_RESUMED),
        oc(names::POOL_DRAIN_HANDOFFS),
        pool.epoch(),
    );
    assert!(
        oc(names::POOL_REBALANCE_MIGRATIONS) >= 1 && oc(names::POOL_DRAIN_HANDOFFS) >= 1,
        "the cluster-ops episode must migrate and hand off"
    );
    let local_traces = mgpu_obs::ring().recent(32);
    let rebalance_trace = local_traces
        .iter()
        .find(|t| t.span("rebalance").is_some())
        .expect("the rebalance pass must leave a trace span");
    let mut spans = rebalance_trace.spans.clone();
    spans.sort_by_key(|sp| sp.start_ns);
    let line: Vec<String> = spans
        .iter()
        .map(|sp| format!("{} {:.2}ms", sp.name, sp.nanos() as f64 / 1e6))
        .collect();
    println!(
        "rebalance trace #{}: {}",
        rebalance_trace.id,
        line.join(" → ")
    );
    let pool_migrations = oc(names::POOL_REBALANCE_MIGRATIONS);
    let pool_handoffs = oc(names::POOL_DRAIN_HANDOFFS);
    drop(pool);
    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }

    // In-process bonus: the trace ring's exact drop accounting.
    let ring = mgpu_obs::ring();
    println!(
        "\ntrace ring: {} pushed, {} held, {} dropped (exact: pushed == held + dropped)",
        ring.pushed(),
        ring.held(),
        ring.dropped()
    );

    if json {
        let mut out = JsonObject::new();
        out = out
            .str("bench", "obs_top")
            .int("frames", completed)
            .num(
                "frame_cache_hit_rate",
                rate(
                    snap.counter(names::SERVE_FRAME_CACHE_HITS).unwrap_or(0),
                    snap.counter(names::SERVE_FRAME_CACHE_MISSES).unwrap_or(0),
                ),
            )
            .int(
                "loop_wakeups",
                snap.counter(names::NET_LOOP_WAKEUPS).unwrap_or(0),
            )
            .int("traces_pushed", ring.pushed())
            .int("traces_dropped", ring.dropped())
            .int("pool_migrations", pool_migrations)
            .int("pool_drain_handoffs", pool_handoffs);
        for (key, name) in [
            (names::SERVE_QUEUE_WAIT_NS, "queue_wait"),
            (names::VOLREN_STAGING_NS, "staging"),
            (names::VOLREN_KERNEL_NS, "kernel"),
            (names::VOLREN_COMPOSITE_NS, "composite"),
        ] {
            let q = |q: f64| {
                snap.hist_quantile(key, q)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
            };
            out = out
                .int(&format!("{name}_p50_ns"), q(0.5))
                .int(&format!("{name}_p99_ns"), q(0.99));
        }
        out.write("BENCH_obs.json").expect("write BENCH_obs.json");
    }
    server.shutdown();
}
