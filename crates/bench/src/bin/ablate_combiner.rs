//! §3.1 ablation: "we specifically omitted partial reduce/combine because it
//! didn't increase performance for our volume renderer."
//!
//! The combiner merges only provably depth-adjacent fragments, so it is
//! correct — it just rarely finds anything to merge under round-robin brick
//! assignment, and the runtime barely moves.

use mgpu_bench::{figure_config, print_table, run_point, BenchScale, Table};
use mgpu_voldata::Dataset;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(256);
    let gpus = 8;
    println!("combiner ablation at {size}^3, {gpus} GPUs");

    let mut t = Table::new(&["combiner", "fragments reduced", "wire MB", "total ms"]);
    let mut base_ms = 0.0;
    for on in [false, true] {
        let mut cfg = figure_config(&scale);
        cfg.combiner = on;
        let row = run_point(Dataset::Skull, size, gpus, &cfg);
        if !on {
            base_ms = row.total_ms;
        }
        t.row(&[
            if on { "on" } else { "off" }.to_string(),
            row.fragments.to_string(),
            format!("{:.2}", row.wire_mb),
            format!("{:.1}", row.total_ms),
        ]);
        if on {
            let delta = (row.total_ms - base_ms) / base_ms * 100.0;
            println!("runtime delta with combiner: {delta:+.2}% (paper: no benefit)");
        }
    }
    print_table("combine stage on/off", &t);
}
