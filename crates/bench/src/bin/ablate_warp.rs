//! GPU-model ablation: flat-throughput vs warp-divergence-accurate kernel
//! timing. Ray casting diverges at silhouettes (lockstep lanes wait for the
//! longest ray in the warp), so the warp-accurate model charges more — this
//! quantifies how much the paper-era SIMT machines lost to divergence.

use mgpu_bench::{bench_volume, figure_config, print_table, standard_scene, BenchScale, Table};
use mgpu_cluster::ClusterSpec;
use mgpu_gpu::KernelTimingMode;
use mgpu_voldata::Dataset;
use mgpu_volren::renderer::render;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(256);
    let volume = bench_volume(Dataset::Skull, size);
    let scene = standard_scene(&volume);
    let cfg = figure_config(&scale);
    println!("kernel-timing ablation at {size}^3");

    let mut t = Table::new(&["gpus", "flat ms", "warp-accurate ms", "divergence tax"]);
    for gpus in [4u32, 8, 16] {
        let mut spec = ClusterSpec::accelerator_cluster(gpus);
        spec.device.kernel.mode = KernelTimingMode::FlatThroughput;
        let flat = render(&spec, &volume, &scene, &cfg);
        spec.device.kernel.mode = KernelTimingMode::WarpAccurate;
        let warp = render(&spec, &volume, &scene, &cfg);
        assert_eq!(flat.image, warp.image, "timing mode must not change pixels");
        let f = flat.report.runtime().as_millis_f64();
        let w = warp.report.runtime().as_millis_f64();
        t.row(&[
            gpus.to_string(),
            format!("{f:.1}"),
            format!("{w:.1}"),
            format!("{:+.1}%", (w - f) / f * 100.0),
        ]);
    }
    print_table("flat vs warp-accurate kernel model", &t);
}
