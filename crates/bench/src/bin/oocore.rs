//! §6 out-of-core operation: stream bricks from disk under a small host
//! cache vs fully resident data. "We can run the renderer in either an
//! in-core or out-of-core manner and reduce bottlenecks as much as possible
//! in both cases."

use mgpu_bench::{bench_volume, figure_config, print_table, standard_scene, BenchScale, Table};
use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Dataset;
use mgpu_volren::renderer::render;
use mgpu_volren::Residency;

fn main() {
    let scale = BenchScale::from_env();
    let size = scale.size(512);
    let gpus = 8;
    let volume = bench_volume(Dataset::Skull, size);
    let scene = standard_scene(&volume);
    let spec = ClusterSpec::accelerator_cluster(gpus);
    println!("out-of-core ablation at {size}^3, {gpus} GPUs");

    let mut t = Table::new(&[
        "mode",
        "total ms",
        "part+io ms",
        "cache evictions",
        "bytes materialized MB",
    ]);
    let mut images = Vec::new();
    for (label, residency, cache) in [
        ("in-core (resident)", Residency::HostResident, u64::MAX),
        ("out-of-core (disk)", Residency::Disk, 256 << 20),
    ] {
        let mut cfg = figure_config(&scale);
        cfg.residency = residency;
        cfg.host_cache_bytes = cache;
        let out = render(&spec, &volume, &scene, &cfg);
        t.row(&[
            label.to_string(),
            format!("{:.1}", out.report.runtime().as_millis_f64()),
            format!("{:.1}", out.report.breakdown().partition_io.as_millis_f64()),
            out.report.store.evictions.to_string(),
            format!(
                "{:.1}",
                out.report.store.bytes_materialized as f64 / (1 << 20) as f64
            ),
        ]);
        images.push(out.image);
    }
    print_table("in-core vs out-of-core", &t);
    let diff = images[0].max_abs_diff(&images[1]);
    println!("pixel difference between modes: {diff} (must be 0 — same data, same math)");
    assert_eq!(diff, 0.0);
}
