//! # mgpu-bench — the experiment harness
//!
//! Regenerates every figure and inline result of the paper's evaluation:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig3` / bench `fig3_breakdown` | Figure 3: phase breakdown over volumes × GPUs |
//! | `fig4` / bench `fig4_throughput` | Figure 4: FPS and VPS curves |
//! | `micro` / bench `micro_transfers` | §3 disk / H2D / D2H anchors |
//! | `bottlenecks` / bench `bottleneck_analysis` | §6.3 comm-vs-compute split |
//! | `compare_paraview` | footnote 1 (ParaView 346 M VPS) |
//! | `ablate_*`, `oocore` | §3.1/§6 design-decision ablations |
//!
//! Scale: set `MGPU_BENCH_SCALE` (default `1.0` = paper scale: volumes up to
//! 1024³, 512² images). `0.25` gives a laptop-quick pass with the same
//! shapes. Large volumes are baked to raw files under `MGPU_BENCH_CACHE`
//! (default: target/mgpu-bench-cache) once, so repeated sweep points pay
//! file reads instead of procedural synthesis.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use mgpu_cluster::ClusterSpec;
use mgpu_sim::Fig3Bucket;
use mgpu_voldata::{io as volio, Dataset, Volume, VolumeSource};
use mgpu_volren::camera::Scene;
use mgpu_volren::renderer::{render, RenderOutcome};
use mgpu_volren::{RenderConfig, TransferFunction};

pub mod figures;
pub mod report;

pub use report::{ascii_bar, print_table, write_csv, JsonObject, Table};

/// Global bench scale, read from `MGPU_BENCH_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    pub factor: f64,
}

impl BenchScale {
    pub fn from_env() -> BenchScale {
        let factor = std::env::var("MGPU_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
            .clamp(0.05, 1.0);
        BenchScale { factor }
    }

    /// Scale a volume edge length, snapping to multiples of 16 (≥ 32).
    pub fn size(&self, base: u32) -> u32 {
        let s = (base as f64 * self.factor).round() as u32;
        (s / 16 * 16).max(32)
    }

    /// Scale the image edge (the paper uses 512²).
    pub fn image(&self) -> u32 {
        let s = (512.0 * self.factor).round() as u32;
        (s / 16 * 16).max(64)
    }
}

/// The paper's standard view for all figure runs.
pub fn standard_scene(volume: &Volume) -> Scene {
    let tf = TransferFunction::for_dataset(&volume.meta.name);
    Scene::orbit(volume, 30.0, 20.0, tf)
}

/// The paper's sweep: volume sizes × GPU counts (1024³ starts at 2 GPUs, as
/// in Figure 3).
pub fn fig3_sweep(scale: &BenchScale) -> Vec<(u32, Vec<u32>)> {
    let gpus_all = vec![1u32, 2, 4, 8, 16, 32];
    let gpus_big = vec![2u32, 4, 8, 16, 32];
    vec![
        (scale.size(128), gpus_all.clone()),
        (scale.size(256), gpus_all.clone()),
        (scale.size(512), gpus_all),
        (scale.size(1024), gpus_big),
    ]
}

/// One measured sweep point (one Figure-3 bar / one Figure-4 sample).
#[derive(Debug, Clone)]
pub struct FigRow {
    pub dataset: String,
    pub size: u32,
    pub gpus: u32,
    pub bricks: usize,
    pub map_ms: f64,
    pub partition_io_ms: f64,
    pub sort_ms: f64,
    pub reduce_ms: f64,
    pub total_ms: f64,
    pub fps: f64,
    pub vps_millions: f64,
    pub comm_demand_ms: f64,
    pub compute_demand_ms: f64,
    pub kernel_demand_ms: f64,
    pub fragments: u64,
    pub wire_mb: f64,
}

impl FigRow {
    pub fn from_outcome(dataset: &str, size: u32, out: &RenderOutcome) -> FigRow {
        let r = &out.report;
        let b = r.breakdown();
        FigRow {
            dataset: dataset.to_string(),
            size,
            gpus: r.gpus,
            bricks: r.bricks,
            map_ms: b.get(Fig3Bucket::Map).as_millis_f64(),
            partition_io_ms: b.get(Fig3Bucket::PartitionIo).as_millis_f64(),
            sort_ms: b.get(Fig3Bucket::Sort).as_millis_f64(),
            reduce_ms: b.get(Fig3Bucket::Reduce).as_millis_f64(),
            total_ms: r.runtime().as_millis_f64(),
            fps: r.fps(),
            vps_millions: r.vps() / 1e6,
            comm_demand_ms: r.accounting.communication_demand.as_millis_f64(),
            compute_demand_ms: r.accounting.computation_demand.as_millis_f64(),
            kernel_demand_ms: r.accounting.kernel_demand.as_millis_f64(),
            fragments: r.job.reduced_items,
            wire_mb: r.job.wire_bytes_sent as f64 / (1 << 20) as f64,
        }
    }
}

impl FigRow {
    pub const CSV_HEADERS: [&'static str; 16] = [
        "dataset",
        "size",
        "gpus",
        "bricks",
        "map_ms",
        "partition_io_ms",
        "sort_ms",
        "reduce_ms",
        "total_ms",
        "fps",
        "vps_millions",
        "comm_demand_ms",
        "compute_demand_ms",
        "kernel_demand_ms",
        "fragments",
        "wire_mb",
    ];

    pub fn csv_cells(&self) -> Vec<String> {
        vec![
            self.dataset.clone(),
            self.size.to_string(),
            self.gpus.to_string(),
            self.bricks.to_string(),
            format!("{:.3}", self.map_ms),
            format!("{:.3}", self.partition_io_ms),
            format!("{:.3}", self.sort_ms),
            format!("{:.3}", self.reduce_ms),
            format!("{:.3}", self.total_ms),
            format!("{:.4}", self.fps),
            format!("{:.2}", self.vps_millions),
            format!("{:.3}", self.comm_demand_ms),
            format!("{:.3}", self.compute_demand_ms),
            format!("{:.3}", self.kernel_demand_ms),
            self.fragments.to_string(),
            format!("{:.3}", self.wire_mb),
        ]
    }
}

static VOLUME_CACHE: Mutex<Option<HashMap<(&'static str, u32), Volume>>> = Mutex::new(None);

fn cache_dir() -> PathBuf {
    std::env::var("MGPU_BENCH_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_target().join("mgpu-bench-cache"))
}

/// Anchor artifact paths at the workspace target dir so `cargo bench`
/// (CWD = crates/bench) and `cargo run` (CWD = workspace root) share caches.
pub fn workspace_target() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("target"))
}

/// Where the figure CSVs land.
pub fn results_dir() -> PathBuf {
    workspace_target().join("results")
}

/// Get (and cache) a bench volume. Volumes with ≥ 256³ voxels are baked to a
/// raw file once so subsequent sweep points read instead of re-synthesizing.
pub fn bench_volume(dataset: Dataset, base: u32) -> Volume {
    let mut guard = VOLUME_CACHE.lock().unwrap();
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(v) = cache.get(&(dataset.name(), base)) {
        return v.clone();
    }
    let procedural = dataset.volume(base);
    let volume = if procedural.meta.voxel_count() >= 256 * 256 * 256 {
        bake_to_file(&procedural)
    } else {
        procedural
    };
    cache.insert((dataset.name(), base), volume.clone());
    volume
}

fn bake_to_file(volume: &Volume) -> Volume {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).expect("creating bench cache dir");
    let path = dir.join(format!("{}.vol", volume.meta.label()));
    let dims = volume.dims();
    if volio::read_header(&path)
        .map(|d| d == dims)
        .unwrap_or(false)
    {
        // Already baked by an earlier run.
    } else {
        eprintln!(
            "[bench] baking {} to {}",
            volume.meta.label(),
            path.display()
        );
        // Stream slabs to disk to bound memory.
        let tmp = path.with_extension("vol.partial");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp).unwrap());
            f.write_all(volio::MAGIC).unwrap();
            for d in dims {
                f.write_all(&d.to_le_bytes()).unwrap();
            }
            let slab_z = (((64 << 20) / (dims[0] as usize * dims[1] as usize * 4)) as u32).max(1);
            let mut z = 0u32;
            let mut slab = Vec::new();
            while z < dims[2] {
                let dz = slab_z.min(dims[2] - z) as usize;
                slab.resize(dims[0] as usize * dims[1] as usize * dz, 0f32);
                volume.read_region(
                    [0, 0, z],
                    [dims[0] as usize, dims[1] as usize, dz],
                    &mut slab,
                );
                let mut bytes = Vec::with_capacity(slab.len() * 4);
                for v in &slab {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                f.write_all(&bytes).unwrap();
                z += dz as u32;
            }
        }
        std::fs::rename(&tmp, &path).unwrap();
    }
    Volume {
        meta: volume.meta.clone(),
        source: VolumeSource::File(path),
    }
}

/// Run one sweep point with the standard scene.
pub fn run_point(dataset: Dataset, size: u32, gpus: u32, cfg: &RenderConfig) -> FigRow {
    let volume = bench_volume(dataset, size);
    let scene = standard_scene(&volume);
    let spec = ClusterSpec::accelerator_cluster(gpus);
    let out = render(&spec, &volume, &scene, cfg);
    FigRow::from_outcome(dataset.name(), size, &out)
}

/// Default render config for figure runs at the current scale.
pub fn figure_config(scale: &BenchScale) -> RenderConfig {
    let img = scale.image();
    RenderConfig {
        image: (img, img),
        ..RenderConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_snaps_sizes() {
        let s = BenchScale { factor: 0.25 };
        assert_eq!(s.size(128), 32);
        assert_eq!(s.size(1024), 256);
        assert_eq!(s.image(), 128);
        let full = BenchScale { factor: 1.0 };
        assert_eq!(full.size(1024), 1024);
        assert_eq!(full.image(), 512);
    }

    #[test]
    fn sweep_matches_paper_axes() {
        let sweep = fig3_sweep(&BenchScale { factor: 1.0 });
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].1, vec![1, 2, 4, 8, 16, 32]);
        // 1024³ starts at 2 GPUs, as in Figure 3.
        assert_eq!(sweep[3].1, vec![2, 4, 8, 16, 32]);
    }

    #[test]
    fn run_point_produces_consistent_row() {
        let cfg = RenderConfig::test_size(64);
        let row = run_point(Dataset::Skull, 32, 2, &cfg);
        assert_eq!(row.gpus, 2);
        let stacked = row.map_ms + row.partition_io_ms + row.sort_ms + row.reduce_ms;
        assert!((stacked - row.total_ms).abs() < 1e-6);
        assert!(row.fps > 0.0);
        assert!(row.fragments > 0);
    }

    #[test]
    fn bench_volume_caches() {
        let a = bench_volume(Dataset::Skull, 32);
        let b = bench_volume(Dataset::Skull, 32);
        assert_eq!(a.meta, b.meta);
    }
}
