//! Table, CSV and ASCII-chart output for the bench binaries.

use std::fmt::Display;
use std::io;
use std::path::Path;

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<H: Display>(headers: &[H]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<C: Display>(&mut self, cells: &[C]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Print a table with a title banner.
pub fn print_table(title: &str, table: &Table) {
    println!("\n== {title} ==\n{}", table.render());
}

/// A proportional ASCII bar: `####----` etc., `width` chars full-scale.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// A flat JSON object builder for the machine-readable bench summaries the
/// CI pipeline uploads as artifacts (`BENCH_*.json`). Hand-rolled — the
/// build has no serde_json — and deliberately flat: one object, scalar
/// fields, so trend tooling can diff runs with `jq` one-liners.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// A float field, serialized with enough precision for trend diffing.
    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            // JSON has no NaN/Infinity; null keeps the document valid.
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            out.push_str(&format!("  \"{key}\": {value}"));
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }

    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(&path, self.render() + "\n")?;
        println!("wrote {}", path.as_ref().display());
        Ok(())
    }
}

/// Write rows as CSV.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        assert_eq!(row.len(), headers.len(), "CSV row width mismatch");
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["long-name".to_string(), "123".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    fn json_object_renders_valid_flat_json() {
        let json = JsonObject::new()
            .str("bench", "net_throughput")
            .int("frames", 24)
            .num("frames_per_sec", 12.5)
            .num("nan_guard", f64::NAN)
            .str("note", "quote\" and \\ and\nnewline")
            .render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"frames\": 24"));
        assert!(json.contains("\"frames_per_sec\": 12.500000"));
        assert!(json.contains("\"nan_guard\": null"));
        assert!(json.contains("quote\\\" and \\\\ and\\nnewline"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(ascii_bar(5.0, 10.0, 10), "#####");
        assert_eq!(ascii_bar(0.0, 10.0, 10), "");
        assert_eq!(ascii_bar(20.0, 10.0, 10), "##########");
    }
}
