//! Table, CSV and ASCII-chart output for the bench binaries.

use std::fmt::Display;
use std::io;
use std::path::Path;

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<H: Display>(headers: &[H]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<C: Display>(&mut self, cells: &[C]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Print a table with a title banner.
pub fn print_table(title: &str, table: &Table) {
    println!("\n== {title} ==\n{}", table.render());
}

/// A proportional ASCII bar: `####----` etc., `width` chars full-scale.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Write rows as CSV.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        assert_eq!(row.len(), headers.len(), "CSV row width mismatch");
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["long-name".to_string(), "123".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(ascii_bar(5.0, 10.0, 10), "#####");
        assert_eq!(ascii_bar(0.0, 10.0, 10), "");
        assert_eq!(ascii_bar(20.0, 10.0, 10), "##########");
    }
}
