//! Entry points shared by the `cargo bench` targets and the standalone
//! binaries: each regenerates one of the paper's figures / analyses.

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Dataset;
use mgpu_volren::baseline::ParaViewClassBaseline;

use crate::{
    fig3_sweep, figure_config, print_table, run_point, write_csv, BenchScale, FigRow, Table,
};

/// Run the full Figure-3/4 sweep, returning one row per (size, gpus) point.
pub fn run_sweep(scale: &BenchScale) -> Vec<FigRow> {
    let cfg = figure_config(scale);
    let mut rows = Vec::new();
    for (size, gpu_counts) in fig3_sweep(scale) {
        for gpus in gpu_counts {
            let row = run_point(Dataset::Skull, size, gpus, &cfg);
            eprintln!(
                "[sweep] {:>4}^3 x {:>2} GPUs -> {:>8.1} ms",
                size, gpus, row.total_ms
            );
            rows.push(row);
        }
    }
    rows
}

/// Figure 3: the stacked phase-breakdown table + ASCII bars.
pub fn fig3_report(rows: &[FigRow]) {
    let mut t = Table::new(&[
        "volume",
        "gpus",
        "bricks",
        "map ms",
        "part+io ms",
        "sort ms",
        "reduce ms",
        "total ms",
    ]);
    for r in rows {
        t.row(&[
            format!("{}^3", r.size),
            r.gpus.to_string(),
            r.bricks.to_string(),
            format!("{:.1}", r.map_ms),
            format!("{:.1}", r.partition_io_ms),
            format!("{:.1}", r.sort_ms),
            format!("{:.1}", r.reduce_ms),
            format!("{:.1}", r.total_ms),
        ]);
    }
    print_table("Figure 3: phase breakdown (skull dataset)", &t);

    let max_total = rows.iter().map(|r| r.total_ms).fold(0.0, f64::max);
    let mut size_seen = Vec::new();
    for r in rows {
        if !size_seen.contains(&r.size) {
            size_seen.push(r.size);
            println!(
                "\n{}^3 volume ('M' map, 'P' partition+io, 'S' sort, 'R' reduce):",
                r.size
            );
        }
        let w = 64.0 / max_total;
        let seg = |v: f64, c: char| c.to_string().repeat((v * w).round() as usize);
        println!(
            "  {:>2} GPUs |{}{}{}{}| {:.0} ms",
            r.gpus,
            seg(r.map_ms, 'M'),
            seg(r.partition_io_ms, 'P'),
            seg(r.sort_ms, 'S'),
            seg(r.reduce_ms, 'R'),
            r.total_ms
        );
    }

    let dir = crate::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("fig3.csv");
    write_csv(
        &path,
        &FigRow::CSV_HEADERS,
        rows.iter().map(|r| r.csv_cells()),
    )
    .expect("writing fig3.csv");
    println!("\nwrote {}", path.display());
}

/// Figure 4: FPS and VPS tables + the abstract's headline check.
pub fn fig4_report(rows: &[FigRow], scale: &BenchScale) {
    let mut fps = Table::new(&["volume", "gpus", "FPS", "runtime ms"]);
    let mut vps = Table::new(&["volume", "gpus", "VPS (millions)"]);
    for r in rows {
        fps.row(&[
            format!("{}^3", r.size),
            r.gpus.to_string(),
            format!("{:.3}", r.fps),
            format!("{:.1}", r.total_ms),
        ]);
        vps.row(&[
            format!("{}^3", r.size),
            r.gpus.to_string(),
            format!("{:.0}", r.vps_millions),
        ]);
    }
    print_table("Figure 4 (left): frames per second", &fps);
    print_table("Figure 4 (right): voxels per second", &vps);

    if let Some(h) = rows
        .iter()
        .find(|r| r.size == scale.size(1024) && r.gpus == 8)
    {
        println!(
            "\nheadline: {}^3 on 8 GPUs renders in {:.0} ms ({})",
            h.size,
            h.total_ms,
            if scale.factor >= 1.0 {
                if h.total_ms < 1000.0 {
                    "PASS — paper: < 1 s at 1024^3 on 8 GPUs"
                } else {
                    "MISS vs the paper's < 1 s claim"
                }
            } else {
                "scaled run; see EXPERIMENTS.md for paper scale"
            }
        );
    }

    let dir = crate::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("fig4.csv");
    write_csv(
        &path,
        &FigRow::CSV_HEADERS,
        rows.iter().map(|r| r.csv_cells()),
    )
    .expect("writing fig4.csv");
    println!("wrote {}", path.display());
}

/// §6.3: the communication-vs-computation table for the largest volume.
pub fn bottleneck_report(scale: &BenchScale) {
    let cfg = figure_config(scale);
    let size = scale.size(1024);
    let mut t = Table::new(&[
        "gpus",
        "comm/GPU ms",
        "compute/GPU ms",
        "kernel/GPU ms",
        "comm/compute",
        "total ms",
    ]);
    let mut measured = Vec::new();
    for gpus in [8u32, 16, 32] {
        let r = run_point(Dataset::Skull, size, gpus, &cfg);
        let g = gpus as f64;
        measured.push((r.comm_demand_ms / g, r.compute_demand_ms / g));
        t.row(&[
            gpus.to_string(),
            format!("{:.0}", r.comm_demand_ms / g),
            format!("{:.0}", r.compute_demand_ms / g),
            format!("{:.0}", r.kernel_demand_ms / g),
            format!("{:.2}", r.comm_demand_ms / r.compute_demand_ms.max(1e-9)),
            format!("{:.0}", r.total_ms),
        ]);
    }
    print_table(
        &format!("§6.3 bottleneck analysis at {size}^3 (per-GPU service demand)"),
        &t,
    );
    println!(
        "paper: 8 GPUs ≈ 515 ms comm vs 503 ms compute per GPU; at 16 GPUs comm grows\n\
         while compute halves — computation stops being the bottleneck."
    );
    // Aggregate communication grows with the GPU count while each GPU's
    // compute share halves — the §6.3 direction.
    let agg_comm_growth = (measured[1].0 * 16.0) / (measured[0].0 * 8.0).max(1e-9);
    let compute_shrink = measured[0].1 / measured[1].1.max(1e-9);
    println!(
        "measured: aggregate comm x{agg_comm_growth:.2}, per-GPU compute /{compute_shrink:.2} going 8 -> 16 GPUs"
    );
}

/// §3 micro anchors table (disk / H2D / D2H).
pub fn micro_report() {
    let spec = ClusterSpec::accelerator_cluster(1);
    let brick = 64u64 * 64 * 64 * 4;
    let frag_buffer = 512 * 512 * 28;
    let disk = spec.disk.time(brick);
    let h2d = spec.device.h2d_time(brick);
    let d2h = spec.device.d2h_time(frag_buffer);

    let mut t = Table::new(&["transfer", "bytes", "modeled", "paper anchor", "ok"]);
    t.row(&[
        "disk -> host (64^3 brick)".to_string(),
        brick.to_string(),
        format!("{disk}"),
        "~20 ms".to_string(),
        ((disk.as_millis_f64() - 20.0).abs() < 2.0).to_string(),
    ]);
    t.row(&[
        "host -> GPU (64^3 brick)".to_string(),
        brick.to_string(),
        format!("{h2d}"),
        "< 0.2 ms".to_string(),
        (h2d.as_millis_f64() < 0.2).to_string(),
    ]);
    t.row(&[
        "GPU -> host (512^2 fragments)".to_string(),
        frag_buffer.to_string(),
        format!("{d2h}"),
        "< 2 ms".to_string(),
        (d2h.as_millis_f64() < 2.0).to_string(),
    ]);
    print_table("§3 transfer anchors", &t);
    println!(
        "H2D is {:.2}% of the disk load (paper: '< 1% overhead'); network send of the\n\
         same fragments: {} — the paper's 'orders of magnitude' gap vs PCIe.",
        h2d.as_secs_f64() / disk.as_secs_f64() * 100.0,
        spec.network.send_time(frag_buffer)
    );
}

/// Footnote 1: the ParaView comparison at 16 GPUs.
pub fn paraview_report(scale: &BenchScale) {
    let cfg = figure_config(scale);
    let size = scale.size(1024);
    let row = run_point(Dataset::Skull, size, 16, &cfg);
    let pv = ParaViewClassBaseline::moreland_cray_xt3();
    let mut t = Table::new(&["system", "resources", "VPS (millions)"]);
    t.row(&[
        "ParaView (Moreland et al.)".to_string(),
        "512 procs / 256 nodes".to_string(),
        format!("{:.0}", pv.total_vps / 1e6),
    ]);
    t.row(&[
        "this system".to_string(),
        "16 GPUs / 4 nodes".to_string(),
        format!("{:.0}", row.vps_millions),
    ]);
    print_table("footnote 1: VPS comparison", &t);
    let ratio = row.vps_millions / (pv.total_vps / 1e6);
    println!("ratio: {ratio:.2}x (paper: 'more than double')");
}

/// §6.3 "speed of light": hardware lower bounds vs the achieved makespan.
///
/// The paper argues its runtime sits close to the realistic peak of the
/// hardware once computation stops dominating. The bound here is the busiest
/// single resource class: kernels spread over G GPUs, PCIe traffic over G
/// links, network traffic over the node NICs, CPU stages over G cores.
pub fn speed_of_light_report(scale: &BenchScale) {
    use mgpu_sim::Activity;
    let cfg = figure_config(scale);
    let size = scale.size(1024);
    let volume = crate::bench_volume(Dataset::Skull, size);
    let scene = crate::standard_scene(&volume);

    let mut t = Table::new(&[
        "gpus",
        "compute LB ms",
        "pcie LB ms",
        "network LB ms",
        "bound ms",
        "achieved ms",
        "efficiency",
    ]);
    for gpus in [8u32, 16, 32] {
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let out = mgpu_volren::renderer::render(&spec, &volume, &scene, &cfg);
        let acc = &out.report.accounting;
        let g = gpus as f64;
        let nodes = spec.nodes() as f64;
        let busy = |a: Activity| acc.totals(a).busy.as_secs_f64();
        let compute_lb = busy(Activity::Kernel) / g;
        let pcie_lb = (busy(Activity::HostToDevice) + busy(Activity::DeviceToHost)) / g;
        let net_lb = busy(Activity::NetSend) / nodes;
        let cpu_lb =
            (busy(Activity::PartitionCpu) + busy(Activity::SortCpu) + busy(Activity::ReduceCpu))
                / g;
        let bound = compute_lb.max(pcie_lb).max(net_lb).max(cpu_lb);
        let achieved = acc.makespan.as_secs_f64();
        t.row(&[
            gpus.to_string(),
            format!("{:.0}", compute_lb * 1e3),
            format!("{:.0}", pcie_lb * 1e3),
            format!("{:.0}", net_lb * 1e3),
            format!("{:.0}", bound * 1e3),
            format!("{:.0}", achieved * 1e3),
            format!("{:.0}%", bound / achieved * 100.0),
        ]);
    }
    print_table(&format!("§6.3 speed-of-light analysis at {size}^3"), &t);
    println!("paper: 'the combination of our library and renderer are as efficient as\n       possible' — achieved times should sit near the busiest-resource bound.");
}
