//! Wire v3 multiplexing: one connection, many in-flight renders, replies
//! redeemed out of order — plus the protocol-level guard rails that make
//! that safe (duplicate request-id rejection, id echo on every reply).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use mgpu_net::wire::{self, opcode, read_frame, write_frame};
use mgpu_net::{NetSceneRequest, RenderClient, RenderServer, ServerConfig};
use mgpu_serve::ServiceConfig;
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

fn server(shards: usize, workers: usize) -> RenderServer {
    RenderServer::start(ServerConfig {
        shards,
        service: ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn sized_request(azimuth: f32, size: u32) -> NetSceneRequest {
    NetSceneRequest::orbit_dataset(
        Dataset::Skull,
        8,
        1,
        azimuth,
        0.0,
        &TransferFunction::bone(),
    )
    .with_config(RenderConfig::test_size(size))
}

/// The headline v3 property: a single connection carries 10 concurrent
/// in-flight renders, and collecting them in *reverse* issue order works —
/// each reply is matched to its request by id, not by arrival position.
/// Distinct image sizes per request make any misrouting visible.
#[test]
fn one_connection_carries_ten_inflight_renders_redeemed_in_reverse() {
    let server = server(2, 2);
    let client = RenderClient::connect(server.addr()).expect("connect");

    let pending: Vec<_> = (0..10u32)
        .map(|i| {
            let size = 4 + i;
            let handle = client
                .begin_render(&sized_request(i as f32 * 13.0, size))
                .expect("issue render");
            (size, handle)
        })
        .collect();

    // All ten were issued without waiting for a single reply.
    for (i, (_, handle)) in pending.iter().enumerate() {
        assert_ne!(handle.id(), 0, "request ids are never 0");
        for (_, other) in pending.iter().skip(i + 1) {
            assert_ne!(handle.id(), other.id(), "ids are unique per connection");
        }
    }

    for (size, handle) in pending.into_iter().rev() {
        let frame = client.finish_render(handle).expect("collect render");
        assert_eq!(
            (frame.image.width(), frame.image.height()),
            (size, size),
            "reply correlated to the wrong request"
        );
    }

    let report = server.shutdown();
    assert_eq!(report.frames_completed, 10);
    assert_eq!(report.frames_failed, 0);
}

/// Many threads sharing one client (the NodePool shape): all renders
/// multiplex on the one socket concurrently and every thread gets its own
/// frame back.
#[test]
fn threads_share_one_pipelined_connection() {
    let server = server(2, 2);
    let client = Arc::new(RenderClient::connect(server.addr()).expect("connect"));

    let threads: Vec<_> = (0..8u32)
        .map(|i| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let size = 4 + i;
                let frame = client
                    .render(&sized_request(i as f32 * 29.0, size))
                    .expect("threaded render");
                assert_eq!(frame.image.width(), size);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("render thread");
    }

    let report = server.shutdown();
    assert_eq!(report.frames_completed, 8);
}

/// Tickets and renders interleave on one connection: a slow-ish render is
/// in flight while submits ack and redeems resolve around it.
#[test]
fn submits_and_renders_interleave_on_one_connection() {
    let server = server(1, 1);
    let client = RenderClient::connect(server.addr()).expect("connect");

    let in_flight = client
        .begin_render(&sized_request(0.0, 24))
        .expect("issue render");
    let ticket_a = client.submit(&sized_request(10.0, 8)).expect("submit a");
    let ticket_b = client.submit(&sized_request(20.0, 12)).expect("submit b");

    // Redeem in reverse submit order, then collect the render last.
    assert_eq!(client.redeem(ticket_b).expect("redeem b").image.width(), 12);
    assert_eq!(client.redeem(ticket_a).expect("redeem a").image.width(), 8);
    assert_eq!(
        client
            .finish_render(in_flight)
            .expect("render")
            .image
            .width(),
        24
    );

    let report = server.shutdown();
    assert_eq!(report.frames_completed, 3);
}

/// A request id may name only one outstanding request per connection: the
/// duplicate gets a typed BAD_REQUEST tagged with that id, and the
/// connection (plus the original request) survives.
#[test]
fn duplicate_request_ids_are_rejected_and_the_connection_survives() {
    let server = server(1, 1);
    let mut raw = TcpStream::connect(server.addr()).expect("connect");

    let payload = wire::encode_request(&sized_request(0.0, 8));
    write_frame(&mut raw, opcode::SUBMIT, 9, &payload).expect("first submit");
    write_frame(&mut raw, opcode::SUBMIT, 9, &payload).expect("duplicate submit");

    // The first use of id 9 acks normally…
    let (op, id, ack) = read_frame(&mut raw, wire::DEFAULT_MAX_PAYLOAD).expect("ack");
    assert_eq!((op, id), (opcode::SUBMITTED, 9));
    assert_eq!(wire::decode_ticket(&ack).expect("ticket"), 9);
    // …the duplicate is refused, typed and tagged with the id.
    let (op, id, echo) = read_frame(&mut raw, wire::DEFAULT_MAX_PAYLOAD).expect("refusal");
    assert_eq!((op, id), (opcode::BAD_REQUEST, 9));
    let message = wire::decode_message(&echo).expect("echo decodes");
    assert!(
        message.contains("duplicate request id 9"),
        "unexpected echo: {message}"
    );

    // The connection still works: redeem the original ticket on it.
    write_frame(&mut raw, opcode::REDEEM, 10, &wire::encode_ticket(9)).expect("redeem");
    let (op, id, _frame) = read_frame(&mut raw, wire::DEFAULT_MAX_PAYLOAD).expect("frame");
    assert_eq!((op, id), (opcode::FRAME, 10));
    raw.flush().unwrap();

    server.shutdown();
}

/// Once a ticket's render completes *after* its REDEEM arrived (the parked
/// redeem path), the reply carries the REDEEM's id — and a second redeem of
/// the same ticket is a typed unknown-ticket error.
#[test]
fn parked_redeems_resolve_and_tickets_redeem_once() {
    let server = server(1, 1);
    let client = RenderClient::connect(server.addr()).expect("connect");

    let ticket = client.submit(&sized_request(5.0, 16)).expect("submit");
    // Redeem immediately: the render may still be in flight, parking the
    // redeem server-side until the completion answers it.
    let frame = client.redeem(ticket).expect("redeem");
    assert_eq!(frame.image.width(), 16);

    match client.redeem(ticket) {
        Err(mgpu_net::ClientError::Protocol(what)) => {
            assert!(what.contains("unknown ticket"), "unexpected: {what}")
        }
        other => panic!("double redeem must be a typed error, got {other:?}"),
    }

    server.shutdown();
}
