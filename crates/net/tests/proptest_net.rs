//! Properties of the wire layer and the rate limiter:
//!
//! * decoding NEVER panics — arbitrary bytes, corrupted headers and every
//!   truncation of a valid frame produce typed [`WireError`]s;
//! * valid requests survive an encode→corrupt-free→decode round trip;
//! * the per-session token bucket is fair: one session draining its bucket
//!   at an arbitrary schedule never affects another session's tokens, and
//!   admissions never exceed burst + rate × elapsed.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use mgpu_net::heat::decode_stats;
use mgpu_net::ratelimit::{RateLimitConfig, TokenBucket};
use mgpu_net::wire::{
    decode_frame, decode_request, encode_request, frame_bytes, opcode, parse_header, read_frame,
    NetSceneRequest, WireError, DEFAULT_MAX_PAYLOAD, HEADER_BYTES, PRELUDE_BYTES,
};
use mgpu_net::{RenderClient, RenderServer, ServerConfig};
use mgpu_serve::Priority;
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

fn arbitrary_request(
    dataset_idx: usize,
    gpus: u32,
    azimuth: f32,
    image: u32,
    priority_bit: u32,
) -> NetSceneRequest {
    let dataset = Dataset::ALL[dataset_idx % Dataset::ALL.len()];
    let mut req = NetSceneRequest::orbit_dataset(
        dataset,
        8,
        gpus.max(1),
        azimuth,
        15.0,
        &TransferFunction::for_dataset(dataset.name()),
    )
    .with_config(RenderConfig::test_size(image.max(1)));
    req.priority = match priority_bit % 3 {
        0 => Priority::Batch,
        1 => Priority::Normal,
        _ => Priority::Interactive,
    };
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes fed to the request decoder: typed error or a valid
    /// request, never a panic — and whatever decodes must re-encode to the
    /// exact same bytes (the format is canonical).
    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        if let Ok(request) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&request), bytes);
        }
        // Frame and stats decoders share the never-panic property.
        let _ = decode_frame(&bytes);
        let _ = decode_stats(&bytes);
    }

    /// Every prefix and every single-byte corruption of a valid encoding
    /// yields a typed error or decodes to *some* request — never a panic,
    /// never trailing garbage silently accepted.
    #[test]
    fn corrupted_requests_fail_cleanly(
        dataset_idx in 0usize..3,
        gpus in 1u32..5,
        azimuth in 0f32..360.0,
        image in 1u32..64,
        priority_bit in 0u32..3,
        cut_at in 0f64..1.0,
        flip_at in 0f64..1.0,
        flip_mask in 1u8..=255,
    ) {
        let req = arbitrary_request(dataset_idx, gpus, azimuth, image, priority_bit);
        let bytes = encode_request(&req);
        let decoded = decode_request(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&req));

        // Truncation at an arbitrary point is always a typed error.
        let cut = (cut_at * bytes.len() as f64) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_request(&bytes[..cut]).is_err());
        }

        // A bit flip either still decodes (it hit a value byte) or fails
        // cleanly (it hit a tag/length byte) — it never panics.
        let mut flipped = bytes.clone();
        let at = ((flip_at * flipped.len() as f64) as usize).min(flipped.len() - 1);
        flipped[at] ^= flip_mask;
        let _ = decode_request(&flipped);
    }

    /// Corrupted frame headers parse to typed errors, never panic, and a
    /// valid header round-trips.
    #[test]
    fn corrupted_headers_fail_cleanly(header in prop::collection::vec(0u8..=255, HEADER_BYTES)) {
        let header: [u8; HEADER_BYTES] = header.try_into().unwrap();
        match parse_header(&header, 1 << 20) {
            Ok((_, len)) => prop_assert!(len <= 1 << 20),
            Err(
                WireError::BadMagic(_)
                | WireError::UnsupportedVersion { .. }
                | WireError::TooLarge { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected header error {other:?}"),
        }
    }

    /// Rate-limit fairness: session B's admissions are byte-for-byte the
    /// same whether or not session A hammers its own bucket in between —
    /// buckets are fully isolated per session.
    #[test]
    fn rate_limit_is_fair_across_sessions(
        rate in 1.0f64..100.0,
        burst in 1u32..8,
        a_schedule in prop::collection::vec(0u64..2_000, 1..64),
        b_schedule in prop::collection::vec(0u64..2_000, 1..32),
    ) {
        let config = RateLimitConfig::new(rate, burst);
        let t0 = Instant::now();
        // B alone.
        let mut b_alone = TokenBucket::new(config, t0);
        let mut b_times: Vec<u64> = b_schedule.clone();
        b_times.sort_unstable();
        let alone: Vec<bool> = b_times
            .iter()
            .map(|ms| b_alone.try_take_at(t0 + Duration::from_millis(*ms)).is_ok())
            .collect();

        // B next to a hammering A (separate buckets, interleaved calls).
        let mut a = TokenBucket::new(config, t0);
        let mut b = TokenBucket::new(config, t0);
        let mut a_times: Vec<u64> = a_schedule.clone();
        a_times.sort_unstable();
        let mut a_iter = a_times.iter().peekable();
        let contended: Vec<bool> = b_times
            .iter()
            .map(|ms| {
                while let Some(at) = a_iter.peek() {
                    if **at <= *ms {
                        let _ = a.try_take_at(t0 + Duration::from_millis(**at));
                        a_iter.next();
                    } else {
                        break;
                    }
                }
                b.try_take_at(t0 + Duration::from_millis(*ms)).is_ok()
            })
            .collect();
        prop_assert_eq!(alone, contended, "a noisy neighbour changed session B's admissions");
    }

    /// Admission count is bounded by burst + rate·elapsed (+1 for boundary
    /// rounding): the limiter actually limits.
    #[test]
    fn rate_limit_bounds_throughput(
        rate in 1.0f64..50.0,
        burst in 1u32..6,
        attempts in prop::collection::vec(0u64..5_000, 1..128),
    ) {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(RateLimitConfig::new(rate, burst), t0);
        let mut times = attempts.clone();
        times.sort_unstable();
        let horizon_ms = *times.last().unwrap();
        let admitted = times
            .iter()
            .filter(|ms| bucket.try_take_at(t0 + Duration::from_millis(**ms)).is_ok())
            .count() as f64;
        let bound = burst as f64 + rate * (horizon_ms as f64 / 1_000.0) + 1.0;
        prop_assert!(
            admitted <= bound,
            "admitted {admitted} > bound {bound} (rate {rate}, burst {burst})"
        );
    }

    /// Corrupting the v3 `request_id` field specifically: the id is opaque
    /// payload to the framing layer, so any bit flip inside it still
    /// parses — to exactly the flipped id, with opcode and payload intact
    /// (a corrupted id can misroute a reply, which is why ids are
    /// client-chosen and collision-checked, but it can never break
    /// framing). Truncation *inside* the id field is a typed error, never
    /// a panic.
    #[test]
    fn request_id_corruption_never_breaks_framing(
        request_id in 0u64..u64::MAX,
        op_bit in 0u32..5,
        payload in prop::collection::vec(0u8..=255, 0..64),
        flip_offset in 0usize..8,
        flip_mask in 1u8..=255,
        cut_inside in 0usize..8,
    ) {
        let op = [opcode::PING, opcode::RENDER, opcode::SUBMIT, opcode::REDEEM, opcode::STATS]
            [op_bit as usize];
        let frame = frame_bytes(op, request_id, &payload);

        // Flip bits inside the 8-byte id (bytes 11..19 of the prelude).
        let mut bent = frame.clone();
        bent[HEADER_BYTES + flip_offset] ^= flip_mask;
        let (got_op, got_id, got_payload) =
            read_frame(&mut &bent[..], DEFAULT_MAX_PAYLOAD).expect("id bytes are opaque");
        prop_assert_eq!(got_op, op);
        prop_assert_eq!(got_id, request_id ^ ((flip_mask as u64) << (8 * flip_offset)));
        prop_assert_eq!(got_payload, payload);

        // Tear the stream anywhere inside the id field: typed error.
        let cut = HEADER_BYTES + cut_inside;
        match read_frame(&mut &frame[..cut], DEFAULT_MAX_PAYLOAD) {
            Err(WireError::ConnectionClosed) | Err(WireError::Io(_)) => {}
            other => prop_assert!(false, "torn id field must be a typed error, got {other:?}"),
        }
        // And a full valid prelude round-trips the id verbatim.
        let (_, id, _) = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).expect("valid frame");
        prop_assert_eq!(id, request_id);
        prop_assert!(frame.len() >= PRELUDE_BYTES);
    }
}

proptest! {
    // Live-server cases are heavier: fewer, smaller.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N pipelined renders on ONE connection, collected in an arbitrary
    /// order: every reply lands on the request that issued it. Each
    /// request asks for a distinct image size, so a misrouted reply is
    /// immediately visible as the wrong dimensions.
    #[test]
    fn pipelined_renders_redeem_out_of_order(
        n in 2usize..10,
        order_keys in prop::collection::vec(0u64..u64::MAX, 10),
    ) {
        let server = RenderServer::start(ServerConfig {
            shards: 2,
            service: mgpu_serve::ServiceConfig {
                workers: 2,
                ..mgpu_serve::ServiceConfig::default()
            },
            ..ServerConfig::default()
        }).expect("bind");
        let client = RenderClient::connect(server.addr()).expect("connect");

        let mut pending: Vec<Option<(u32, mgpu_net::PendingRender)>> = (0..n)
            .map(|i| {
                let size = 4 + i as u32;
                let request = NetSceneRequest::orbit_dataset(
                    Dataset::Skull, 8, 1, i as f32 * 17.0, 0.0, &TransferFunction::bone(),
                )
                .with_config(RenderConfig::test_size(size));
                Some((size, client.begin_render(&request).expect("issue render")))
            })
            .collect();

        // A permutation derived from the random keys: sort indices by key.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|i| order_keys[*i]);

        for i in order {
            let (size, handle) = pending[i].take().expect("each collected once");
            let frame = client.finish_render(handle).expect("collect render");
            prop_assert_eq!(frame.image.width(), size, "reply matched to the wrong request");
        }
        server.shutdown();
    }
}
