//! Poison-pill clients: the server must survive clients that send garbage,
//! disconnect mid-request, or speak the wrong protocol version. The
//! affected connection gets a clean typed error ([`WireError`] echoed in a
//! `BAD_REQUEST` frame) or is dropped; *other* sessions keep rendering as
//! if nothing happened.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use mgpu_net::wire::{self, opcode, read_frame, write_frame, HEADER_BYTES, MAGIC};
use mgpu_net::{NetSceneRequest, RenderClient, RenderServer, ServerConfig};
use mgpu_serve::ServiceConfig;
use mgpu_voldata::Dataset;
use mgpu_volren::{RenderConfig, TransferFunction};

fn tiny_server() -> RenderServer {
    RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn tiny_request(azimuth: f32) -> NetSceneRequest {
    NetSceneRequest::orbit_dataset(
        Dataset::Skull,
        8,
        1,
        azimuth,
        0.0,
        &TransferFunction::bone(),
    )
    .with_config(RenderConfig::test_size(8))
}

/// A healthy render on a separate connection — the "other sessions are
/// unaffected" probe used after each poisoning.
fn assert_service_healthy(server: &RenderServer, azimuth: f32) {
    let client = RenderClient::connect(server.addr()).expect("healthy connect");
    let frame = client
        .render(&tiny_request(azimuth))
        .expect("healthy render");
    assert_eq!(frame.image.width(), 8);
}

#[test]
fn garbage_bytes_get_a_typed_error_and_the_connection_closed() {
    let server = tiny_server();
    // A healthy session opened BEFORE the poison, kept open across it.
    let survivor = RenderClient::connect(server.addr()).expect("survivor connect");

    let mut poison = TcpStream::connect(server.addr()).expect("poison connect");
    poison
        .write_all(b"GET / HTTP/1.1\r\nHost: not-a-render-service\r\n\r\n")
        .expect("write garbage");
    poison.flush().unwrap();
    // The server answers with a BAD_REQUEST frame carrying the WireError…
    // tagged with request id 0 (no request could be framed to echo an id).
    let (op, id, payload) =
        read_frame(&mut poison, wire::DEFAULT_MAX_PAYLOAD).expect("typed reply to garbage");
    assert_eq!((op, id), (opcode::BAD_REQUEST, 0));
    let message = wire::decode_message(&payload).expect("error echo decodes");
    assert!(message.contains("magic"), "unexpected echo: {message}");
    // …then closes the poisoned connection.
    match read_frame(&mut poison, wire::DEFAULT_MAX_PAYLOAD) {
        Err(wire::WireError::ConnectionClosed) | Err(wire::WireError::Io(_)) => {}
        other => panic!("poisoned connection should be closed, got {other:?}"),
    }

    // Both the pre-existing session and a fresh one are unaffected.
    let frame = survivor
        .render(&tiny_request(10.0))
        .expect("survivor render");
    assert!(!frame.from_cache);
    assert_service_healthy(&server, 20.0);
    server.shutdown();
}

#[test]
fn disconnect_mid_request_is_reaped_quietly() {
    let server = tiny_server();
    let survivor = RenderClient::connect(server.addr()).expect("survivor connect");

    // A syntactically valid header promising 64 payload bytes… of which
    // only 5 ever arrive before the client vanishes.
    let mut header = Vec::with_capacity(HEADER_BYTES + 5);
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.extend_from_slice(&wire::VERSION.to_le_bytes());
    header.push(opcode::RENDER);
    header.extend_from_slice(&64u32.to_le_bytes());
    header.extend_from_slice(&[1, 2, 3, 4, 5]);
    {
        let mut poison = TcpStream::connect(server.addr()).expect("poison connect");
        poison.write_all(&header).expect("write torn frame");
        poison.flush().unwrap();
        // Dropping the stream closes the socket mid-payload.
    }
    // Give the handler a moment to hit the EOF.
    std::thread::sleep(Duration::from_millis(120));

    let frame = survivor
        .render(&tiny_request(30.0))
        .expect("survivor render");
    assert_eq!(frame.image.height(), 8);
    assert_service_healthy(&server, 40.0);
    let report = server.shutdown();
    assert_eq!(report.frames_failed, 0, "torn frames never reach the queue");
}

/// An un-redeeming client cannot grow server memory without bound: the
/// per-session ticket table refuses submits past its cap until the client
/// redeems, and redemption frees capacity.
#[test]
fn outstanding_tickets_are_bounded_per_session() {
    let server = RenderServer::start(ServerConfig {
        shards: 1,
        max_tickets_per_session: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let client = mgpu_net::RenderClient::connect(server.addr()).expect("connect");
    let t0 = client.submit(&tiny_request(0.0)).expect("submit 1");
    let _t1 = client.submit(&tiny_request(10.0)).expect("submit 2");
    match client.submit(&tiny_request(20.0)) {
        Err(mgpu_net::ClientError::TicketsFull { outstanding, limit }) => {
            assert_eq!((outstanding, limit), (2, 2));
        }
        other => panic!("expected typed ticket-bound refusal, got {other:?}"),
    }
    // Redeeming frees a slot; the connection is still healthy.
    let frame = client.redeem(t0).expect("redeem");
    assert_eq!(frame.image.width(), 8);
    client
        .submit(&tiny_request(20.0))
        .expect("submit after redeem");
    server.shutdown();
}

/// Shutdown drains a *paused* service instead of deadlocking: a blocking
/// RENDER admitted while the queue is paused still resolves because
/// shutdown resumes the shards before joining the connection handlers.
#[test]
fn shutdown_drains_paused_service_with_blocked_render() {
    let server = RenderServer::start(ServerConfig {
        shards: 1,
        service: ServiceConfig {
            workers: 1,
            start_paused: true,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let renderer = std::thread::spawn(move || {
        let client = RenderClient::connect(addr).expect("connect");
        client
            .render(&tiny_request(5.0))
            .expect("render resolves at shutdown")
    });
    // Let the request reach the paused queue, then shut down: the frame
    // must render during the drain and the join must not hang.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown();
    assert_eq!(report.frames_completed, 1);
    let frame = renderer.join().expect("client thread");
    assert!(!frame.from_cache);
}

#[test]
fn wrong_version_and_malformed_payloads_are_clean_errors() {
    let server = tiny_server();

    // Wrong protocol version (a v2 frame has the same 11-byte header
    // layout): a typed UNSUPPORTED_VERSION reply naming both versions,
    // then a clean close — not a silent drop.
    let mut old = TcpStream::connect(server.addr()).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&999u16.to_le_bytes());
    frame.push(opcode::PING);
    frame.extend_from_slice(&0u32.to_le_bytes());
    old.write_all(&frame).unwrap();
    let (op, id, payload) = read_frame(&mut old, wire::DEFAULT_MAX_PAYLOAD).expect("version reply");
    assert_eq!((op, id), (opcode::UNSUPPORTED_VERSION, 0));
    let (got, want) = wire::decode_unsupported_version(&payload).expect("typed payload");
    assert_eq!((got, want), (999, wire::VERSION));
    match read_frame(&mut old, wire::DEFAULT_MAX_PAYLOAD) {
        Err(wire::WireError::ConnectionClosed) | Err(wire::WireError::Io(_)) => {}
        other => panic!("wrong-version connection should be closed, got {other:?}"),
    }

    // A well-framed RENDER whose payload is junk: the connection SURVIVES
    // (framing is intact) and the next request on it succeeds.
    let mut junk = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut junk, opcode::RENDER, 7, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    let (op, id, _) = read_frame(&mut junk, wire::DEFAULT_MAX_PAYLOAD).expect("junk echo");
    assert_eq!((op, id), (opcode::BAD_REQUEST, 7), "echoes the request id");
    write_frame(&mut junk, opcode::PING, 8, &wire::encode_ping(9)).unwrap();
    let (op, id, payload) = read_frame(&mut junk, wire::DEFAULT_MAX_PAYLOAD).expect("ping reply");
    assert_eq!((op, id), (opcode::PONG, 8));
    assert_eq!(wire::decode_pong(&payload).unwrap().0, 9);

    // An oversized declared length: typed TooLarge echo, then close.
    let mut huge = TcpStream::connect(server.addr()).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&wire::VERSION.to_le_bytes());
    frame.push(opcode::RENDER);
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.write_all(&frame).unwrap();
    let (op, id, payload) = read_frame(&mut huge, wire::DEFAULT_MAX_PAYLOAD).expect("size echo");
    assert_eq!((op, id), (opcode::BAD_REQUEST, 0));
    assert!(wire::decode_message(&payload).unwrap().contains("exceeds"));

    assert_service_healthy(&server, 50.0);
    server.shutdown();
}
