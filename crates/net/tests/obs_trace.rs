//! End-to-end observability through a two-node [`NodePool`]: a pipelined
//! render must leave a retrievable trace whose stage spans cover the whole
//! pipeline (queue → plan → stage → render → reply) with monotone
//! timestamps, and the pool-wide STATS v2 snapshot must survive the wire
//! bit-exactly (sorted keys make re-encoding canonical).

use mgpu_net::heat::{decode_snapshot, encode_snapshot};
use mgpu_net::{Directory, NodePool, NodePoolConfig, RenderClient, RenderServer, ServerConfig};
use mgpu_obs::CompletedTrace;
use mgpu_serve::{Priority, RenderBackend, SceneRequest, ServiceConfig};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::{RenderConfig, TransferFunction};

fn server() -> RenderServer {
    RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn request(azimuth: f32) -> SceneRequest {
    let volume = Dataset::Skull.volume(8);
    SceneRequest {
        spec: mgpu_cluster::ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&volume, azimuth, 10.0, TransferFunction::bone()),
        volume,
        config: RenderConfig::test_size(8),
        priority: Priority::Normal,
    }
}

/// The stage spans a freshly rendered (cache-missing) frame must carry,
/// in pipeline order of their start timestamps.
const PIPELINE: [&str; 7] = [
    "admit",
    "queue",
    "plan",
    "stage",
    "kernel",
    "composite",
    "reply",
];

fn full_pipeline(trace: &CompletedTrace) -> bool {
    PIPELINE.iter().all(|name| trace.span(name).is_some())
}

/// Render through a two-node pool, then pull each node's trace ring over
/// the wire: at least one trace must cover the full pipeline with ≥ 6
/// named stage spans and monotone, well-formed timestamps.
#[test]
fn pool_render_leaves_a_full_pipeline_trace_on_some_node() {
    let (a, b) = (server(), server());
    let pool = NodePool::new(
        Directory::new(vec![a.addr(), b.addr()]).expect("two-node directory"),
        NodePoolConfig::default(),
    );

    // Distinct views: every frame is a frame-cache and plan-cache miss,
    // so each rendered frame records the full span set.
    for view in 0..4 {
        RenderBackend::render(&pool, request(view as f32 * 17.0)).expect("pool render");
    }

    let traces: Vec<CompletedTrace> = pool
        .node_traces(16)
        .into_iter()
        .flat_map(|node| node.expect("node traces reachable"))
        .collect();
    assert!(!traces.is_empty(), "rendering must leave traces");

    let full = traces
        .iter()
        .find(|t| full_pipeline(t))
        .expect("some node holds a full-pipeline trace");
    assert!(
        full.spans.len() >= 6,
        "expected ≥ 6 stage spans, got {:?}",
        full.span_names()
    );

    // Well-formed: every span ends at or after it starts, and the request
    // id seeding the trace is a real wire id (never 0).
    assert_ne!(full.id, 0, "trace id is the wire request id");
    for span in &full.spans {
        assert!(
            span.end_ns >= span.start_ns,
            "span {} runs backwards",
            span.name
        );
    }

    // Monotone: the pipeline stages start in pipeline order.
    let starts: Vec<u64> = PIPELINE
        .iter()
        .map(|name| full.span(name).unwrap().start_ns)
        .collect();
    for (i, pair) in starts.windows(2).enumerate() {
        assert!(
            pair[0] <= pair[1],
            "{} starts after {} ({} > {})",
            PIPELINE[i],
            PIPELINE[i + 1],
            pair[0],
            pair[1]
        );
    }

    a.shutdown();
    b.shutdown();
}

/// STATS v2 is bit-exact on the wire: the pool-merged registry snapshot
/// re-encodes to the same bytes after a decode round trip (sorted keys
/// make the encoding canonical), and the decode reproduces the snapshot.
#[test]
fn pool_merged_snapshot_roundtrips_bit_exactly() {
    let (a, b) = (server(), server());
    let pool = NodePool::new(
        Directory::new(vec![a.addr(), b.addr()]).expect("two-node directory"),
        NodePoolConfig::default(),
    );
    // Touch both nodes so the merged snapshot carries real counters and
    // histograms from each.
    for view in 0..4 {
        RenderBackend::render(&pool, request(100.0 + view as f32 * 23.0)).expect("pool render");
    }
    for addr in [a.addr(), b.addr()] {
        let client = RenderClient::connect(addr).expect("connect node");
        client.stats().expect("node stats");
    }

    let merged = pool.obs_snapshot().expect("pool-wide snapshot");
    assert!(!merged.is_empty(), "rendering must populate the registry");
    assert!(
        merged.counter("serve.frames_completed").unwrap_or(0) >= 4,
        "merged snapshot sums both nodes' counters"
    );
    assert!(
        merged.histogram("serve.queue_wait_ns").is_some(),
        "stage histograms cross the wire"
    );

    let bytes = encode_snapshot(&merged);
    let decoded = decode_snapshot(&bytes).expect("canonical bytes decode");
    assert_eq!(decoded, merged, "decode reproduces the snapshot");
    assert_eq!(
        encode_snapshot(&decoded),
        bytes,
        "re-encoding is bit-exact (canonical sorted-key form)"
    );

    a.shutdown();
    b.shutdown();
}
