//! Elastic-pool acceptance: zero-loss graceful drain under pipelined
//! traffic, epoch-versioned placement observable through STATS v2,
//! idempotent drain/resume, the GOODBYE protocol, and heat-driven
//! rebalancing with pre-warm-before-cutover.

use std::time::Duration;

use mgpu_net::{
    rebalance_once, Directory, NodePool, NodePoolConfig, RebalanceConfig, RenderClient,
    RenderServer, ServerConfig,
};
use mgpu_serve::{Priority, RenderBackend, SceneRequest, ServiceConfig};
use mgpu_voldata::Dataset;
use mgpu_volren::camera::Scene;
use mgpu_volren::{RenderConfig, TransferFunction};

fn node() -> RenderServer {
    RenderServer::start(ServerConfig {
        shards: 2,
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        rate_limit: None,
        ..ServerConfig::default()
    })
    .expect("bind loopback node")
}

fn request(dataset: Dataset, az: f32) -> SceneRequest {
    let volume = dataset.volume(8);
    let transfer = TransferFunction::for_dataset(dataset.name());
    SceneRequest {
        spec: mgpu_cluster::ClusterSpec::accelerator_cluster(1),
        scene: Scene::orbit(&volume, az, 10.0, transfer),
        volume,
        config: RenderConfig::test_size(8),
        priority: Priority::Normal,
    }
}

fn direct(req: &SceneRequest) -> mgpu_volren::Image {
    mgpu_volren::render(&req.spec, &req.volume, &req.scene, &req.config).image
}

fn wait_drained(pool: &NodePool, node: usize) {
    for _ in 0..1000 {
        if pool.node_drained(node) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("node {node} never drained");
}

/// The acceptance test: a 3-node pool with 12 tickets in flight (spread
/// over every node), one node drained mid-run. Every ticket redeems
/// bit-identically to a direct render — the draining node answers what it
/// owes, and nothing is lost. The epoch bump is observable in the drained
/// node's STATS v2 echo, and new work for its keys routes to survivors.
#[test]
fn draining_a_node_mid_pipeline_loses_zero_frames() {
    let servers = [node(), node(), node()];
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("three-node pool");
    assert_eq!(pool.epoch(), 0);

    // 3 datasets × 4 views = 12 pipelined tickets across the key space.
    let datasets = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];
    let requests: Vec<SceneRequest> = datasets
        .iter()
        .flat_map(|&d| (0..4).map(move |v| request(d, v as f32 * 37.0)))
        .collect();
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| pool.submit(r.clone()).expect("pipelined submit"))
        .collect();
    assert!(tickets.len() >= 9, "the claim needs 9+ in flight");

    // Drain whichever node owns the skull key — it has work in flight.
    let target = pool.node_for(&request(Dataset::Skull, 0.0));
    assert!(
        tickets
            .iter()
            .zip(&requests)
            .any(|(t, _)| t.node() == target),
        "the drain target must hold in-flight tickets"
    );
    let state = pool.drain_node(target).expect("drain mid-run");
    assert!(state.draining);
    assert_eq!(pool.epoch(), 1, "a drain is a placement change");

    // The epoch bump is observable through STATS v2 while the node still
    // owes work (it keeps answering reads throughout its drain).
    let stats = pool.node_stats();
    let echoed = stats[target].as_ref().expect("draining node answers STATS");
    assert_eq!(
        echoed.epoch, 1,
        "the drained node echoes the announced epoch"
    );

    // Zero loss: every ticket — on the draining node and off it — redeems
    // bit-identically to a direct render.
    for (ticket, req) in tickets.into_iter().zip(&requests) {
        let frame = pool.redeem(ticket).expect("redeem under drain");
        assert_eq!(
            *frame.image,
            direct(req),
            "ticket redeemed during a drain must be bit-identical"
        );
    }
    wait_drained(&pool, target);

    // New work for the drained node's keys routes around it.
    let rerouted = request(Dataset::Skull, 999.0);
    let frame = pool.render(rerouted.clone()).expect("render around drain");
    assert_eq!(*frame.image, direct(&rerouted));
    let survivors: u64 = pool
        .node_stats()
        .iter()
        .enumerate()
        .filter(|(n, _)| *n != target)
        .filter_map(|(_, s)| s.as_ref().ok())
        .map(|s| s.merged.frames_completed)
        .sum();
    assert!(survivors >= 1, "survivors carry the rerouted work");

    drop(pool);
    for server in servers {
        server.shutdown();
    }
}

/// A client routing on a stale directory copy can *see* that it is stale:
/// the node echoes the highest epoch it has heard, and the copy's epoch
/// lags it.
#[test]
fn stale_directory_copies_are_detectable_through_the_epoch_echo() {
    let servers = [node(), node()];
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("two-node pool");

    // A copy taken before any placement change — the stale client's view.
    let stale: Directory = pool.directory();
    assert_eq!(stale.epoch(), 0);

    // Placement changes: drain node 0 (epoch 1), resume it (epoch 2).
    pool.drain_node(0).expect("drain");
    pool.resume_node(0).expect("resume");
    assert_eq!(pool.epoch(), 2);

    // Any client (here: a raw one, standing for an unrelated process)
    // sees the node echo epoch 2; the stale copy's epoch lags — that gap
    // IS the staleness signal.
    let observer = RenderClient::connect(servers[0].addr()).expect("observer connect");
    let echoed = observer.stats().expect("stats").epoch;
    assert_eq!(echoed, 2);
    assert!(
        stale.epoch() < echoed,
        "stale directory must lag the echoed epoch"
    );
    // A fresh copy agrees with the echo again.
    assert_eq!(pool.directory().epoch(), echoed);

    drop(pool);
    for server in servers {
        server.shutdown();
    }
}

/// Drain and resume are idempotent at both layers: repeating one is a
/// no-op (no extra epoch bump, same state reply), and the pair composes —
/// a resumed node accepts new work again.
#[test]
fn double_drain_and_double_resume_are_idempotent() {
    let servers = [node(), node()];
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("two-node pool");

    let first = pool.drain_node(0).expect("first drain");
    assert!(first.draining);
    assert_eq!(pool.epoch(), 1);
    let again = pool.drain_node(0).expect("second drain");
    assert!(again.draining);
    assert_eq!(pool.epoch(), 1, "re-draining must not bump the epoch");
    assert!(pool.draining(0));

    let resumed = pool.resume_node(0).expect("first resume");
    assert!(!resumed.draining);
    assert_eq!(pool.epoch(), 2);
    let resumed = pool.resume_node(0).expect("second resume");
    assert!(!resumed.draining);
    assert_eq!(pool.epoch(), 2, "re-resuming must not bump the epoch");
    assert!(!pool.draining(0));

    // The pair composes: after resume the node serves renders again.
    let req = request(Dataset::Skull, 5.0);
    let frame = pool.render(req.clone()).expect("render after resume");
    assert_eq!(*frame.image, direct(&req));

    drop(pool);
    for server in servers {
        server.shutdown();
    }
}

/// The wire-level drain protocol: a draining server refuses new RENDER /
/// SUBMIT with a typed `DRAINING` reply (the connection survives), keeps
/// answering reads, says GOODBYE to work-carrying sessions once empty —
/// and a fresh control connection can still RESUME it afterwards.
#[test]
fn drained_server_refuses_goodbyes_and_can_still_be_resumed() {
    let server = node();
    let worker = RenderClient::connect(server.addr()).expect("worker connect");
    let req =
        mgpu_net::NetSceneRequest::from_request(&request(Dataset::Skull, 1.0)).expect("portable");
    worker.render(&req).expect("healthy render");
    // A parked ticket keeps the session non-empty, so the GOODBYE wave
    // cannot fire while we probe the DRAINING refusal.
    let parked = worker.submit(&req).expect("park a ticket");

    // Drain announced with epoch 3: acknowledged, echoed in STATS, and
    // new work is refused with the typed DRAINING verdict (not a close).
    let state = worker.drain(3).expect("drain ack");
    assert!(state.draining);
    assert_eq!(state.epoch, 3);
    match worker.submit(&req) {
        Err(mgpu_net::ClientError::Draining { epoch }) => assert_eq!(epoch, 3),
        other => panic!("draining server must refuse typed, got {other:?}"),
    }
    // What the node already owes is still answered mid-drain.
    worker
        .redeem(parked)
        .expect("parked redeem answered while draining");

    // Empty + draining → the work-carrying session gets GOODBYE'd.
    let mut goodbyed = false;
    for _ in 0..500 {
        match worker.ping() {
            Err(mgpu_net::ClientError::Goodbye) => {
                goodbyed = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    assert!(goodbyed, "drained-empty server must say GOODBYE");

    // A pure control connection is served normally: it can observe the
    // drain and undo it.
    let control = RenderClient::connect(server.addr()).expect("control connect");
    let state = control.drain(3).expect("idempotent drain query");
    assert!(state.draining && state.outstanding == 0);
    let state = control.resume(4).expect("resume");
    assert!(!state.draining);
    assert_eq!(state.epoch, 4);

    // Back in service for fresh sessions.
    let fresh = RenderClient::connect(server.addr()).expect("fresh connect");
    fresh.render(&req).expect("render after resume");
    server.shutdown();
}

/// Heat-driven rebalancing: skewed traffic makes one node hot; one pass
/// migrates its hottest key to the cool node, pre-warming the destination
/// plan cache *before* the cutover (visible in `serve.plan_prewarms`),
/// bumping the epoch, and leaving post-cutover frames bit-identical.
#[test]
fn rebalance_migrates_a_hot_key_with_a_prewarmed_destination() {
    let servers = [node(), node()];
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("two-node pool");

    // Every frame on one key → its owner is the hot node.
    for v in 0..8 {
        pool.render(request(Dataset::Skull, v as f32 * 21.0))
            .expect("skewed render");
    }
    let probe = request(Dataset::Skull, 0.0);
    let hot = pool.node_for(&probe);
    let epoch_before = pool.epoch();

    let outcome = rebalance_once(
        &pool,
        &RebalanceConfig {
            band: 1.2,
            min_frames: 4,
            ..RebalanceConfig::default()
        },
    );
    assert!(
        outcome.imbalance > 1.2,
        "skew must register: {}",
        outcome.imbalance
    );
    assert_eq!(outcome.moves.len(), 1, "exactly one migration");
    let moved = &outcome.moves[0];
    assert_eq!(moved.from, hot);
    assert!(
        moved.prewarmed,
        "the destination must build the plan before cutover"
    );
    assert!(outcome.epoch > epoch_before, "a migration bumps the epoch");
    let dest = pool.node_for(&probe);
    assert_eq!(dest, moved.to);
    assert_ne!(dest, hot, "the key must route to the destination now");

    // The pre-warm is visible in the destination's own counters, and the
    // first post-cutover frame is bit-identical as ever.
    let stats = pool.node_stats();
    let dest_stats = stats[dest].as_ref().expect("destination reachable");
    assert!(
        dest_stats.obs.counter("serve.plan_prewarms").unwrap_or(0) >= 1,
        "destination must count the pre-warm"
    );
    let post = request(Dataset::Skull, 400.0);
    let frame = pool.render(post.clone()).expect("post-cutover render");
    assert_eq!(*frame.image, direct(&post));
    let after = pool.node_stats();
    let dest_frames = after[dest].as_ref().unwrap().merged.frames_completed;
    assert!(
        dest_frames >= 1,
        "post-cutover frames land on the destination"
    );

    drop(pool);
    for server in servers {
        server.shutdown();
    }
}

/// Live membership end to end: a node joins, takes its share of keys, and
/// a drained node can be removed with its parked tickets still redeemable
/// (the slot outlives the directory index).
#[test]
fn membership_changes_keep_parked_tickets_redeemable() {
    let servers = [node(), node()];
    let third = node();
    let pool = NodePool::try_new(
        servers.iter().map(RenderServer::addr).collect(),
        NodePoolConfig::default(),
    )
    .expect("two-node pool");

    // Park a ticket, then add a node and remove the ticket's issuer from
    // the directory — the ticket must still redeem (directly, over the
    // surviving connection) because redemption follows the slot, not the
    // index.
    let req = request(Dataset::Supernova, 11.0);
    let parked = pool.submit(req.clone()).expect("park a ticket");
    let issuer = parked.node();

    let joined = pool.add_node(third.addr()).expect("join third node");
    assert_eq!(joined, 2);
    assert_eq!(pool.node_count(), 3);
    let epoch_after_join = pool.epoch();
    assert!(epoch_after_join >= 1);

    pool.remove_node(issuer).expect("remove the issuer");
    assert_eq!(pool.node_count(), 2);
    assert!(pool.epoch() > epoch_after_join);

    let frame = pool.redeem(parked).expect("redeem after removal");
    assert_eq!(
        *frame.image,
        direct(&req),
        "a parked ticket survives its node's removal"
    );

    // The remaining directory still renders everything bit-identically.
    let req = request(Dataset::Plume, 23.0);
    let frame = pool.render(req.clone()).expect("render after churn");
    assert_eq!(*frame.image, direct(&req));

    drop(pool);
    for server in servers {
        server.shutdown();
    }
    third.shutdown();
}
