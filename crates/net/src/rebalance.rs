//! Heat-driven rebalancing for a [`NodePool`]: watch pool-wide load, and
//! when one node runs meaningfully hotter than the mean, migrate its
//! hottest key to the coolest node — pre-warming the destination's plan
//! cache *before* the cutover so the first migrated frame pays no plan
//! cost.
//!
//! ```text
//!   tick ─► node_stats() ──► frames/node ──► imbalance = max / mean
//!                │                               │ > band?
//!                │                               ▼
//!                │            hottest key on the hottest node (key_heat)
//!                │                               │
//!                │            PREWARM(last request) ► coolest node
//!                │                               │ plan built off hot path
//!                │                               ▼
//!                └──────────  migrate(key → dest): epoch bump, cutover
//! ```
//!
//! The decision loop is deliberately *client-side*: nodes stay simple
//! (they only answer `STATS` and `PREWARM`), and whichever process owns
//! the [`NodePool`] owns placement — mirroring how the in-process
//! `ShardedService` owns its shard map. Every pass is traced (span
//! `rebalance` with `rebalance.prewarm` / `rebalance.cutover` stages) and
//! counted (`pool.rebalance.*`), so `obs_top` shows the control loop
//! breathing next to the data plane it steers.

use mgpu_obs::names;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mgpu_serve::BatchKey;

use crate::pool::NodePool;

/// When and how hard the rebalancer acts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Imbalance tolerance: act only when the hottest node's completed
    /// frames exceed `band ×` the per-node mean. 1.0 would chase noise;
    /// the default 1.5 moves keys only for a sustained skew.
    pub band: f64,
    /// Ignore pools that have served fewer total frames than this — early
    /// traffic is too sparse to distinguish skew from startup order.
    pub min_frames: u64,
    /// How often [`Rebalancer`] ticks.
    pub interval: Duration,
    /// Most migrations per tick (each one bumps the epoch; keeping this
    /// small lets the previous move settle before the next is judged).
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> RebalanceConfig {
        RebalanceConfig {
            band: 1.5,
            min_frames: 16,
            interval: Duration::from_millis(500),
            max_moves: 1,
        }
    }
}

/// One key moved by a rebalance pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    pub key: BatchKey,
    /// Directory index the key routed to before the move.
    pub from: usize,
    /// Directory index it routes to now.
    pub to: usize,
    /// Whether the destination actually built a plan during pre-warm
    /// (`false` = its cache was already warm — the move is still safe).
    pub prewarmed: bool,
    /// The placement epoch after the cutover.
    pub epoch: u64,
}

/// What one rebalance pass saw and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceOutcome {
    /// Hottest node's frames over the per-node mean (1.0 = perfectly
    /// even; 0.0 when no node was reachable or no frames were seen).
    pub imbalance: f64,
    pub moves: Vec<MigrationReport>,
    /// The placement epoch when the pass finished.
    pub epoch: u64,
}

/// Run one rebalance pass over the pool: measure imbalance from every
/// reachable node's STATS, and if it exceeds the band, migrate up to
/// `max_moves` hot keys from the hottest node to the coolest — each with
/// a pre-warm before the cutover. Draining and unreachable nodes are
/// never chosen as destinations.
pub fn rebalance_once(pool: &NodePool, config: &RebalanceConfig) -> RebalanceOutcome {
    static TICK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let obs = mgpu_obs::global();
    obs.counter(names::POOL_REBALANCE_TICKS).inc();
    // Publishes into the trace ring on drop; tick ids are this process's
    // own sequence (request ids come from the wire, these don't).
    let trace = mgpu_obs::Trace::start(TICK.fetch_add(1, Ordering::Relaxed));
    let pass = trace.span("rebalance");

    // Per-node completed-frame counts; unreachable nodes drop out of both
    // the mean and the destination candidates.
    let frames: Vec<Option<u64>> = pool
        .node_stats()
        .into_iter()
        .map(|stats| stats.ok().map(|s| s.merged.frames_completed))
        .collect();
    let reachable: Vec<(usize, u64)> = frames
        .iter()
        .enumerate()
        .filter_map(|(node, f)| f.map(|f| (node, f)))
        .collect();
    let total: u64 = reachable.iter().map(|(_, f)| f).sum();
    let mut outcome = RebalanceOutcome {
        imbalance: 0.0,
        moves: Vec::new(),
        epoch: pool.epoch(),
    };
    if reachable.len() < 2 || total < config.min_frames {
        drop(pass);
        return outcome;
    }
    let mean = total as f64 / reachable.len() as f64;
    let &(hot, hot_frames) = reachable
        .iter()
        .max_by_key(|(_, f)| *f)
        .expect("reachable checked non-empty");
    outcome.imbalance = if mean > 0.0 {
        hot_frames as f64 / mean
    } else {
        0.0
    };
    if outcome.imbalance <= config.band {
        drop(pass);
        return outcome;
    }

    // Destination: the coolest reachable node that is not draining.
    let dest = reachable
        .iter()
        .filter(|(node, _)| *node != hot && !pool.draining(*node))
        .min_by_key(|(_, f)| *f)
        .map(|(node, _)| *node);
    let Some(dest) = dest else {
        drop(pass);
        return outcome;
    };

    // Hot keys actually owned by the hot node, hottest first.
    let directory = pool.directory();
    let candidates: Vec<BatchKey> = pool
        .key_heat()
        .into_iter()
        .filter(|(key, _)| directory.node_for(key) == hot)
        .map(|(key, _)| key)
        .take(config.max_moves)
        .collect();
    for key in candidates {
        let Some(request) = pool.last_request(&key) else {
            continue;
        };
        // Pre-warm the destination *before* the cutover: the first frame
        // routed there must find its plan already built.
        let span = trace.span("rebalance.prewarm");
        let prewarmed = match pool.prewarm(dest, &request) {
            Ok((_, built)) => built,
            Err(_) => continue, // destination unreachable — don't move the key
        };
        drop(span);
        let span = trace.span("rebalance.cutover");
        let moved = pool.migrate(&key, dest).unwrap_or(false);
        drop(span);
        if moved {
            obs.counter(names::POOL_REBALANCE_MIGRATIONS).inc();
            let epoch = pool.epoch();
            // Announce the new epoch to the destination (the prewarm
            // above carried the pre-cutover epoch); a second prewarm is
            // an idempotent no-op for the cache but updates the echoed
            // epoch, making the cutover observable in STATS.
            let _ = pool.prewarm(dest, &request);
            outcome.moves.push(MigrationReport {
                key,
                from: hot,
                to: dest,
                prewarmed,
                epoch,
            });
        }
    }
    outcome.epoch = pool.epoch();
    drop(pass);
    outcome
}

/// A background thread ticking [`rebalance_once`] at
/// [`RebalanceConfig::interval`]. Dropping the handle stops the loop and
/// joins the thread.
pub struct Rebalancer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Rebalancer {
    pub fn spawn(pool: Arc<NodePool>, config: RebalanceConfig) -> Rebalancer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mgpu-rebalance".to_string())
            .spawn(move || {
                // Relaxed: the stop flag is a pure signal — no data is
                // published through it (join() below is the real sync
                // point), so no ordering is needed.
                while !stop_flag.load(Ordering::Relaxed) {
                    rebalance_once(&pool, &config);
                    // Sleep in small slices so drop() never waits a full
                    // interval to join.
                    let mut slept = Duration::ZERO;
                    while slept < config.interval && !stop_flag.load(Ordering::Relaxed) {
                        let slice = Duration::from_millis(20).min(config.interval - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("spawn rebalancer thread");
        Rebalancer {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Rebalancer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
