//! The network front-end: a [`RenderServer`] owning a [`ShardedService`],
//! serving the wire protocol over plain `std::net` TCP.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread, its own rate-limit bucket (a session *is* a connection) and its
//! own ticket table, and speaks strict request/response — so a slow or
//! hostile client can only ever hurt itself. Requests flow:
//!
//! ```text
//! read_frame ──► rate limiter ──► admission control ──► ShardedService
//!    │ framing error                │ THROTTLED           │ REJECTED
//!    ▼                              ▼                     ▼
//!  BAD_REQUEST + close            reply, keep conn      reply, keep conn
//! ```
//!
//! Fault containment mirrors the in-process service: a client that sends
//! garbage gets a typed [`WireError`] echoed in a `BAD_REQUEST` frame and
//! its connection closed; a client that vanishes mid-request is reaped on
//! the next read or write. Other connections never notice either.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mgpu_serve::{FrameTicket, SceneRequest, ServiceConfig, ServiceReport, ShardedService};

use crate::heat::{encode_stats, NetStats};
use crate::ratelimit::{RateLimitConfig, TokenBucket};
use crate::wire::{
    self, decode_ping, decode_request, decode_ticket, encode_frame, encode_message, encode_pong,
    encode_rejected, encode_throttled, encode_ticket, opcode, write_frame, WireError,
    DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shards of the backing [`ShardedService`] (≥ 1; each shard runs
    /// `service.workers` worker threads).
    pub shards: usize,
    /// Per-shard service configuration.
    pub service: ServiceConfig,
    /// Per-session (= per-connection) rate limiting at the server door;
    /// `None` disables throttling.
    pub rate_limit: Option<RateLimitConfig>,
    /// Upper bound on one *request* frame's payload. Response frames are as
    /// large as the requested image; clients reading bigger responses raise
    /// their own bound with [`crate::RenderClient::set_max_payload`].
    pub max_payload: u64,
    /// Outstanding (submitted, un-redeemed) tickets one session may hold.
    /// Each parked ticket eventually holds a rendered frame, so this bounds
    /// per-connection server memory; submits past the bound get a typed
    /// `TICKETS_FULL` reply until the client redeems.
    pub max_tickets_per_session: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 2,
            service: ServiceConfig::default(),
            rate_limit: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_tickets_per_session: 64,
        }
    }
}

struct Shared {
    sharded: ShardedService,
    config: ServerConfig,
    shutdown: AtomicBool,
}

/// The TCP render server. Dropping it (or calling
/// [`RenderServer::shutdown`]) stops accepting, drains every connection
/// handler, then shuts the backing service down — every frame admitted
/// before shutdown still renders.
pub struct RenderServer {
    addr: SocketAddr,
    shared: Option<Arc<Shared>>,
    accept: Option<JoinHandle<()>>,
}

impl RenderServer {
    /// Bind an ephemeral loopback port (tests, benches, examples). See
    /// [`RenderServer::bind`] to choose the address.
    pub fn start(config: ServerConfig) -> std::io::Result<RenderServer> {
        RenderServer::bind("127.0.0.1:0", config)
    }

    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<RenderServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the loop can observe the shutdown flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            sharded: ShardedService::start(config.shards, config.service.clone()),
            config,
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mgpu-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(RenderServer {
            addr,
            shared: Some(shared),
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side stats without a socket round-trip (the `STATS` request
    /// returns exactly this).
    pub fn stats(&self) -> NetStats {
        let shared = self.shared.as_ref().expect("server is running");
        net_stats(&shared.sharded)
    }

    fn stop_accepting(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::SeqCst);
            // A handler blocked on a ticket of a *paused* service would
            // never resolve and the joins below would deadlock: resume so
            // already-admitted work drains (shutdown always drains — same
            // contract as the in-process service).
            shared.sharded.resume();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stop accepting, drain the connection handlers, shut the render
    /// service down and return its final merged report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop_accepting();
        let shared = self.shared.take().expect("shutdown runs once");
        let shared =
            Arc::into_inner(shared).expect("connection handlers joined before service shutdown");
        shared.sharded.shutdown()
    }
}

impl Drop for RenderServer {
    fn drop(&mut self) {
        self.stop_accepting();
        // Dropping `shared` drops the ShardedService, whose own Drop joins
        // the render workers.
    }
}

/// One coherent stats snapshot (heat and merged report derive from the
/// same per-shard reports, so shard counters sum to the merged counters
/// even under live traffic).
fn net_stats(sharded: &ShardedService) -> NetStats {
    let (shards, merged) = sharded.heat_and_merged();
    NetStats { merged, shards }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Reap finished connections as we go: keeping every JoinHandle
        // until shutdown would pin each dead handler's thread resources
        // for the server's whole lifetime.
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("mgpu-net-conn".into())
                    .spawn(move || handle_connection(&shared, stream))
                    .expect("spawn connection handler");
                handlers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// `read_exact` that keeps servicing read timeouts until the shutdown flag
/// flips — the connection handler's only blocking point, so a 50 ms read
/// timeout bounds shutdown latency without tearing frames apart.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(WireError::ConnectionClosed);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::ConnectionClosed),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn read_frame_interruptible(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    read_exact_interruptible(stream, &mut header, shared)?;
    let (op, len) = wire::parse_header(&header, shared.config.max_payload)?;
    let mut payload = vec![0u8; len];
    read_exact_interruptible(stream, &mut payload, shared)?;
    Ok((op, payload))
}

/// Per-connection session state: the rate-limit bucket and outstanding
/// tickets from fire-and-forget submits.
struct Session {
    bucket: Option<TokenBucket>,
    tickets: HashMap<u64, FrameTicket>,
    next_ticket: u64,
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut session = Session {
        bucket: shared
            .config
            .rate_limit
            .map(|cfg| TokenBucket::new(cfg, Instant::now())),
        tickets: HashMap::new(),
        next_ticket: 1,
    };
    loop {
        match read_frame_interruptible(&mut stream, shared) {
            Ok((op, payload)) => {
                match handle_request(shared, &mut stream, &mut session, op, &payload) {
                    Ok(true) => {}
                    // Reply failed or the request demanded a close.
                    Ok(false) | Err(_) => break,
                }
            }
            // Peer gone (cleanly or mid-frame): nothing to answer.
            Err(WireError::ConnectionClosed) | Err(WireError::Io(_)) => break,
            // Framing is poisoned (bad magic/version, oversized length):
            // echo the typed error, then abandon the stream — resyncing an
            // unframed byte stream is guesswork.
            Err(err) => {
                let _ = write_frame(
                    &mut stream,
                    opcode::BAD_REQUEST,
                    &encode_message(&err.to_string()),
                );
                break;
            }
        }
    }
}

/// Serve one request. `Ok(true)` keeps the connection, `Ok(false)` ends it
/// (unknown opcode), `Err` means the reply itself could not be written.
fn handle_request(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut Session,
    op: u8,
    payload: &[u8],
) -> Result<bool, WireError> {
    match op {
        opcode::PING => match decode_ping(payload) {
            Ok(token) => {
                let shards = shared.sharded.shard_count() as u32;
                write_frame(stream, opcode::PONG, &encode_pong(token, shards))?;
                Ok(true)
            }
            Err(err) => bad_request(stream, &err),
        },
        opcode::RENDER => {
            let ticket = match admit(shared, stream, session, payload, Submit::Blocking)? {
                Admitted::Ticket(ticket) => ticket,
                Admitted::Answered(keep) => return Ok(keep),
            };
            reply_with_frame(stream, ticket)?;
            Ok(true)
        }
        opcode::SUBMIT => {
            // Bound the ticket table BEFORE admitting: every parked ticket
            // eventually holds a rendered frame, so an un-redeeming client
            // must not grow server memory without limit. The reply is
            // typed (like THROTTLED/REJECTED): redeem, then retry.
            if session.tickets.len() >= shared.config.max_tickets_per_session {
                write_frame(
                    stream,
                    opcode::TICKETS_FULL,
                    &wire::encode_tickets_full(
                        session.tickets.len() as u64,
                        shared.config.max_tickets_per_session as u64,
                    ),
                )?;
                return Ok(true);
            }
            let ticket = match admit(shared, stream, session, payload, Submit::Try)? {
                Admitted::Ticket(ticket) => ticket,
                Admitted::Answered(keep) => return Ok(keep),
            };
            let id = session.next_ticket;
            session.next_ticket += 1;
            session.tickets.insert(id, ticket);
            write_frame(stream, opcode::SUBMITTED, &encode_ticket(id))?;
            Ok(true)
        }
        opcode::REDEEM => match decode_ticket(payload) {
            Ok(id) => match session.tickets.remove(&id) {
                Some(ticket) => {
                    reply_with_frame(stream, ticket)?;
                    Ok(true)
                }
                None => {
                    let err = WireError::Malformed(format!("unknown ticket {id}"));
                    bad_request(stream, &err)
                }
            },
            Err(err) => bad_request(stream, &err),
        },
        opcode::STATS => {
            let stats = net_stats(&shared.sharded);
            write_frame(stream, opcode::STATS_REPORT, &encode_stats(&stats))?;
            Ok(true)
        }
        other => {
            let _ = bad_request(stream, &WireError::UnknownOpcode(other));
            Ok(false)
        }
    }
}

enum Admitted {
    /// The request cleared the rate limiter and admission control.
    Ticket(FrameTicket),
    /// Already answered (throttled / rejected / malformed); the payload
    /// says whether to keep the connection.
    Answered(bool),
}

/// Which in-process submit the request mirrors: `RENDER` blocks at the
/// admission bound like [`ShardedService::submit`], `SUBMIT` sheds with a
/// `REJECTED` reply like `try_submit`.
enum Submit {
    Blocking,
    Try,
}

/// The server door: decode, rate-limit, then hand to the sharded service.
/// `RENDER` and `SUBMIT` both pass through here, so the rate limiter sits
/// before admission control for both submit flavours.
fn admit(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut Session,
    payload: &[u8],
    mode: Submit,
) -> Result<Admitted, WireError> {
    let request = match decode_request(payload) {
        Ok(request) => request,
        Err(err) => return bad_request(stream, &err).map(Admitted::Answered),
    };
    // Validate fully BEFORE spending a rate-limit token: a malformed
    // request never renders, so it must not burn the session's budget —
    // whether it fails at decode or at semantic validation.
    let (spec, volume, scene, config, priority) = match request.to_parts() {
        Ok(parts) => parts,
        Err(err) => return bad_request(stream, &err).map(Admitted::Answered),
    };
    if let Some(bucket) = &mut session.bucket {
        if let Err(retry_after) = bucket.try_take() {
            write_frame(stream, opcode::THROTTLED, &encode_throttled(retry_after))?;
            return Ok(Admitted::Answered(true));
        }
    }
    let scene_request = SceneRequest {
        spec,
        volume,
        scene,
        config,
        priority,
    };
    match mode {
        Submit::Blocking => Ok(Admitted::Ticket(shared.sharded.submit(scene_request))),
        Submit::Try => match shared.sharded.try_submit(scene_request) {
            Ok(ticket) => Ok(Admitted::Ticket(ticket)),
            Err(admission) => {
                write_frame(stream, opcode::REJECTED, &encode_rejected(&admission))?;
                Ok(Admitted::Answered(true))
            }
        },
    }
}

/// Redeem a ticket into a `FRAME` or `FAILED` reply.
fn reply_with_frame(stream: &mut TcpStream, ticket: FrameTicket) -> Result<(), WireError> {
    match ticket.wait_result() {
        Ok(frame) => {
            // Cache hits re-deliver a previously rendered frame: their
            // simulated frame time is zero (same convention as the
            // in-process `BackendFrame`), not the original render's time.
            let sim_nanos = if frame.from_cache {
                0
            } else {
                frame.report.runtime().nanos()
            };
            let payload = encode_frame(&frame.image, frame.from_cache, sim_nanos);
            write_frame(stream, opcode::FRAME, &payload)
        }
        Err(err) => write_frame(stream, opcode::FAILED, &encode_message(err.message())),
    }
}

/// Echo a payload-level error; the connection survives (`Ok(true)`).
fn bad_request(stream: &mut TcpStream, err: &WireError) -> Result<bool, WireError> {
    write_frame(
        stream,
        opcode::BAD_REQUEST,
        &encode_message(&err.to_string()),
    )?;
    Ok(true)
}
