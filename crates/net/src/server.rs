//! The network front-end: a [`RenderServer`] owning a [`ShardedService`],
//! serving wire v3 over plain `std::net` TCP from **one event-driven
//! readiness loop** — the C10K shape: thousands of mostly-idle sessions
//! cost one file descriptor and a few hundred bytes of state each, not a
//! parked thread.
//!
//! ```text
//!                        poll(2) readiness loop (one thread)
//!   TcpListener ──accept──► connection registry: per-conn read/write
//!                           buffers + partial-frame state machines
//!        frame complete ──► rate limiter ──► admission ──► try_submit_with
//!             │ THROTTLED/REJECTED answered inline, tagged request_id      │
//!             ▼                                                            ▼
//!        write buffer ◄── completion queue ◄── hook fires on a render worker
//!                          (waker pipe wakes the poll)
//! ```
//!
//! Every request frame carries a client-chosen `request_id`; every reply
//! echoes it — so one connection carries many in-flight renders and the
//! replies leave in *completion* order, not submission order. The loop
//! never sleeps on a timer: it blocks in `poll(2)` until a socket is ready
//! or a render worker writes the waker byte, so an idle server costs zero
//! wakeups (a unit test pins this down).
//!
//! Fault containment mirrors the old thread-per-connection server: a
//! client that sends garbage gets a typed [`WireError`] echoed in a
//! `BAD_REQUEST` frame and its connection closed; a v2 (or any
//! wrong-version) client gets a typed `UNSUPPORTED_VERSION` reply and a
//! clean close; a client that vanishes mid-request is reaped on the next
//! readiness event. Other connections never notice any of it.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mgpu_obs::names;
use mgpu_obs::{Counter, Gauge, Registry, Trace};
use mgpu_serve::{FrameResult, SceneRequest, ServiceConfig, ServiceReport, ShardedService};

use crate::heat::{encode_stats, NetStats};
use crate::ratelimit::{RateLimitConfig, TokenBucket};
use crate::wire::{
    self, decode_epoch, decode_ping, decode_prewarm, decode_request, decode_ticket,
    encode_drain_state, encode_epoch, encode_frame, encode_message, encode_pong, encode_prewarmed,
    encode_rejected, encode_throttled, encode_ticket, frame_bytes, opcode, DrainState, WireError,
    DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shards of the backing [`ShardedService`] (≥ 1; each shard runs
    /// `service.workers` worker threads).
    pub shards: usize,
    /// Per-shard service configuration.
    pub service: ServiceConfig,
    /// Per-session (= per-connection) rate limiting at the server door;
    /// `None` disables throttling.
    pub rate_limit: Option<RateLimitConfig>,
    /// Upper bound on one *request* frame's payload. Response frames are as
    /// large as the requested image; clients reading bigger responses raise
    /// their own bound with [`crate::RenderClient::set_max_payload`].
    pub max_payload: u64,
    /// Outstanding requests one session may hold: in-flight `RENDER`s plus
    /// submitted-but-unredeemed tickets. Each one eventually pins a
    /// rendered frame in server memory, so this bounds per-connection
    /// cost; requests past the bound get a typed `TICKETS_FULL` reply
    /// until replies are consumed / tickets redeemed.
    pub max_tickets_per_session: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 2,
            service: ServiceConfig::default(),
            rate_limit: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_tickets_per_session: 64,
        }
    }
}

// ---------------------------------------------------------------------------
// Readiness: poll(2) over raw fds — std::net only, no extra crates
// ---------------------------------------------------------------------------

/// Minimal `poll(2)` wrapper. `std` exposes no multi-socket wait, and the
/// offline build forbids external crates, so the loop declares the libc
/// symbol directly (libc is already linked by std). Level-triggered: a
/// spurious "ready" only costs one `WouldBlock` read.
mod readiness {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` as `poll(2)` expects it.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub fn new(fd: i32, events: i16) -> PollFd {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }

        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLHUP | POLLERR) != 0
        }

        pub fn writable(&self) -> bool {
            self.revents & POLLOUT != 0
        }

        /// The fd is dead (peer reset, or the fd itself is invalid).
        pub fn failed(&self) -> bool {
            self.revents & (POLLERR | POLLNVAL) != 0
        }
    }

    #[cfg(unix)]
    pub fn fd_of(source: &impl std::os::fd::AsRawFd) -> i32 {
        source.as_raw_fd()
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    type NFds = std::os::raw::c_ulong;
    #[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
    type NFds = std::os::raw::c_uint;

    #[cfg(unix)]
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }

    /// Block until at least one fd is ready (or `timeout_ms` elapses;
    /// negative = wait forever). Retries `EINTR` internally.
    #[cfg(unix)]
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            // SAFETY: `fds` is a live, exclusively borrowed slice for the
            // whole call; `PollFd` is `#[repr(C)]` matching `struct pollfd`,
            // and the length is passed alongside the pointer, so the kernel
            // reads/writes exactly the slice we own and nothing else.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Portability stub for non-unix hosts (never exercised by CI): report
    /// everything ready and let the non-blocking reads/writes sort out the
    /// spurious readiness. The short sleep keeps it from spinning.
    #[cfg(not(unix))]
    pub fn fd_of<T>(_source: &T) -> i32 {
        0
    }

    #[cfg(not(unix))]
    pub fn wait(fds: &mut [PollFd], _timeout_ms: i32) -> std::io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(1));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

// ---------------------------------------------------------------------------
// Waker + completion queue: render workers → event loop
// ---------------------------------------------------------------------------

/// Self-pipe built from a loopback TCP pair (`std::net` has no pipes): the
/// event loop polls the read end; render workers write one byte to break
/// the poll when a completion lands.
struct Waker {
    tx: TcpStream,
}

impl Waker {
    fn wake(&self) {
        // Non-blocking: a full pipe already guarantees a pending wakeup,
        // and a closed pipe means the loop is gone — both ignorable.
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// Build the waker pair: `tx` for workers (and shutdown), `rx` for the
/// event loop to poll and drain.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Accept until we see our own connection (paranoia against a stray
    // port-scanning connect racing the pair).
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            break rx;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// How a completed render leaves the event loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Done {
    /// A `RENDER`: the reply frame goes straight to the write buffer.
    Render,
    /// A `SUBMIT`: the result parks in the session's ticket table until
    /// the client `REDEEM`s it (a parked redeem is answered immediately).
    Ticket,
}

struct Completion {
    conn: u64,
    request_id: u64,
    mode: Done,
    result: FrameResult,
    /// The request's trace, carried through the render so the event loop
    /// can stamp the `reply` span before the last `Arc` drop publishes it.
    trace: Arc<Trace>,
}

/// What a render worker's completion hook reaches: the queue plus the
/// waker. Deliberately a *separate* `Arc` from [`Shared`] — hooks live
/// inside queued jobs, and a hook holding the service's own `Arc` would
/// cycle and break shutdown's sole-ownership teardown.
struct Notifier {
    completions: Mutex<Vec<Completion>>,
    /// Pre-encoded reply frames from off-loop workers (the pre-warm
    /// thread): `(conn token, frame bytes)`, delivered by the next
    /// `apply_completions` pass.
    replies: Mutex<Vec<(u64, Vec<u8>)>>,
    waker: Waker,
}

impl Notifier {
    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion queue poisoned")
            .push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completion queue poisoned"))
    }

    fn reply(&self, conn: u64, frame: Vec<u8>) {
        self.replies
            .lock()
            .expect("reply queue poisoned")
            .push((conn, frame));
        self.waker.wake();
    }

    fn drain_replies(&self) -> Vec<(u64, Vec<u8>)> {
        std::mem::take(&mut *self.replies.lock().expect("reply queue poisoned"))
    }
}

/// One queued `PREWARM`: built off the event loop by the pre-warm worker
/// thread, answered through [`Notifier::reply`].
struct PrewarmJob {
    conn: u64,
    request_id: u64,
    request: SceneRequest,
}

// ---------------------------------------------------------------------------
// Per-connection state
// ---------------------------------------------------------------------------

/// Incremental frame reader: consumes whatever bytes the socket has,
/// yielding a complete `(opcode, request_id, payload)` at a time.
enum ReadPhase {
    Header {
        buf: [u8; HEADER_BYTES],
        have: usize,
    },
    RequestId {
        op: u8,
        len: usize,
        buf: [u8; 8],
        have: usize,
    },
    Payload {
        op: u8,
        request_id: u64,
        buf: Vec<u8>,
        have: usize,
    },
}

impl ReadPhase {
    fn start() -> ReadPhase {
        ReadPhase::Header {
            buf: [0u8; HEADER_BYTES],
            have: 0,
        }
    }
}

/// Outcome of one read pass over a connection.
enum ReadStep {
    /// A complete frame arrived.
    Frame(u8, u64, Vec<u8>),
    /// No full frame yet (socket drained).
    NotYet,
    /// Peer closed / errored; nothing to answer.
    Gone,
    /// The byte stream is unframable; echo the typed error and close.
    Poisoned(WireError),
}

/// Fate of a submitted ticket in the session table.
enum TicketState {
    Pending,
    Ready(FrameResult),
}

/// `Arc` handles into the server's per-instance [`Registry`], cloned into
/// every connection so the hot read/write paths record lock-free.
#[derive(Clone)]
struct ConnObs {
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    connections: Arc<Gauge>,
}

impl ConnObs {
    fn new(reg: &Registry) -> ConnObs {
        ConnObs {
            bytes_read: reg.counter(names::NET_BYTES_READ),
            bytes_written: reg.counter(names::NET_BYTES_WRITTEN),
            frames_in: reg.counter(names::NET_FRAMES_IN),
            frames_out: reg.counter(names::NET_FRAMES_OUT),
            connections: reg.gauge(names::NET_CONNECTIONS),
        }
    }
}

/// One connection in the registry: socket, partial-frame reader, pending
/// writes, and the session state (rate bucket, in-flight request ids,
/// parked tickets) that used to live on a dedicated thread.
struct Conn {
    stream: TcpStream,
    read: ReadPhase,
    /// Outgoing frames, front partially written up to `out_pos`.
    out: VecDeque<Vec<u8>>,
    out_pos: usize,
    bucket: Option<TokenBucket>,
    /// `RENDER` request ids admitted but not yet answered.
    in_flight: HashSet<u64>,
    /// `SUBMIT` request ids (= ticket ids) not yet redeemed.
    tickets: HashMap<u64, TicketState>,
    /// Parked `REDEEM`s waiting on a pending ticket: ticket id → the
    /// redeem frame's own request id (which tags the eventual reply).
    redeems: HashMap<u64, u64>,
    /// Stop reading; flush the write buffer, then drop the connection.
    closing: bool,
    /// Has this session ever been admitted render work (`RENDER` or
    /// `SUBMIT`)? The soft-drain GOODBYE wave only seals such sessions;
    /// pure control connections (PING/STATS/DRAIN/RESUME) stay readable,
    /// so a drained node can still be resumed.
    carried_work: bool,
    obs: ConnObs,
}

impl Conn {
    fn new(stream: TcpStream, rate: Option<RateLimitConfig>, obs: ConnObs) -> Conn {
        obs.connections.inc();
        Conn {
            stream,
            read: ReadPhase::start(),
            out: VecDeque::new(),
            out_pos: 0,
            bucket: rate.map(|cfg| TokenBucket::new(cfg, Instant::now())),
            in_flight: HashSet::new(),
            tickets: HashMap::new(),
            redeems: HashMap::new(),
            closing: false,
            carried_work: false,
            obs,
        }
    }

    fn send(&mut self, frame: Vec<u8>) {
        self.out.push_back(frame);
    }

    /// Requests currently holding server-side state for this session.
    fn outstanding(&self) -> usize {
        self.in_flight.len() + self.tickets.len()
    }

    /// Is `id` already naming an outstanding request on this connection?
    fn id_in_use(&self, id: u64) -> bool {
        self.in_flight.contains(&id)
            || self.tickets.contains_key(&id)
            || self.redeems.values().any(|redeem_id| *redeem_id == id)
    }

    /// Everything this session still owes the client (shutdown drains it).
    fn drained(&self) -> bool {
        self.in_flight.is_empty() && self.redeems.is_empty() && self.out.is_empty()
    }

    /// Pull bytes until a full frame lands or the socket runs dry.
    fn read_step(&mut self, max_payload: u64) -> ReadStep {
        loop {
            match &mut self.read {
                ReadPhase::Header { buf, have } => {
                    let n = *have;
                    match read_some(&mut self.stream, &mut buf[n..]) {
                        Fill::Bytes(got) => {
                            *have += got;
                            self.obs.bytes_read.add(got as u64);
                        }
                        Fill::WouldBlock => return ReadStep::NotYet,
                        Fill::Closed => return ReadStep::Gone,
                    }
                    if *have < HEADER_BYTES {
                        continue;
                    }
                    match wire::parse_header(buf, max_payload) {
                        Ok((op, len)) => {
                            self.read = ReadPhase::RequestId {
                                op,
                                len,
                                buf: [0u8; 8],
                                have: 0,
                            };
                        }
                        Err(err) => return ReadStep::Poisoned(err),
                    }
                }
                ReadPhase::RequestId { op, len, buf, have } => {
                    let n = *have;
                    match read_some(&mut self.stream, &mut buf[n..]) {
                        Fill::Bytes(got) => {
                            *have += got;
                            self.obs.bytes_read.add(got as u64);
                        }
                        Fill::WouldBlock => return ReadStep::NotYet,
                        Fill::Closed => return ReadStep::Gone,
                    }
                    if *have < 8 {
                        continue;
                    }
                    let request_id = u64::from_le_bytes(*buf);
                    self.read = ReadPhase::Payload {
                        op: *op,
                        request_id,
                        buf: vec![0u8; *len],
                        have: 0,
                    };
                }
                ReadPhase::Payload {
                    op,
                    request_id,
                    buf,
                    have,
                } => {
                    if *have < buf.len() {
                        let n = *have;
                        match read_some(&mut self.stream, &mut buf[n..]) {
                            Fill::Bytes(got) => {
                                *have += got;
                                self.obs.bytes_read.add(got as u64);
                            }
                            Fill::WouldBlock => return ReadStep::NotYet,
                            Fill::Closed => return ReadStep::Gone,
                        }
                        if *have < buf.len() {
                            continue;
                        }
                    }
                    let (op, request_id) = (*op, *request_id);
                    let payload = std::mem::take(buf);
                    self.read = ReadPhase::start();
                    self.obs.frames_in.inc();
                    return ReadStep::Frame(op, request_id, payload);
                }
            }
        }
    }

    /// Write as much of the out-queue as the socket accepts. `Err(())`
    /// means the connection is dead.
    fn flush(&mut self) -> Result<(), ()> {
        while let Some(front) = self.out.front() {
            match (&self.stream).write(&front[self.out_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.out_pos += n;
                    self.obs.bytes_written.add(n as u64);
                    if self.out_pos == front.len() {
                        self.out.pop_front();
                        self.out_pos = 0;
                        self.obs.frames_out.inc();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.obs.connections.dec();
    }
}

enum Fill {
    Bytes(usize),
    WouldBlock,
    Closed,
}

fn read_some(stream: &mut TcpStream, buf: &mut [u8]) -> Fill {
    match stream.read(buf) {
        Ok(0) => Fill::Closed,
        Ok(n) => Fill::Bytes(n),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Fill::WouldBlock,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Fill::Bytes(0),
        Err(_) => Fill::Closed,
    }
}

// ---------------------------------------------------------------------------
// The server handle
// ---------------------------------------------------------------------------

struct Shared {
    sharded: ShardedService,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Soft drain (wire v4): refuse new RENDER/SUBMIT with a typed
    /// `DRAINING` reply, keep answering everything already owed, `GOODBYE`
    /// every connection once nothing is outstanding. Reversible with
    /// `RESUME` — unlike `shutdown`, the sockets stay open and readable.
    draining: AtomicBool,
    /// Highest directory epoch any peer has announced (via `DRAIN` /
    /// `RESUME` / `PREWARM`), echoed in STATS so a stale client can see
    /// the placement moved under it. Monotone: `fetch_max` only.
    epoch: AtomicU64,
    /// Feed of the pre-warm worker thread; `None` once shutdown began.
    prewarm_tx: Mutex<Option<mpsc::Sender<PrewarmJob>>>,
    notifier: Arc<Notifier>,
    /// Per-*server-instance* metrics (`net.*`): wakeups and traffic must
    /// not mix across servers sharing a process (the idle-wakeup test runs
    /// next to busy servers), so these live here rather than in the
    /// process-global registry. `STATS` merges both into one snapshot.
    obs: Registry,
    /// Times the event loop's `poll` returned — the "CPU wakeups" an idle
    /// server costs. A sleep-polling loop burns hundreds per second; this
    /// one stays at zero while nothing happens (a unit test asserts it).
    /// Lives in `obs` as `net.loop_wakeups`; this is the cached handle.
    wakeups: Arc<Counter>,
    /// `net.throttled`: requests refused by the per-session rate limiter.
    throttled: Arc<Counter>,
}

/// The TCP render server. Dropping it (or calling
/// [`RenderServer::shutdown`]) stops accepting, drains in-flight replies to
/// every connection, then shuts the backing service down — every frame
/// admitted before shutdown still renders.
pub struct RenderServer {
    addr: SocketAddr,
    shared: Option<Arc<Shared>>,
    event_loop: Option<JoinHandle<()>>,
    prewarm_worker: Option<JoinHandle<()>>,
}

impl RenderServer {
    /// Bind an ephemeral loopback port (tests, benches, examples). See
    /// [`RenderServer::bind`] to choose the address.
    pub fn start(config: ServerConfig) -> std::io::Result<RenderServer> {
        RenderServer::bind("127.0.0.1:0", config)
    }

    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<RenderServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker_tx, waker_rx) = waker_pair()?;
        let obs = Registry::new();
        let wakeups = obs.counter(names::NET_LOOP_WAKEUPS);
        let throttled = obs.counter(names::NET_THROTTLED);
        let (prewarm_tx, prewarm_rx) = mpsc::channel::<PrewarmJob>();
        let shared = Arc::new(Shared {
            sharded: ShardedService::start(config.shards, config.service.clone()),
            config,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            prewarm_tx: Mutex::new(Some(prewarm_tx)),
            notifier: Arc::new(Notifier {
                completions: Mutex::new(Vec::new()),
                replies: Mutex::new(Vec::new()),
                waker: Waker { tx: waker_tx },
            }),
            obs,
            wakeups,
            throttled,
        });
        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mgpu-net-events".into())
                .spawn(move || EventLoop::new(listener, waker_rx, shared).run())
                .expect("spawn event loop")
        };
        // Plan staging bricks the whole volume — milliseconds to seconds —
        // so PREWARM must never run on the event loop. One worker serializes
        // warm-ups (they are migration hints, not a hot path) and answers
        // through the completion waker like a render worker would.
        let prewarm_worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mgpu-net-prewarm".into())
                .spawn(move || {
                    while let Ok(job) = prewarm_rx.recv() {
                        let (shard, built) = shared.sharded.prewarm(&job.request);
                        shared.obs.counter(names::NET_PREWARMS).inc();
                        shared.notifier.reply(
                            job.conn,
                            frame_bytes(
                                opcode::PREWARMED,
                                job.request_id,
                                &encode_prewarmed(shard as u32, built),
                            ),
                        );
                    }
                })
                .expect("spawn prewarm worker")
        };
        Ok(RenderServer {
            addr,
            shared: Some(shared),
            event_loop: Some(event_loop),
            prewarm_worker: Some(prewarm_worker),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side stats without a socket round-trip (the `STATS` request
    /// returns exactly this).
    pub fn stats(&self) -> NetStats {
        let shared = self.shared.as_ref().expect("server is running");
        net_stats(shared)
    }

    /// How many times the event loop has woken since start — diagnostic
    /// for the no-sleep-polling guarantee: an idle server's count stays
    /// flat, because the loop blocks in `poll` with no timeout instead of
    /// waking on a timer. Reads the same `net.loop_wakeups` counter the
    /// `STATS` snapshot exports — one source of truth for both.
    pub fn loop_wakeups(&self) -> u64 {
        let shared = self.shared.as_ref().expect("server is running");
        shared.wakeups.get()
    }

    fn stop_event_loop(&mut self) {
        if let Some(shared) = &self.shared {
            // Hang up on the pre-warm worker first (dropping its sender
            // ends its recv loop) so it releases its `Arc<Shared>` before
            // shutdown() claims sole ownership.
            shared
                .prewarm_tx
                .lock()
                .expect("prewarm sender poisoned")
                .take();
            // SeqCst: the shutdown flag must be totally ordered with the
            // draining flag and epoch (all SeqCst) — the event loop reads
            // them as one coherent control state when deciding between
            // hard-shutdown drain and soft drain.
            shared.shutdown.store(true, Ordering::SeqCst);
            // An in-flight reply against a *paused* service would never
            // resolve and the drain below would hang: resume so admitted
            // work completes (shutdown always drains — same contract as
            // the in-process service).
            shared.sharded.resume();
            shared.notifier.waker.wake();
        }
        if let Some(prewarm_worker) = self.prewarm_worker.take() {
            let _ = prewarm_worker.join();
        }
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
    }

    /// Stop accepting, drain every connection's in-flight replies, shut
    /// the render service down and return its final merged report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop_event_loop();
        let shared = self.shared.take().expect("shutdown runs once");
        let shared = Arc::into_inner(shared).expect("event loop joined before service shutdown");
        shared.sharded.shutdown()
    }
}

impl Drop for RenderServer {
    fn drop(&mut self) {
        self.stop_event_loop();
        // Dropping `shared` drops the ShardedService, whose own Drop joins
        // the render workers.
    }
}

/// One coherent stats snapshot (heat and merged report derive from the
/// same per-shard reports, so shard counters sum to the merged counters
/// even under live traffic). The obs snapshot is the server's private
/// `net.*` registry merged with the process-global one (`serve.*`,
/// `volren.*`) — STATS v2 carries the union.
fn net_stats(shared: &Shared) -> NetStats {
    let (shards, merged) = shared.sharded.heat_and_merged();
    let mut obs = shared.obs.snapshot();
    obs.merge(&mgpu_obs::global().snapshot());
    NetStats {
        // SeqCst: a STATS reply must never echo an epoch older than a
        // drain/resume transition the same observer already saw — epoch
        // and the draining flag share one total order.
        epoch: shared.epoch.load(Ordering::SeqCst),
        merged,
        shards,
        obs,
    }
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

struct EventLoop {
    listener: TcpListener,
    waker_rx: TcpStream,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Handle bundle cloned into each accepted connection.
    conn_obs: ConnObs,
}

impl EventLoop {
    fn new(listener: TcpListener, waker_rx: TcpStream, shared: Arc<Shared>) -> EventLoop {
        let conn_obs = ConnObs::new(&shared.obs);
        EventLoop {
            listener,
            waker_rx,
            shared,
            conns: HashMap::new(),
            next_token: 1,
            conn_obs,
        }
    }

    fn run(mut self) {
        loop {
            self.apply_completions();

            // SeqCst: shutdown and draining form one control state;
            // reading them in the same total order their writers use means
            // a hard shutdown can never be mistaken for a soft drain
            // mid-transition.
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            // SeqCst: same total order as the shutdown read above.
            if !draining && self.shared.draining.load(Ordering::SeqCst) {
                // Soft drain: once no session holds anything — no in-flight
                // renders, no un-redeemed tickets — tell every session that
                // carried render work GOODBYE (request id 0, the
                // unsolicited-verdict channel) and close after the flush.
                // Pure control connections stay open and readable, so the
                // drained node can still answer STATS and be RESUMEd; the
                // GOODBYE on the data connections is the drained-node
                // signal the pool keys off.
                let empty = self.conns.values().all(|conn| conn.outstanding() == 0);
                if empty {
                    for conn in self.conns.values_mut() {
                        if conn.carried_work && !conn.closing {
                            conn.send(frame_bytes(opcode::GOODBYE, 0, &[]));
                            conn.closing = true;
                            self.shared.obs.counter(names::NET_GOODBYES).inc();
                        }
                    }
                }
            }
            if draining {
                // Graceful shutdown: stop reading, keep delivering. A
                // connection owing nothing more (no in-flight renders, no
                // parked redeems, empty write buffer) closes now;
                // un-redeemed tickets are abandoned (their frames still
                // land in the render cache server-side).
                self.conns.retain(|_, conn| !conn.drained());
                if self.conns.is_empty() {
                    return;
                }
            }

            // fds: [waker, listener?, conns...] with a parallel token list.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(readiness::PollFd::new(
                readiness::fd_of(&self.waker_rx),
                readiness::POLLIN,
            ));
            let listener_slot = if draining {
                None
            } else {
                fds.push(readiness::PollFd::new(
                    readiness::fd_of(&self.listener),
                    readiness::POLLIN,
                ));
                Some(1)
            };
            let mut tokens = Vec::with_capacity(self.conns.len());
            for (token, conn) in &self.conns {
                let mut events = 0i16;
                if !draining && !conn.closing {
                    events |= readiness::POLLIN;
                }
                if !conn.out.is_empty() {
                    events |= readiness::POLLOUT;
                }
                if events == 0 {
                    // Nothing to wait for on this socket right now (e.g. a
                    // draining conn waiting only on render completions) —
                    // still include it so peer resets are noticed.
                    events = readiness::POLLIN;
                }
                tokens.push((*token, fds.len()));
                fds.push(readiness::PollFd::new(
                    readiness::fd_of(&conn.stream),
                    events,
                ));
            }

            // Block until something happens: socket readiness, a fresh
            // connection, a completion's waker byte, or shutdown's wake.
            // No timeout — idle costs zero wakeups.
            if readiness::wait(&mut fds, -1).is_err() {
                return; // poll itself failed: the loop cannot continue
            }
            self.shared.wakeups.inc();

            if fds[0].readable() {
                self.drain_waker();
            }
            if let Some(slot) = listener_slot {
                if fds[slot].readable() {
                    self.accept_ready();
                }
            }
            for (token, slot) in tokens {
                let fd = fds[slot];
                if fd.failed() {
                    self.conns.remove(&token);
                    continue;
                }
                if fd.readable() {
                    self.service_reads(token, draining);
                }
                if fd.writable() {
                    self.flush_conn(token);
                }
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        while let Ok(n) = self.waker_rx.read(&mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(
                        token,
                        Conn::new(stream, self.shared.config.rate_limit, self.conn_obs.clone()),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Deliver completed renders into their connections' write buffers (or
    /// ticket tables). Completions for connections that died in the
    /// meantime are dropped — the frame is in the render cache anyway.
    fn apply_completions(&mut self) {
        for (token, frame) in self.shared.notifier.drain_replies() {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.send(frame);
            }
        }
        for done in self.shared.notifier.drain() {
            let Some(conn) = self.conns.get_mut(&done.conn) else {
                continue;
            };
            // The `reply` span covers frame encoding and write-buffer
            // enqueue (for tickets: parking the result); dropping `done`
            // at the end of this arm releases the last trace `Arc`, which
            // publishes the finished trace into the ring.
            let reply_start = Instant::now();
            match done.mode {
                Done::Render => {
                    conn.in_flight.remove(&done.request_id);
                    conn.send(frame_reply(done.request_id, &done.result));
                }
                Done::Ticket => {
                    if let Some(redeem_id) = conn.redeems.remove(&done.request_id) {
                        // A REDEEM was already parked on this ticket:
                        // answer it now, tagged with the redeem's own id.
                        conn.tickets.remove(&done.request_id);
                        conn.send(frame_reply(redeem_id, &done.result));
                    } else if let Some(state) = conn.tickets.get_mut(&done.request_id) {
                        *state = TicketState::Ready(done.result);
                    }
                }
            }
            done.trace.record_since("reply", reply_start);
        }
    }

    /// Read and dispatch whatever the socket has. During shutdown drain,
    /// reads are off — only completions and flushes run.
    fn service_reads(&mut self, token: u64, draining: bool) {
        if draining {
            return;
        }
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing {
                return;
            }
            match conn.read_step(self.shared.config.max_payload) {
                ReadStep::Frame(op, request_id, payload) => {
                    self.dispatch(token, op, request_id, &payload);
                }
                ReadStep::NotYet => return,
                ReadStep::Gone => {
                    // Peer vanished (cleanly or mid-frame): nothing to
                    // answer, in-flight completions get dropped on arrival.
                    self.conns.remove(&token);
                    return;
                }
                ReadStep::Poisoned(err) => {
                    // Framing is lost — resyncing an unframed byte stream
                    // is guesswork. Answer typed, flush, close. A version
                    // mismatch gets the dedicated UNSUPPORTED_VERSION
                    // reply (the v2 migration path); everything else the
                    // BAD_REQUEST echo.
                    let reply = match err {
                        WireError::UnsupportedVersion { got, want } => frame_bytes(
                            opcode::UNSUPPORTED_VERSION,
                            0,
                            &wire::encode_unsupported_version(got, want),
                        ),
                        other => {
                            frame_bytes(opcode::BAD_REQUEST, 0, &encode_message(&other.to_string()))
                        }
                    };
                    conn.send(reply);
                    conn.closing = true;
                    self.flush_conn(token);
                    return;
                }
            }
        }
    }

    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.flush().is_err() || (conn.closing && conn.out.is_empty()) {
            self.conns.remove(&token);
        }
    }

    /// Serve one complete request frame: every reply is queued to the
    /// connection's write buffer, tagged with the request's id.
    fn dispatch(&mut self, token: u64, op: u8, request_id: u64, payload: &[u8]) {
        let shared = Arc::clone(&self.shared);
        // Drain-state replies report what the whole node still owes, which
        // must be summed before the per-connection borrow below.
        let total_outstanding: u64 = if op == opcode::DRAIN || op == opcode::RESUME {
            self.conns.values().map(|c| c.outstanding() as u64).sum()
        } else {
            0
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // A draining node refuses *new* work — typed, per-request, and the
        // connection survives (in-flight replies and parked redeems still
        // flow). The epoch tells the refused client how stale it is.
        // SeqCst (flag and epoch): a DRAINING refusal must carry an epoch
        // at least as new as the DRAIN that set the flag — both sides of
        // the refusal read one total order.
        if (op == opcode::RENDER || op == opcode::SUBMIT) && shared.draining.load(Ordering::SeqCst)
        {
            shared.obs.counter(names::NET_DRAIN_REFUSED).inc();
            conn.send(frame_bytes(
                opcode::DRAINING,
                request_id,
                // SeqCst: ordered after the draining flag read above.
                &encode_epoch(shared.epoch.load(Ordering::SeqCst)),
            ));
            self.flush_conn(token);
            return;
        }
        match op {
            opcode::PING => match decode_ping(payload) {
                Ok(echo) => {
                    let shards = shared.sharded.shard_count() as u32;
                    conn.send(frame_bytes(
                        opcode::PONG,
                        request_id,
                        &encode_pong(echo, shards),
                    ));
                }
                Err(err) => bad_request(conn, request_id, &err),
            },
            opcode::STATS => {
                let stats = net_stats(&shared);
                conn.send(frame_bytes(
                    opcode::STATS_REPORT,
                    request_id,
                    &encode_stats(&stats),
                ));
            }
            opcode::TRACES => match wire::decode_traces_request(payload) {
                Ok(max) => {
                    let traces = mgpu_obs::ring().recent(max as usize);
                    conn.send(frame_bytes(
                        opcode::TRACES_REPLY,
                        request_id,
                        &wire::encode_traces(&traces),
                    ));
                }
                Err(err) => bad_request(conn, request_id, &err),
            },
            opcode::RENDER => {
                let admit_start = Instant::now();
                if let Some(request) = admit(&shared, conn, token, request_id, payload) {
                    // The trace id IS the wire request id: a client can
                    // correlate a TRACES row with its own request.
                    let trace = Trace::start(request_id);
                    trace.record_since("admit", admit_start);
                    let notifier = Arc::clone(&shared.notifier);
                    let reply_trace = Arc::clone(&trace);
                    let submitted =
                        shared
                            .sharded
                            .try_submit_traced(request, trace, move |result| {
                                notifier.complete(Completion {
                                    conn: token,
                                    request_id,
                                    mode: Done::Render,
                                    result,
                                    trace: reply_trace,
                                })
                            });
                    match submitted {
                        Ok(()) => {
                            conn.in_flight.insert(request_id);
                            conn.carried_work = true;
                        }
                        Err(admission) => conn.send(frame_bytes(
                            opcode::REJECTED,
                            request_id,
                            &encode_rejected(&admission),
                        )),
                    }
                }
            }
            opcode::SUBMIT => {
                let admit_start = Instant::now();
                if let Some(request) = admit(&shared, conn, token, request_id, payload) {
                    let trace = Trace::start(request_id);
                    trace.record_since("admit", admit_start);
                    let notifier = Arc::clone(&shared.notifier);
                    let reply_trace = Arc::clone(&trace);
                    let submitted =
                        shared
                            .sharded
                            .try_submit_traced(request, trace, move |result| {
                                notifier.complete(Completion {
                                    conn: token,
                                    request_id,
                                    mode: Done::Ticket,
                                    result,
                                    trace: reply_trace,
                                })
                            });
                    match submitted {
                        Ok(()) => {
                            conn.tickets.insert(request_id, TicketState::Pending);
                            conn.carried_work = true;
                            conn.send(frame_bytes(
                                opcode::SUBMITTED,
                                request_id,
                                &encode_ticket(request_id),
                            ));
                        }
                        Err(admission) => conn.send(frame_bytes(
                            opcode::REJECTED,
                            request_id,
                            &encode_rejected(&admission),
                        )),
                    }
                }
            }
            opcode::REDEEM => match decode_ticket(payload) {
                Ok(ticket_id) => match conn.tickets.get_mut(&ticket_id) {
                    Some(TicketState::Ready(_)) => {
                        let Some(TicketState::Ready(result)) = conn.tickets.remove(&ticket_id)
                        else {
                            unreachable!("checked Ready above");
                        };
                        conn.send(frame_reply(request_id, &result));
                    }
                    Some(TicketState::Pending) => match conn.redeems.entry(ticket_id) {
                        // Park the redeem: the completion answers it.
                        Entry::Vacant(slot) => {
                            slot.insert(request_id);
                        }
                        Entry::Occupied(_) => {
                            let err = WireError::Malformed(format!(
                                "ticket {ticket_id} is already being redeemed"
                            ));
                            bad_request(conn, request_id, &err);
                        }
                    },
                    None => {
                        let err = WireError::Malformed(format!("unknown ticket {ticket_id}"));
                        bad_request(conn, request_id, &err);
                    }
                },
                Err(err) => bad_request(conn, request_id, &err),
            },
            opcode::DRAIN | opcode::RESUME => match decode_epoch(payload) {
                Ok(epoch) => {
                    // SeqCst: the epoch bump must be ordered *before* the
                    // draining-flag flip in the one total order every
                    // reader (STATS, refusals, the event loop) uses — a
                    // refusal observed after this swap always carries at
                    // least this epoch.
                    shared.epoch.fetch_max(epoch, Ordering::SeqCst);
                    let draining = op == opcode::DRAIN;
                    // SeqCst: see the fetch_max above — flag and epoch
                    // share one order.
                    let was = shared.draining.swap(draining, Ordering::SeqCst);
                    // Idempotent: repeating the current state is a no-op
                    // (and not a counted transition).
                    if draining && !was {
                        shared.obs.counter(names::NET_DRAINS).inc();
                    } else if !draining && was {
                        shared.obs.counter(names::NET_RESUMES).inc();
                    }
                    conn.send(frame_bytes(
                        opcode::DRAIN_STATE,
                        request_id,
                        &encode_drain_state(DrainState {
                            draining,
                            outstanding: total_outstanding,
                            // SeqCst: the reply must echo an epoch no older
                            // than the bump this same request applied.
                            epoch: shared.epoch.load(Ordering::SeqCst),
                        }),
                    ));
                }
                Err(err) => bad_request(conn, request_id, &err),
            },
            opcode::PREWARM => match decode_prewarm(payload) {
                Ok((epoch, request)) => {
                    // SeqCst: prewarms carry the controller's epoch; the
                    // bump joins the same total order as drain/resume so a
                    // later STATS echo can never regress.
                    shared.epoch.fetch_max(epoch, Ordering::SeqCst);
                    match request.to_parts() {
                        Ok((spec, volume, scene, config, priority)) => {
                            let job = PrewarmJob {
                                conn: token,
                                request_id,
                                request: SceneRequest {
                                    spec,
                                    volume,
                                    scene,
                                    config,
                                    priority,
                                },
                            };
                            let tx = shared
                                .prewarm_tx
                                .lock()
                                .expect("prewarm sender poisoned")
                                .clone();
                            // The worker answers PREWARMED when the plan is
                            // built; with the worker gone (shutdown racing
                            // in) answer built=false so the peer never
                            // hangs.
                            if tx.map(|tx| tx.send(job).is_ok()) != Some(true) {
                                conn.send(frame_bytes(
                                    opcode::PREWARMED,
                                    request_id,
                                    &encode_prewarmed(0, false),
                                ));
                            }
                        }
                        Err(err) => bad_request(conn, request_id, &err),
                    }
                }
                Err(err) => bad_request(conn, request_id, &err),
            },
            other => {
                // A peer dispatching unknown requests is not speaking this
                // protocol: reply typed, then close.
                bad_request(conn, request_id, &WireError::UnknownOpcode(other));
                conn.closing = true;
            }
        }
        // Opportunistic flush: most replies fit the socket buffer and go
        // out without waiting for the next poll round.
        self.flush_conn(token);
    }
}

/// The server door for `RENDER`/`SUBMIT`: decode, validate, bound the
/// session's outstanding requests, reject duplicate request ids, then
/// rate-limit — each refusal answered inline, tagged with the request id.
/// Returns the request only once it is clear to submit.
fn admit(
    shared: &Shared,
    conn: &mut Conn,
    _token: u64,
    request_id: u64,
    payload: &[u8],
) -> Option<SceneRequest> {
    // Multiplexing invariant first: an id may name only one outstanding
    // request at a time, or replies would be unattributable.
    if conn.id_in_use(request_id) {
        let err = WireError::Malformed(format!("duplicate request id {request_id}"));
        bad_request(conn, request_id, &err);
        return None;
    }
    // Bound outstanding state BEFORE admitting: every in-flight render or
    // parked ticket eventually pins a rendered frame, so a client that
    // never consumes replies must not grow server memory without limit.
    if conn.outstanding() >= shared.config.max_tickets_per_session {
        conn.send(frame_bytes(
            opcode::TICKETS_FULL,
            request_id,
            &wire::encode_tickets_full(
                conn.outstanding() as u64,
                shared.config.max_tickets_per_session as u64,
            ),
        ));
        return None;
    }
    let request = match decode_request(payload) {
        Ok(request) => request,
        Err(err) => {
            bad_request(conn, request_id, &err);
            return None;
        }
    };
    // Validate fully BEFORE spending a rate-limit token: a malformed
    // request never renders, so it must not burn the session's budget.
    let (spec, volume, scene, config, priority) = match request.to_parts() {
        Ok(parts) => parts,
        Err(err) => {
            bad_request(conn, request_id, &err);
            return None;
        }
    };
    if let Some(bucket) = &mut conn.bucket {
        if let Err(retry_after) = bucket.try_take() {
            shared.throttled.inc();
            conn.send(frame_bytes(
                opcode::THROTTLED,
                request_id,
                &encode_throttled(retry_after),
            ));
            return None;
        }
    }
    Some(SceneRequest {
        spec,
        volume,
        scene,
        config,
        priority,
    })
}

/// Redeem a completed render into a `FRAME` or `FAILED` reply frame.
fn frame_reply(request_id: u64, result: &FrameResult) -> Vec<u8> {
    match result {
        Ok(frame) => {
            // Cache hits re-deliver a previously rendered frame: their
            // simulated frame time is zero (same convention as the
            // in-process `BackendFrame`), not the original render's time.
            let sim_nanos = if frame.from_cache {
                0
            } else {
                frame.report.runtime().nanos()
            };
            frame_bytes(
                opcode::FRAME,
                request_id,
                &encode_frame(&frame.image, frame.from_cache, sim_nanos),
            )
        }
        Err(err) => frame_bytes(opcode::FAILED, request_id, &encode_message(err.message())),
    }
}

/// Echo a payload-level error; the connection survives.
fn bad_request(conn: &mut Conn, request_id: u64, err: &WireError) {
    conn.send(frame_bytes(
        opcode::BAD_REQUEST,
        request_id,
        &encode_message(&err.to_string()),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// THE sleep-polling regression test: an idle server (one connected,
    /// silent client) must cost ~zero event-loop wakeups per second. The
    /// old accept loop woke 500×/sec on its 2 ms reap timer; the readiness
    /// loop blocks in poll with no timeout at all.
    #[test]
    fn idle_server_does_not_wake() {
        let server = RenderServer::start(ServerConfig {
            shards: 1,
            service: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("bind");
        // A connected-but-silent session: the fd sits in the poll set.
        let _idle = TcpStream::connect(server.addr()).expect("connect");
        // Let the accept + registration churn settle.
        std::thread::sleep(Duration::from_millis(100));
        let before = server.loop_wakeups();
        std::thread::sleep(Duration::from_millis(500));
        let woke = server.loop_wakeups() - before;
        // 500 ms of idle: the 2 ms sleep-poll design would log ~250 here.
        // Allow a little slack for stray loopback events.
        assert!(woke <= 5, "idle event loop woke {woke} times in 500 ms");
        server.shutdown();
    }
}
