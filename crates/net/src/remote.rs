//! [`RemoteBackend`]: one [`crate::RenderServer`] behind the
//! [`RenderBackend`] trait — the adapter that lets code written against the
//! in-process service contract run unchanged against a TCP render node.
//!
//! The raw [`RenderClient`] mirrors the wire protocol (its own
//! `ClientError`, `NetSceneRequest`); this wrapper restores the service
//! contract: [`mgpu_serve::SceneRequest`] in, [`BackendFrame`] out, and
//! every failure folded into the shared [`BackendError`] vocabulary —
//! [`ClientError::Throttled`] keeps its exact `retry_after`,
//! [`ClientError::Admission`] restores the same `AdmissionError` the
//! server's queue produced. The pipelined client is already `&self` and
//! thread-safe, so concurrent backend calls multiplex on the one
//! connection instead of queueing behind a mutex.

use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

use mgpu_serve::{BackendError, BackendFrame, RenderBackend, SceneRequest, ServiceReport};

use crate::client::{ClientConfig, ClientError, NetTicket, RenderClient};
use crate::wire::{NetFrame, NetSceneRequest};

/// Fold a wire-level failure into the shared backend vocabulary. Semantic
/// errors cross losslessly; transport and protocol failures collapse into
/// [`BackendError::Transport`] (the caller can't do anything more specific
/// with them than retry elsewhere).
pub(crate) fn backend_error(err: ClientError) -> BackendError {
    match err {
        ClientError::Admission(err) => BackendError::Admission(err),
        ClientError::Throttled { retry_after } => BackendError::Throttled { retry_after },
        ClientError::TicketsFull { outstanding, limit } => {
            BackendError::TicketsFull { outstanding, limit }
        }
        ClientError::Render(err) => BackendError::Render(err),
        ClientError::Wire(err) => BackendError::Transport(err.to_string()),
        ClientError::Draining { epoch } => BackendError::Transport(format!(
            "node is draining (directory epoch {epoch}): route elsewhere"
        )),
        ClientError::Goodbye => {
            BackendError::Transport("node drained and said goodbye".to_string())
        }
        ClientError::Protocol(what) => BackendError::Transport(what),
    }
}

/// Encode an in-process request for the wire, or explain why it can't go.
pub(crate) fn portable(request: &SceneRequest) -> Result<NetSceneRequest, BackendError> {
    NetSceneRequest::from_request(request).map_err(BackendError::Unsupported)
}

pub(crate) fn backend_frame(frame: NetFrame) -> BackendFrame {
    BackendFrame {
        image: Arc::new(frame.image),
        from_cache: frame.from_cache,
        sim_frame: frame.sim_frame,
        // The wire ships the simulated frame time, not the full report.
        report: None,
    }
}

/// How long blocking backend calls sleep between retries when the server
/// sheds for admission (the v3 server answers admission inline and never
/// parks a request, so the client polls — cheap against a loopback or LAN
/// server).
const SUBMIT_RETRY: Duration = Duration::from_millis(2);

/// One render server as a [`RenderBackend`]. Holds a single pipelined
/// connection — concurrent calls from many threads share it, each tracked
/// by its own `request_id`; see `NodePool` for many servers with failover
/// and retry budgets.
pub struct RemoteBackend {
    client: RenderClient,
}

impl RemoteBackend {
    /// Connect with default transport settings (no timeouts).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteBackend, ClientError> {
        RemoteBackend::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit connect/read timeouts and payload bound.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<RemoteBackend, ClientError> {
        Ok(RemoteBackend {
            client: RenderClient::connect_with(addr, config)?,
        })
    }

    /// Wrap an already-connected client.
    pub fn from_client(client: RenderClient) -> RemoteBackend {
        RemoteBackend { client }
    }

    /// Shards behind the server (learned during the handshake).
    pub fn shards(&self) -> u32 {
        self.client.shards()
    }

    /// The server's obs snapshot (STATS v2): merged `net.*` / `serve.*` /
    /// `volren.*` metrics, mergeable across nodes.
    pub fn obs_snapshot(&self) -> Result<mgpu_obs::Snapshot, ClientError> {
        self.client.stats().map(|stats| stats.obs)
    }

    /// The server's most recent completed request traces (newest first).
    pub fn traces(&self, max: u32) -> Result<Vec<mgpu_obs::CompletedTrace>, ClientError> {
        self.client.traces(max)
    }
}

impl RenderBackend for RemoteBackend {
    type Ticket = NetTicket;

    /// Blocking submit: mirrors the in-process contract by waiting out the
    /// server's admission bound (polling) and its rate-limiter door
    /// (sleeping exactly the server's `retry_after`). A full per-session
    /// ticket table is NOT waited out — only this caller's own redemptions
    /// can free tickets, so polling would livelock a single-threaded
    /// client; [`BackendError::TicketsFull`] is returned instead.
    fn submit(&self, request: SceneRequest) -> Result<NetTicket, BackendError> {
        let net = portable(&request)?;
        loop {
            match self.client.submit(&net) {
                Ok(ticket) => return Ok(ticket),
                Err(ClientError::Admission(_)) => std::thread::sleep(SUBMIT_RETRY),
                Err(ClientError::Throttled { retry_after }) => std::thread::sleep(retry_after),
                Err(err) => return Err(backend_error(err)),
            }
        }
    }

    fn try_submit(&self, request: SceneRequest) -> Result<NetTicket, BackendError> {
        let net = portable(&request)?;
        self.client.submit(&net).map_err(backend_error)
    }

    fn redeem(&self, ticket: NetTicket) -> Result<BackendFrame, BackendError> {
        self.client
            .redeem(ticket)
            .map(backend_frame)
            .map_err(backend_error)
    }

    /// Blocking render: under wire v3 the server answers admission and
    /// throttling inline (it never blocks the connection), so the blocking
    /// contract is restored client-side — admission sheds are polled out
    /// like [`RemoteBackend::submit`] and the rate-limiter door sleeps
    /// exactly the server's `retry_after`.
    fn render(&self, request: SceneRequest) -> Result<BackendFrame, BackendError> {
        let net = portable(&request)?;
        loop {
            match self.client.render(&net) {
                Ok(frame) => return Ok(backend_frame(frame)),
                Err(ClientError::Admission(_)) => std::thread::sleep(SUBMIT_RETRY),
                Err(ClientError::Throttled { retry_after }) => std::thread::sleep(retry_after),
                Err(err) => return Err(backend_error(err)),
            }
        }
    }

    fn report(&self) -> Result<ServiceReport, BackendError> {
        self.client
            .stats()
            .map(|stats| stats.merged)
            .map_err(backend_error)
    }

    /// Disconnect, returning the server's latest merged report
    /// (best-effort: an unreachable server yields an empty report). The
    /// server itself keeps running for its other clients.
    fn shutdown(self) -> ServiceReport {
        self.client
            .stats()
            .map(|stats| stats.merged)
            .unwrap_or_else(|_| ServiceReport::merged([]))
    }
}
