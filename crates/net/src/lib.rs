//! # mgpu-net — the render service on the wire
//!
//! Everything below `mgpu-serve` assumes the caller shares an address
//! space with the service. This crate removes that assumption — the
//! cross-*process* sharding rung of the ROADMAP, after the cross-batch and
//! cross-shard rungs of the previous PRs, and the shape of the distributed
//! GPU render frameworks the paper's cluster implies (Hassan et al.,
//! arXiv:1205.0282): render nodes behind a network front-end.
//!
//! ```text
//! RenderClient ══TCP══► RenderServer event loop ──► per-session TokenBucket
//!   many in-flight ids     poll(2) readiness,           │ (before admission)
//!   per connection         all conns in one loop        ▼
//!         ▲                       ▲             ShardedService (N shards)
//!         └──replies, any order───┴─completion──┘ rendezvous by BatchKey
//!                                   queue + waker      │
//!                                                      ▼
//!                                        queue → workers → plan/frame caches
//! ```
//!
//! * **Wire format** — [`wire`]: versioned, length-prefixed frames over
//!   `std::net` TCP; hand-rolled little-endian encoding (no external
//!   dependencies); every decode failure is a typed [`WireError`], never a
//!   panic. Since **v3** every request carries a client-chosen 8-byte
//!   `request_id` echoed by its reply, so one connection multiplexes many
//!   in-flight renders that complete out of order; a v2 peer gets a typed
//!   `UNSUPPORTED_VERSION` reply instead of a silent close. Floats travel
//!   by bit pattern, so a frame fetched through the socket is
//!   **bit-identical** to a direct `mgpu_volren::render` call — the
//!   service's determinism guarantee survives the network hop.
//! * **Server** — [`server`]: a [`RenderServer`] owning a
//!   [`mgpu_serve::ShardedService`] behind one event-driven readiness
//!   loop: non-blocking sockets, per-connection partial-frame state
//!   machines and write queues, completions delivered by render workers
//!   through a queue + loopback waker, zero wakeups while idle, graceful
//!   drain on shutdown; poisoned connections contained per session.
//! * **Client** — [`client`]: a pipelined [`RenderClient`] —
//!   [`RenderClient::begin_render`] issues without blocking and returns a
//!   [`PendingRender`] collected later by [`RenderClient::finish_render`],
//!   blocking [`RenderClient::render`] mirroring `submit`, fire-and-forget
//!   [`RenderClient::submit`] mirroring `try_submit` with [`NetTicket`]
//!   redemption, all sharing one connection from any number of threads,
//!   and typed errors that round-trip [`mgpu_serve::AdmissionError`] /
//!   [`mgpu_serve::FrameError`] across the socket.
//! * **Rate limiting** — [`ratelimit`]: a per-session token bucket at the
//!   server door, ahead of admission control; throttled requests carry an
//!   exact retry-after.
//! * **Heat + observability** — [`heat`]: the `STATS` request (v2)
//!   returns the merged [`mgpu_serve::ServiceReport`], per-shard
//!   [`mgpu_serve::ShardHeat`] (queue depth, frames/sec, cache occupancy)
//!   *and* the server's [`mgpu_obs::Snapshot`] — `net.*` wire metrics
//!   merged with the global `serve.*`/`volren.*` registry, in a canonical
//!   sorted-key wire form that re-encodes bit-exactly. The `TRACES`
//!   request returns the newest completed request traces (stage spans
//!   `admit → queue → plan → stage → kernel → composite → render →
//!   reply`, seeded from the wire `request_id`); `NodePool::obs_snapshot`
//!   fetches and exactly merges every reachable node's snapshot.
//! * **Backends** — [`remote::RemoteBackend`] puts one server behind the
//!   [`mgpu_serve::RenderBackend`] trait; [`pool::NodePool`] puts N servers
//!   behind it with a rendezvous [`pool::Directory`] (the same placement
//!   policy `ShardedService` uses in-process), one pipelined connection
//!   per node carrying all of that node's in-flight work, a typed
//!   [`pool::RetryBudget`] that honors server `retry_after`, and failover
//!   to the next-ranked node on connection loss that re-issues only the
//!   lost request ids.
//! * **Elastic membership** — since **v4** the directory is *live*:
//!   nodes join ([`NodePool::add_node`]), drain
//!   ([`NodePool::drain_node`]: the node answers everything it owes,
//!   refuses new work with a typed `DRAINING` reply, and says `GOODBYE`
//!   when empty) and leave ([`NodePool::remove_node`]) under traffic;
//!   every placement change bumps an **epoch** the nodes echo in STATS,
//!   so stale routing is observable. Pool tickets are backed by a
//!   pending-request table: a ticket whose issuing connection died is
//!   **handed off** — re-rendered bit-identically on a survivor — so a
//!   drain or crash loses zero admitted frames. [`rebalance`] adds the
//!   control loop: heat-driven key migration ([`NodePool::migrate`]) with
//!   `PREWARM`-before-cutover so the destination's plan cache is warm
//!   before the first migrated frame arrives.

pub mod client;
pub mod heat;
pub mod pool;
pub mod ratelimit;
pub mod rebalance;
pub mod remote;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, NetTicket, PendingRender, RenderClient};
pub use heat::NetStats;
pub use pool::{
    Directory, DirectoryError, NodeError, NodePool, NodePoolConfig, PoolConfigError, PoolTicket,
    RetryBudget,
};
pub use ratelimit::{RateLimitConfig, TokenBucket};
pub use rebalance::{
    rebalance_once, MigrationReport, RebalanceConfig, RebalanceOutcome, Rebalancer,
};
pub use remote::RemoteBackend;
pub use server::{RenderServer, ServerConfig};
pub use wire::{
    CameraSpec, DrainState, NetFrame, NetSceneRequest, TransferSpec, VolumeSpec, WireError,
};
