//! # mgpu-net — the render service on the wire
//!
//! Everything below `mgpu-serve` assumes the caller shares an address
//! space with the service. This crate removes that assumption — the
//! cross-*process* sharding rung of the ROADMAP, after the cross-batch and
//! cross-shard rungs of the previous PRs, and the shape of the distributed
//! GPU render frameworks the paper's cluster implies (Hassan et al.,
//! arXiv:1205.0282): render nodes behind a network front-end.
//!
//! ```text
//! RenderClient ──TCP──► RenderServer ──► per-session TokenBucket
//!   render/submit/redeem/stats              │ (before admission)
//!                                           ▼
//!                                    ShardedService (N shards)
//!                                           │ rendezvous by BatchKey
//!                                           ▼
//!                             queue → workers → plan/frame caches
//! ```
//!
//! * **Wire format** — [`wire`]: versioned, length-prefixed frames over
//!   `std::net` TCP; hand-rolled little-endian encoding (no external
//!   dependencies); every decode failure is a typed [`WireError`], never a
//!   panic. Floats travel by bit pattern, so a frame fetched through the
//!   socket is **bit-identical** to a direct `mgpu_volren::render` call —
//!   the service's determinism guarantee survives the network hop.
//! * **Server** — [`server`]: a [`RenderServer`] owning a
//!   [`mgpu_serve::ShardedService`]; thread-per-connection, strict
//!   request/response, poisoned connections contained per session.
//! * **Client** — [`client`]: blocking [`RenderClient::render`] mirroring
//!   `submit`, fire-and-forget [`RenderClient::submit`] mirroring
//!   `try_submit` with [`NetTicket`] redemption, and typed errors that
//!   round-trip [`mgpu_serve::AdmissionError`] / [`mgpu_serve::FrameError`]
//!   across the socket.
//! * **Rate limiting** — [`ratelimit`]: a per-session token bucket at the
//!   server door, ahead of admission control; throttled requests carry an
//!   exact retry-after.
//! * **Heat** — [`heat`]: the `STATS` request returns the merged
//!   [`mgpu_serve::ServiceReport`] plus per-shard
//!   [`mgpu_serve::ShardHeat`] (queue depth, frames/sec, cache occupancy)
//!   — the observability a shard rebalancer builds on.
//! * **Backends** — [`remote::RemoteBackend`] puts one server behind the
//!   [`mgpu_serve::RenderBackend`] trait; [`pool::NodePool`] puts N servers
//!   behind it with a rendezvous [`pool::Directory`] (the same placement
//!   policy `ShardedService` uses in-process), per-node connection reuse,
//!   a typed [`pool::RetryBudget`] that honors server `retry_after`, and
//!   failover to the next-ranked node on connection loss.

pub mod client;
pub mod heat;
pub mod pool;
pub mod ratelimit;
pub mod remote;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, NetTicket, RenderClient};
pub use heat::NetStats;
pub use pool::{Directory, NodePool, NodePoolConfig, PoolTicket, RetryBudget};
pub use ratelimit::{RateLimitConfig, TokenBucket};
pub use remote::RemoteBackend;
pub use server::{RenderServer, ServerConfig};
pub use wire::{CameraSpec, NetFrame, NetSceneRequest, TransferSpec, VolumeSpec, WireError};
