//! Per-session token-bucket rate limiting, enforced at the server door.
//!
//! Every connection (one connection = one client session) owns its own
//! [`TokenBucket`]: a client hammering the service only drains its *own*
//! bucket, so a well-behaved session next to it keeps its full rate — the
//! fairness property the proptests pin down. The limiter sits *before*
//! admission control: a throttled request never touches the queue, never
//! counts as an admission rejection, and costs the server one branch.
//!
//! Throttled requests get an explicit retry-after duration (how long until
//! one token has refilled), so clients can back off precisely instead of
//! busy-retrying.

use std::time::{Duration, Instant};

/// Rate-limit knobs for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Steady-state render submissions per second.
    pub frames_per_sec: f64,
    /// Burst allowance: a fresh session may submit this many frames
    /// back-to-back before the steady rate applies.
    pub burst: u32,
}

impl RateLimitConfig {
    pub fn new(frames_per_sec: f64, burst: u32) -> RateLimitConfig {
        assert!(
            frames_per_sec > 0.0 && frames_per_sec.is_finite(),
            "rate must be positive and finite, got {frames_per_sec}"
        );
        assert!(burst >= 1, "burst of 0 would reject every request");
        RateLimitConfig {
            frames_per_sec,
            burst,
        }
    }
}

/// A classic token bucket: `burst` capacity, refilled continuously at
/// `frames_per_sec`. Time is passed in explicitly (`try_take_at`) so the
/// refill math is deterministic under test; the server uses [`TokenBucket::try_take`].
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    fill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket (a new session gets its whole burst immediately).
    pub fn new(config: RateLimitConfig, now: Instant) -> TokenBucket {
        TokenBucket {
            capacity: config.burst as f64,
            tokens: config.burst as f64,
            fill_per_sec: config.frames_per_sec,
            last: now,
        }
    }

    /// Tokens available at `now` (refill applied lazily on the next take).
    pub fn available_at(&self, now: Instant) -> f64 {
        let refilled = now.saturating_duration_since(self.last).as_secs_f64() * self.fill_per_sec;
        (self.tokens + refilled).min(self.capacity)
    }

    /// Spend one token, or report how long until one is available. The
    /// returned duration is rounded *up* (with a microsecond of slack, far
    /// above f64 rounding error), so a caller that retries alone after
    /// exactly this wait always gets a token; under contention a retry may
    /// race other takers and be throttled again.
    pub fn try_take_at(&mut self, now: Instant) -> Result<(), Duration> {
        self.tokens = self.available_at(now);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let secs = (1.0 - self.tokens) / self.fill_per_sec;
            Err(Duration::from_nanos((secs * 1e9).ceil() as u64 + 1_000))
        }
    }

    /// Spend one token against the real clock.
    pub fn try_take(&mut self) -> Result<(), Duration> {
        self.try_take_at(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn burst_then_steady_rate() {
        let now = t0();
        let mut b = TokenBucket::new(RateLimitConfig::new(10.0, 3), now);
        // The full burst is available immediately…
        for _ in 0..3 {
            assert!(b.try_take_at(now).is_ok());
        }
        // …then the bucket is dry and the retry-after is 1/rate (rounded
        // up with the µs of anti-rounding slack).
        let retry = b.try_take_at(now).unwrap_err();
        assert!(retry.as_secs_f64() >= 0.1, "{retry:?}");
        assert!((retry.as_secs_f64() - 0.1).abs() < 1e-4, "{retry:?}");
        // After exactly one refill interval a single token is back.
        let later = now + Duration::from_millis(100);
        assert!(b.try_take_at(later).is_ok());
        assert!(b.try_take_at(later).is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let now = t0();
        let mut b = TokenBucket::new(RateLimitConfig::new(100.0, 2), now);
        assert!(b.try_take_at(now).is_ok());
        assert!(b.try_take_at(now).is_ok());
        // An hour of idling refills to the burst cap, not beyond.
        let later = now + Duration::from_secs(3600);
        assert_eq!(b.available_at(later), 2.0);
        assert!(b.try_take_at(later).is_ok());
        assert!(b.try_take_at(later).is_ok());
        assert!(b.try_take_at(later).is_err());
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let now = t0() + Duration::from_secs(10);
        let mut b = TokenBucket::new(RateLimitConfig::new(1.0, 1), now);
        assert!(b.try_take_at(now).is_ok());
        // An earlier timestamp refills nothing and must not panic.
        let earlier = now - Duration::from_secs(5);
        assert!(b.try_take_at(earlier).is_err());
    }

    /// Waiting exactly the advertised duration always yields a token —
    /// including at awkward non-dyadic rates where the naive computation
    /// leaves the bucket at 0.99999999… through float rounding.
    #[test]
    fn retry_after_is_sufficient() {
        for rate in [7.0, 0.147, 3.9999, 1.0 / 3.0, 123.456] {
            let now = t0();
            let mut b = TokenBucket::new(RateLimitConfig::new(rate, 1), now);
            assert!(b.try_take_at(now).is_ok());
            let mut at = now;
            for _ in 0..50 {
                let retry = b.try_take_at(at).unwrap_err();
                at += retry;
                assert!(
                    b.try_take_at(at).is_ok(),
                    "advertised retry-after must suffice (rate {rate})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_is_rejected() {
        RateLimitConfig::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "burst of 0")]
    fn zero_burst_is_rejected() {
        RateLimitConfig::new(1.0, 0);
    }
}
