//! The wire format: a versioned, length-prefixed binary framing plus the
//! encode/decode of every request and response payload. Hand-rolled over
//! `std` only — the build environment has no registry access, and the
//! format is small enough that explicit little-endian field writes are
//! clearer than a serializer anyway.
//!
//! ## Framing (v3)
//!
//! Every message (either direction) is one frame:
//!
//! | field      | bytes | value                                      |
//! |------------|-------|--------------------------------------------|
//! | magic      | 4     | the bytes `MGPU` (LE u32 `0x5550474D`)     |
//! | version    | 2     | [`VERSION`]                                |
//! | opcode     | 1     | [`opcode`] constant                        |
//! | length     | 4     | payload bytes that follow the request id   |
//! | request_id | 8     | correlates a response with its request     |
//! | payload    | n     | opcode-specific encoding                   |
//!
//! The `request_id` (new in v3) is chosen by the client, must be unique
//! among that connection's outstanding requests, and is echoed verbatim on
//! every response to the request — which is what lets one connection carry
//! many in-flight renders and redeem the replies out of order. Requests the
//! server originates no reply for do not exist; unsolicited server frames
//! ([`opcode::UNSUPPORTED_VERSION`], [`opcode::BAD_REQUEST`] for unframable
//! input) carry request id 0.
//!
//! Integers and float bit patterns are little-endian. Floats travel as
//! [`f32::to_bits`]/[`f64::to_bits`], so decoding reconstructs the exact
//! input — the bit-identity guarantee of the render service extends across
//! the socket.
//!
//! Every decode error is a typed [`WireError`]; malformed and truncated
//! input can never panic the peer (a property test drives arbitrary
//! corruption through [`decode_request`]/[`read_frame`]).
//!
//! ### Migration from v2
//!
//! The 11-byte header layout is unchanged, so a v2 peer can always frame a
//! v3 header (and vice versa) far enough to read the version field and fail
//! with a typed [`WireError::UnsupportedVersion`]. The server goes one step
//! further: a request frame carrying any version other than [`VERSION`] is
//! answered with a typed [`opcode::UNSUPPORTED_VERSION`] reply (payload:
//! `got`, `want` as u16s, see [`encode_unsupported_version`]) before the
//! connection closes cleanly — a v2 client sees an orderly refusal instead
//! of a silent disconnect.

use std::io::{Read, Write};
use std::time::Duration;

use mgpu_cluster::ClusterSpec;
use mgpu_mapreduce::{Assignment, TraceOptions};
use mgpu_serve::{AdmissionError, Priority};
use mgpu_voldata::{Dataset, Volume};
use mgpu_volren::camera::Scene;
use mgpu_volren::config::{Compositor, PartitionStrategy, RenderConfig, Residency};
use mgpu_volren::transfer::ControlPoint;
use mgpu_volren::TransferFunction;

/// Frame magic: the ASCII bytes `MGPU` as a little-endian `u32`
/// (`0x5550474D`) — a packet capture shows the literal characters "MGPU"
/// at every frame boundary.
pub const MAGIC: u32 = u32::from_le_bytes(*b"MGPU");
/// Protocol version this build speaks. Bumped on any incompatible change;
/// the server answers other versions with a typed
/// [`opcode::UNSUPPORTED_VERSION`] reply (and decoders fail with
/// [`WireError::UnsupportedVersion`]). v2 replaced the orbit-only camera
/// fields with [`CameraSpec`]; v3 added the per-request `request_id` that
/// multiplexes many in-flight renders over one connection; v4 added the
/// elastic-pool control opcodes ([`opcode::DRAIN`] / [`opcode::RESUME`] /
/// [`opcode::PREWARM`] and their replies) and the directory epoch carried
/// by the `STATS` payload.
pub const VERSION: u16 = 4;
/// Frame header bytes: magic + version + opcode + length.
pub const HEADER_BYTES: usize = 4 + 2 + 1 + 4;
/// Fixed-size frame prelude: the header plus the 8-byte request id. A
/// reader consumes `PRELUDE_BYTES`, then the `length` payload bytes the
/// header declared.
pub const PRELUDE_BYTES: usize = HEADER_BYTES + 8;
/// Default cap on a single payload (a 1024² float-RGBA frame is 16 MiB;
/// 64 MiB leaves room for shipped in-memory volumes without letting one
/// frame OOM the peer).
pub const DEFAULT_MAX_PAYLOAD: u64 = 64 << 20;

/// Request and response opcodes. Responses have the high bit set.
pub mod opcode {
    pub const PING: u8 = 0x01;
    pub const RENDER: u8 = 0x02;
    pub const SUBMIT: u8 = 0x03;
    pub const REDEEM: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    /// Fetch the last N completed request traces from the server's trace
    /// ring; payload is the maximum count as a u32.
    pub const TRACES: u8 = 0x06;
    /// Put the server into the draining state (payload: the controller's
    /// directory epoch as a u64): in-flight work and parked redeems still
    /// answer, new `RENDER`/`SUBMIT`/`PREWARM` get a typed [`DRAINING`]
    /// reply, and the server says [`GOODBYE`] once it owes nothing more.
    /// Idempotent; answered with [`DRAIN_STATE`]. New in v4.
    pub const DRAIN: u8 = 0x07;
    /// Leave the draining state (payload: epoch, like [`DRAIN`]) — the
    /// rejoin half of a drain that was called off. Idempotent; answered
    /// with [`DRAIN_STATE`]. New in v4.
    pub const RESUME: u8 = 0x08;
    /// Populate the owning shard's plan cache for a request's `BatchKey`
    /// *before* traffic moves there (payload: epoch + a full render
    /// request), so a placement cutover never costs a cold start. The plan
    /// builds off the event loop, on a dedicated pre-warm worker; answered
    /// with [`PREWARMED`] when the plan is resident. New in v4.
    pub const PREWARM: u8 = 0x09;

    pub const PONG: u8 = 0x81;
    pub const FRAME: u8 = 0x82;
    pub const SUBMITTED: u8 = 0x83;
    pub const REJECTED: u8 = 0x84;
    pub const THROTTLED: u8 = 0x85;
    pub const FAILED: u8 = 0x86;
    pub const STATS_REPORT: u8 = 0x87;
    /// Per-session ticket table is full: redeem before submitting more.
    pub const TICKETS_FULL: u8 = 0x88;
    /// The request frame declared a protocol version this server does not
    /// speak; payload is `(got, want)` and the connection closes after the
    /// reply flushes. New in v3 — the migration path for v2 clients.
    pub const UNSUPPORTED_VERSION: u8 = 0x89;
    /// Reply to [`TRACES`]: the newest completed traces, newest first (see
    /// [`crate::wire::encode_traces`]).
    pub const TRACES_REPLY: u8 = 0x8A;
    /// Reply to [`DRAIN`] / [`RESUME`]: whether the server is draining,
    /// how many requests it still owes (in-flight renders + un-redeemed
    /// tickets + parked redeems, across all sessions), and the highest
    /// directory epoch it has been told. New in v4.
    pub const DRAIN_STATE: u8 = 0x8B;
    /// Reply to [`PREWARM`]: the owning shard index and whether a plan was
    /// newly built (`false` = the cache was already warm). New in v4.
    pub const PREWARMED: u8 = 0x8C;
    /// Unsolicited (request id 0) farewell from a draining server that
    /// owes nothing more: every outstanding request has been answered and
    /// the connection closes after this frame flushes. New in v4.
    pub const GOODBYE: u8 = 0x8D;
    /// Typed refusal of `RENDER`/`SUBMIT`/`PREWARM` while the server is
    /// draining (payload: the server's directory epoch, so a stale client
    /// learns placement moved on without it). The connection stays open —
    /// redeems and stats still answer. New in v4.
    pub const DRAINING: u8 = 0x8E;
    pub const BAD_REQUEST: u8 = 0xFF;
}

/// Everything that can go wrong between bytes and messages. Framing errors
/// (`BadMagic`, `UnsupportedVersion`, `Truncated`, `TooLarge`) mean the
/// stream position is lost and the connection must close — the server also
/// closes on `UnknownOpcode`, since a peer dispatching unknown requests is
/// not speaking this protocol; payload errors (`Malformed`,
/// `TrailingBytes`) poison only the offending request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket error (kind only: portable and comparable).
    Io(std::io::ErrorKind),
    /// The peer closed the connection at a frame boundary.
    ConnectionClosed,
    BadMagic(u32),
    UnsupportedVersion {
        got: u16,
        want: u16,
    },
    UnknownOpcode(u8),
    /// The payload ended before a field did.
    Truncated {
        needed: usize,
        have: usize,
    },
    /// The payload continued past the last field.
    TrailingBytes {
        extra: usize,
    },
    /// A field decoded to an impossible value (bad enum tag, bad bool,
    /// bad UTF-8, dimension mismatch, unknown dataset, …).
    Malformed(String),
    /// Declared payload length exceeds the configured bound.
    TooLarge {
        len: u64,
        max: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "socket error: {kind}"),
            WireError::ConnectionClosed => write!(f, "connection closed"),
            WireError::BadMagic(got) => {
                write!(f, "bad frame magic {got:#010x} (want {MAGIC:#010x})")
            }
            WireError::UnsupportedVersion { got, want } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {want})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated payload: needed {needed} bytes, have {have}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "malformed payload: {extra} trailing bytes")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> WireError {
        match err.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::ConnectionClosed,
            kind => WireError::Io(kind),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append-only payload encoder (little-endian throughout).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a received payload; every read is bounds-checked into a
/// typed [`WireError`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { needed: n, have });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bool byte {other}"))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed count that more bytes must follow for: bounded by
    /// the remaining payload so a hostile length cannot drive a huge
    /// allocation before the truncation is noticed.
    pub fn count(&mut self, bytes_per_item: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(bytes_per_item.max(1));
        let have = self.buf.len() - self.pos;
        if needed > have {
            return Err(WireError::Truncated { needed, have });
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    /// Everything not yet consumed — for envelope decoders that hand the
    /// tail to an inner decoder (`decode_prewarm` → `decode_request`).
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Assert the payload is fully consumed (decoders call this last, so a
    /// frame with junk glued on fails instead of silently parsing).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Serialize one frame (prelude + payload) into a byte vector — the form
/// an event loop appends to a connection's write buffer.
pub fn frame_bytes(opcode: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PRELUDE_BYTES + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(opcode);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Write one frame (header + request id + payload) and flush.
pub fn write_frame(
    w: &mut impl Write,
    opcode: u8,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    w.write_all(&frame_bytes(opcode, request_id, payload))?;
    w.flush()?;
    Ok(())
}

/// Parse a frame header, validating magic, version and the payload bound.
pub fn parse_header(
    header: &[u8; HEADER_BYTES],
    max_payload: u64,
) -> Result<(u8, usize), WireError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            want: VERSION,
        });
    }
    let opcode = header[6];
    let len = u32::from_le_bytes(header[7..11].try_into().unwrap()) as u64;
    if len > max_payload {
        return Err(WireError::TooLarge {
            len,
            max: max_payload,
        });
    }
    Ok((opcode, len as usize))
}

/// Read one frame: `(opcode, request_id, payload)`. A clean EOF before the
/// first header byte is [`WireError::ConnectionClosed`].
pub fn read_frame(r: &mut impl Read, max_payload: u64) -> Result<(u8, u64, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let (opcode, len) = parse_header(&header, max_payload)?;
    let mut id = [0u8; 8];
    r.read_exact(&mut id)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((opcode, u64::from_le_bytes(id), payload))
}

// ---------------------------------------------------------------------------
// The render request
// ---------------------------------------------------------------------------

/// How a request names its volume. Procedural datasets travel as a name +
/// resolution (the receiving side regenerates them bit-identically from the
/// shared seed); small in-memory volumes ship their voxels.
#[derive(Debug, Clone, PartialEq)]
pub enum VolumeSpec {
    Dataset {
        dataset: Dataset,
        base: u32,
    },
    InMemory {
        name: String,
        dims: [u32; 3],
        voxels: Vec<f32>,
    },
}

/// Largest in-memory volume a request may ship: 8 Mi voxels (32 MiB of
/// `f32`) stays comfortably under [`DEFAULT_MAX_PAYLOAD`] with the rest of
/// the request around it.
pub const MAX_SHIPPED_VOXELS: u64 = 8 << 20;

impl VolumeSpec {
    /// Describe an in-process [`Volume`] for the wire: a named procedural
    /// dataset travels by `(name, base)` (the receiver regenerates it
    /// bit-identically from the shared seed), anything else ships its exact
    /// voxels — up to [`MAX_SHIPPED_VOXELS`]. Returns a human-readable
    /// reason when the volume cannot cross the wire.
    pub fn of(volume: &Volume) -> Result<VolumeSpec, String> {
        if let Some(dataset) = Dataset::from_name(&volume.meta.name) {
            let base = volume.meta.dims[0];
            // Regenerate and compare the full metadata (content fingerprint
            // included): only a volume that IS the named dataset at this
            // resolution may travel by name.
            if base > 0 && dataset.volume(base).meta == volume.meta {
                return Ok(VolumeSpec::Dataset { dataset, base });
            }
        }
        if volume.meta.voxel_count() <= MAX_SHIPPED_VOXELS {
            // Materialized voxels read back the exact f32 values the local
            // renderer would sample, so the shipped copy renders
            // bit-identically even for procedural sources.
            return Ok(VolumeSpec::InMemory {
                name: volume.meta.name.clone(),
                dims: volume.meta.dims,
                voxels: volume.materialize_full(),
            });
        }
        Err(format!(
            "volume {} is not a named dataset and too large to ship \
             ({} voxels, wire limit {MAX_SHIPPED_VOXELS})",
            volume.meta.label(),
            volume.meta.voxel_count()
        ))
    }

    /// Resolve to an actual [`Volume`] on the receiving side.
    pub fn to_volume(&self) -> Result<Volume, WireError> {
        match self {
            VolumeSpec::Dataset { dataset, base } => {
                if *base == 0 {
                    return Err(WireError::Malformed("dataset base resolution 0".into()));
                }
                Ok(dataset.volume(*base))
            }
            VolumeSpec::InMemory { name, dims, voxels } => {
                let count = dims[0] as u64 * dims[1] as u64 * dims[2] as u64;
                if count == 0 || count != voxels.len() as u64 {
                    return Err(WireError::Malformed(format!(
                        "in-memory volume {name:?}: {} voxels for dims {dims:?}",
                        voxels.len()
                    )));
                }
                Ok(Volume::in_memory(name.clone(), *dims, voxels.clone()))
            }
        }
    }
}

/// How a request names its transfer function: a built-in preset by name, or
/// explicit control points for custom functions.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferSpec {
    Preset(String),
    Points(Vec<ControlPoint>),
}

impl TransferSpec {
    /// Encode an in-process [`TransferFunction`]: by name when it *is* the
    /// preset of that name, by points otherwise.
    pub fn of(tf: &TransferFunction) -> TransferSpec {
        match TransferFunction::preset(tf.name()) {
            Some(preset) if preset == *tf => TransferSpec::Preset(tf.name().to_string()),
            _ => TransferSpec::Points(tf.points().to_vec()),
        }
    }

    pub fn to_transfer(&self) -> Result<TransferFunction, WireError> {
        match self {
            TransferSpec::Preset(name) => TransferFunction::preset(name)
                .ok_or_else(|| WireError::Malformed(format!("unknown transfer preset {name:?}"))),
            TransferSpec::Points(points) => {
                if points.is_empty() {
                    return Err(WireError::Malformed(
                        "transfer function with no points".into(),
                    ));
                }
                Ok(TransferFunction::from_points("wire", points.clone()))
            }
        }
    }
}

/// How a request names its camera: compact orbit parameters (see
/// [`Scene::orbit`]) for the common case, or the raw camera basis for
/// arbitrary scenes — the latter reconstructs bit-identically via
/// [`mgpu_volren::camera::Camera::from_raw_parts`], which is what lets any
/// in-process [`mgpu_serve::SceneRequest`] cross the wire unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum CameraSpec {
    Orbit {
        azimuth_deg: f32,
        elevation_deg: f32,
    },
    Look {
        eye: [f32; 3],
        forward: [f32; 3],
        right: [f32; 3],
        up: [f32; 3],
        tan_half_fov: f32,
    },
}

impl CameraSpec {
    /// Describe an in-process camera exactly (always the `Look` form).
    pub fn of(camera: &mgpu_volren::camera::Camera) -> CameraSpec {
        let (eye, forward, right, up, tan_half_fov) = camera.raw_parts();
        CameraSpec::Look {
            eye,
            forward,
            right,
            up,
            tan_half_fov,
        }
    }

    /// Build the scene's camera on the receiving side.
    fn to_camera(&self, volume: &Volume) -> mgpu_volren::camera::Camera {
        match *self {
            // Delegate to the one orbit implementation so wire and local
            // callers can never drift apart.
            CameraSpec::Orbit {
                azimuth_deg,
                elevation_deg,
            } => Scene::orbit(volume, azimuth_deg, elevation_deg, TransferFunction::bone()).camera,
            CameraSpec::Look {
                eye,
                forward,
                right,
                up,
                tan_half_fov,
            } => mgpu_volren::camera::Camera::from_raw_parts(eye, forward, right, up, tan_half_fov),
        }
    }
}

/// A self-contained frame request as it travels over the wire: enough to
/// reconstruct the exact `(ClusterSpec, Volume, Scene, RenderConfig)` of a
/// direct [`mgpu_volren::renderer::render`] call on the server — by
/// construction, the served pixels are bit-identical to a local render.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSceneRequest {
    /// GPUs of the modeled accelerator cluster.
    pub gpus: u32,
    pub gpus_per_node: u32,
    pub volume: VolumeSpec,
    pub camera: CameraSpec,
    pub transfer: TransferSpec,
    pub background: [f32; 4],
    pub config: RenderConfig,
    pub priority: Priority,
}

impl NetSceneRequest {
    /// Orbit a procedural dataset (the common case).
    pub fn orbit_dataset(
        dataset: Dataset,
        base: u32,
        gpus: u32,
        azimuth_deg: f32,
        elevation_deg: f32,
        transfer: &TransferFunction,
    ) -> NetSceneRequest {
        NetSceneRequest {
            gpus,
            gpus_per_node: 4,
            volume: VolumeSpec::Dataset { dataset, base },
            camera: CameraSpec::Orbit {
                azimuth_deg,
                elevation_deg,
            },
            transfer: TransferSpec::of(transfer),
            background: [0.0; 4],
            config: RenderConfig::default(),
            priority: Priority::Normal,
        }
    }

    /// Describe an arbitrary in-process [`mgpu_serve::SceneRequest`] for
    /// the wire — the bridge every remote [`mgpu_serve::RenderBackend`]
    /// uses. Fails (with a human-readable reason) only when the request is
    /// genuinely not portable: a cluster that is not the paper's
    /// accelerator-cluster model, or a volume too large to ship (see
    /// [`VolumeSpec::of`]). Everything that can cross, crosses bit-exactly:
    /// camera basis, transfer points, background, full render config.
    pub fn from_request(request: &mgpu_serve::SceneRequest) -> Result<NetSceneRequest, String> {
        let spec = &request.spec;
        let candidate = ClusterSpec::accelerator_cluster(spec.gpus.max(1))
            .with_gpus_per_node(spec.gpus_per_node.max(1));
        if *spec != candidate {
            return Err(format!(
                "cluster spec is not the accelerator-cluster model \
                 (custom device/network/disk parameters cannot cross the wire): {spec:?}"
            ));
        }
        Ok(NetSceneRequest {
            gpus: spec.gpus,
            gpus_per_node: spec.gpus_per_node,
            volume: VolumeSpec::of(&request.volume)?,
            camera: CameraSpec::of(&request.scene.camera),
            transfer: TransferSpec::of(&request.scene.transfer),
            background: request.scene.background,
            config: request.config.clone(),
            priority: request.priority,
        })
    }

    pub fn with_config(mut self, config: RenderConfig) -> NetSceneRequest {
        self.config = config;
        self
    }

    pub fn with_priority(mut self, priority: Priority) -> NetSceneRequest {
        self.priority = priority;
        self
    }

    pub fn with_background(mut self, background: [f32; 4]) -> NetSceneRequest {
        self.background = background;
        self
    }

    /// Re-aim an orbit camera's azimuth (the elevation is kept); a `Look`
    /// camera is replaced by an orbit at elevation 0.
    pub fn with_azimuth(mut self, azimuth_deg: f32) -> NetSceneRequest {
        let elevation_deg = match self.camera {
            CameraSpec::Orbit { elevation_deg, .. } => elevation_deg,
            CameraSpec::Look { .. } => 0.0,
        };
        self.camera = CameraSpec::Orbit {
            azimuth_deg,
            elevation_deg,
        };
        self
    }

    /// Reconstruct the direct-render inputs on the receiving side.
    pub fn to_parts(
        &self,
    ) -> Result<(ClusterSpec, Volume, Scene, RenderConfig, Priority), WireError> {
        if self.gpus == 0 || self.gpus_per_node == 0 {
            return Err(WireError::Malformed(format!(
                "cluster of {} GPUs, {} per node",
                self.gpus, self.gpus_per_node
            )));
        }
        let spec =
            ClusterSpec::accelerator_cluster(self.gpus).with_gpus_per_node(self.gpus_per_node);
        let volume = self.volume.to_volume()?;
        let transfer = self.transfer.to_transfer()?;
        let scene = Scene {
            camera: self.camera.to_camera(&volume),
            transfer,
            background: self.background,
        };
        Ok((spec, volume, scene, self.config.clone(), self.priority))
    }
}

// ---------------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------------

fn put_priority(w: &mut Writer, p: Priority) {
    w.u8(p.index() as u8);
}

fn get_priority(r: &mut Reader) -> Result<Priority, WireError> {
    match r.u8()? {
        0 => Ok(Priority::Batch),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::Interactive),
        other => Err(WireError::Malformed(format!("priority tag {other}"))),
    }
}

fn put_config(w: &mut Writer, cfg: &RenderConfig) {
    w.u32(cfg.image.0);
    w.u32(cfg.image.1);
    w.f32(cfg.step_voxels);
    w.f32(cfg.early_term);
    w.u32(cfg.bricks_per_gpu);
    w.u64(cfg.max_brick_voxels);
    w.u8(match cfg.residency {
        Residency::Auto => 0,
        Residency::HostResident => 1,
        Residency::Disk => 2,
    });
    w.u64(cfg.host_cache_bytes);
    w.u64(cfg.batch_bytes as u64);
    match cfg.partition {
        PartitionStrategy::RoundRobin => {
            w.u8(0);
            w.u32(0);
        }
        PartitionStrategy::Striped { rows_per_stripe } => {
            w.u8(1);
            w.u32(rows_per_stripe);
        }
        PartitionStrategy::Tiled { tile } => {
            w.u8(2);
            w.u32(tile);
        }
        PartitionStrategy::Checkerboard { cell } => {
            w.u8(3);
            w.u32(cell);
        }
    }
    w.u8(match cfg.compositor {
        Compositor::DirectSend => 0,
        Compositor::BinarySwap => 1,
    });
    match cfg.assignment {
        Assignment::RoundRobin => {
            w.u8(0);
            w.u32(0);
        }
        Assignment::Blocked => {
            w.u8(1);
            w.u32(0);
        }
        Assignment::Strided { stride } => {
            w.u8(2);
            w.u32(stride);
        }
    }
    w.bool(cfg.combiner);
    w.bool(cfg.trace.async_upload);
    w.bool(cfg.trace.reduce_on_gpu);
    w.u64(cfg.kernel_parallelism as u64);
}

fn get_config(r: &mut Reader) -> Result<RenderConfig, WireError> {
    let image = (r.u32()?, r.u32()?);
    let step_voxels = r.f32()?;
    let early_term = r.f32()?;
    let bricks_per_gpu = r.u32()?;
    let max_brick_voxels = r.u64()?;
    let residency = match r.u8()? {
        0 => Residency::Auto,
        1 => Residency::HostResident,
        2 => Residency::Disk,
        other => return Err(WireError::Malformed(format!("residency tag {other}"))),
    };
    let host_cache_bytes = r.u64()?;
    let batch_bytes = r.u64()? as usize;
    let (ptag, pparam) = (r.u8()?, r.u32()?);
    let partition = match ptag {
        0 => PartitionStrategy::RoundRobin,
        1 => PartitionStrategy::Striped {
            rows_per_stripe: pparam,
        },
        2 => PartitionStrategy::Tiled { tile: pparam },
        3 => PartitionStrategy::Checkerboard { cell: pparam },
        other => return Err(WireError::Malformed(format!("partition tag {other}"))),
    };
    let compositor = match r.u8()? {
        0 => Compositor::DirectSend,
        1 => Compositor::BinarySwap,
        other => return Err(WireError::Malformed(format!("compositor tag {other}"))),
    };
    let (atag, aparam) = (r.u8()?, r.u32()?);
    let assignment = match atag {
        0 => Assignment::RoundRobin,
        1 => Assignment::Blocked,
        2 => Assignment::Strided { stride: aparam },
        other => return Err(WireError::Malformed(format!("assignment tag {other}"))),
    };
    let combiner = r.bool()?;
    let trace = TraceOptions {
        async_upload: r.bool()?,
        reduce_on_gpu: r.bool()?,
    };
    let kernel_parallelism = r.u64()? as usize;
    Ok(RenderConfig {
        image,
        step_voxels,
        early_term,
        bricks_per_gpu,
        max_brick_voxels,
        residency,
        host_cache_bytes,
        batch_bytes,
        partition,
        compositor,
        assignment,
        combiner,
        trace,
        kernel_parallelism,
    })
}

/// Encode a render request payload (`RENDER` and `SUBMIT` share it).
pub fn encode_request(req: &NetSceneRequest) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(req.gpus);
    w.u32(req.gpus_per_node);
    match &req.volume {
        VolumeSpec::Dataset { dataset, base } => {
            w.u8(0);
            w.str(dataset.name());
            w.u32(*base);
        }
        VolumeSpec::InMemory { name, dims, voxels } => {
            w.u8(1);
            w.str(name);
            for d in dims {
                w.u32(*d);
            }
            w.u32(voxels.len() as u32);
            for v in voxels {
                w.f32(*v);
            }
        }
    }
    match &req.camera {
        CameraSpec::Orbit {
            azimuth_deg,
            elevation_deg,
        } => {
            w.u8(0);
            w.f32(*azimuth_deg);
            w.f32(*elevation_deg);
        }
        CameraSpec::Look {
            eye,
            forward,
            right,
            up,
            tan_half_fov,
        } => {
            w.u8(1);
            for axis in [eye, forward, right, up] {
                for c in axis {
                    w.f32(*c);
                }
            }
            w.f32(*tan_half_fov);
        }
    }
    match &req.transfer {
        TransferSpec::Preset(name) => {
            w.u8(0);
            w.str(name);
        }
        TransferSpec::Points(points) => {
            w.u8(1);
            w.u32(points.len() as u32);
            for p in points {
                w.f32(p.value);
                for c in p.rgba {
                    w.f32(c);
                }
            }
        }
    }
    for c in req.background {
        w.f32(c);
    }
    put_config(&mut w, &req.config);
    put_priority(&mut w, req.priority);
    w.into_bytes()
}

/// Decode a render request payload; consumes the whole payload.
pub fn decode_request(payload: &[u8]) -> Result<NetSceneRequest, WireError> {
    let mut r = Reader::new(payload);
    let gpus = r.u32()?;
    let gpus_per_node = r.u32()?;
    let volume = match r.u8()? {
        0 => {
            let name = r.str()?;
            let base = r.u32()?;
            let dataset = Dataset::from_name(&name)
                .ok_or_else(|| WireError::Malformed(format!("unknown dataset {name:?}")))?;
            VolumeSpec::Dataset { dataset, base }
        }
        1 => {
            let name = r.str()?;
            let dims = [r.u32()?, r.u32()?, r.u32()?];
            let n = r.count(4)?;
            let mut voxels = Vec::with_capacity(n);
            for _ in 0..n {
                voxels.push(r.f32()?);
            }
            VolumeSpec::InMemory { name, dims, voxels }
        }
        other => return Err(WireError::Malformed(format!("volume tag {other}"))),
    };
    let camera = match r.u8()? {
        0 => CameraSpec::Orbit {
            azimuth_deg: r.f32()?,
            elevation_deg: r.f32()?,
        },
        1 => {
            let mut vec3 = || -> Result<[f32; 3], WireError> { Ok([r.f32()?, r.f32()?, r.f32()?]) };
            CameraSpec::Look {
                eye: vec3()?,
                forward: vec3()?,
                right: vec3()?,
                up: vec3()?,
                tan_half_fov: r.f32()?,
            }
        }
        other => return Err(WireError::Malformed(format!("camera tag {other}"))),
    };
    let transfer = match r.u8()? {
        0 => TransferSpec::Preset(r.str()?),
        1 => {
            let n = r.count(20)?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let value = r.f32()?;
                let rgba = [r.f32()?, r.f32()?, r.f32()?, r.f32()?];
                points.push(ControlPoint { value, rgba });
            }
            TransferSpec::Points(points)
        }
        other => return Err(WireError::Malformed(format!("transfer tag {other}"))),
    };
    let background = [r.f32()?, r.f32()?, r.f32()?, r.f32()?];
    let config = get_config(&mut r)?;
    let priority = get_priority(&mut r)?;
    r.finish()?;
    Ok(NetSceneRequest {
        gpus,
        gpus_per_node,
        volume,
        camera,
        transfer,
        background,
        config,
        priority,
    })
}

// ---------------------------------------------------------------------------
// Simple response payloads (frame/stats encodings live in `crate::heat`)
// ---------------------------------------------------------------------------

pub fn encode_ping(token: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(token);
    w.into_bytes()
}

pub fn decode_ping(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    let token = r.u64()?;
    r.finish()?;
    Ok(token)
}

pub fn encode_pong(token: u64, shards: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(token);
    w.u32(shards);
    w.into_bytes()
}

pub fn decode_pong(payload: &[u8]) -> Result<(u64, u32), WireError> {
    let mut r = Reader::new(payload);
    let token = r.u64()?;
    let shards = r.u32()?;
    r.finish()?;
    Ok((token, shards))
}

pub fn encode_ticket(ticket: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(ticket);
    w.into_bytes()
}

pub fn decode_ticket(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    let ticket = r.u64()?;
    r.finish()?;
    Ok(ticket)
}

/// `REJECTED`: an [`AdmissionError`] crossing the socket intact.
pub fn encode_rejected(err: &AdmissionError) -> Vec<u8> {
    let mut w = Writer::new();
    put_priority(&mut w, err.priority);
    w.u64(err.queued as u64);
    w.u64(err.limit as u64);
    w.into_bytes()
}

pub fn decode_rejected(payload: &[u8]) -> Result<AdmissionError, WireError> {
    let mut r = Reader::new(payload);
    let priority = get_priority(&mut r)?;
    let queued = r.u64()? as usize;
    let limit = r.u64()? as usize;
    r.finish()?;
    Ok(AdmissionError {
        priority,
        queued,
        limit,
    })
}

/// `TICKETS_FULL`: the session's un-redeemed ticket count and its bound.
pub fn encode_tickets_full(outstanding: u64, limit: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(outstanding);
    w.u64(limit);
    w.into_bytes()
}

pub fn decode_tickets_full(payload: &[u8]) -> Result<(u64, u64), WireError> {
    let mut r = Reader::new(payload);
    let outstanding = r.u64()?;
    let limit = r.u64()?;
    r.finish()?;
    Ok((outstanding, limit))
}

/// `UNSUPPORTED_VERSION`: the version the peer sent and the version this
/// build speaks — the typed refusal a v2 client receives before the server
/// closes the connection.
pub fn encode_unsupported_version(got: u16, want: u16) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(got);
    w.u16(want);
    w.into_bytes()
}

pub fn decode_unsupported_version(payload: &[u8]) -> Result<(u16, u16), WireError> {
    let mut r = Reader::new(payload);
    let got = r.u16()?;
    let want = r.u16()?;
    r.finish()?;
    Ok((got, want))
}

pub fn encode_throttled(retry_after: Duration) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(retry_after.as_nanos().min(u64::MAX as u128) as u64);
    w.into_bytes()
}

pub fn decode_throttled(payload: &[u8]) -> Result<Duration, WireError> {
    let mut r = Reader::new(payload);
    let nanos = r.u64()?;
    r.finish()?;
    Ok(Duration::from_nanos(nanos))
}

/// A draining server's answer to `DRAIN`/`RESUME`: its current mode, how
/// much it still owes, and the newest directory epoch it has been told —
/// what a drain controller polls until `outstanding` reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainState {
    /// New `RENDER`/`SUBMIT`/`PREWARM` are being refused with `DRAINING`.
    pub draining: bool,
    /// In-flight renders + un-redeemed tickets + parked redeems, across
    /// every session on the server. Zero while draining means the server
    /// is about to say `GOODBYE`.
    pub outstanding: u64,
    /// Highest directory epoch any controller has announced to this
    /// server (echoed in STATS too): a client whose directory is older is
    /// stale.
    pub epoch: u64,
}

/// `DRAIN` / `RESUME` / `DRAINING`: a bare directory epoch.
pub fn encode_epoch(epoch: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(epoch);
    w.into_bytes()
}

pub fn decode_epoch(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    r.finish()?;
    Ok(epoch)
}

/// `DRAIN_STATE`: draining flag + outstanding count + epoch.
pub fn encode_drain_state(state: DrainState) -> Vec<u8> {
    let mut w = Writer::new();
    w.bool(state.draining);
    w.u64(state.outstanding);
    w.u64(state.epoch);
    w.into_bytes()
}

pub fn decode_drain_state(payload: &[u8]) -> Result<DrainState, WireError> {
    let mut r = Reader::new(payload);
    let draining = r.bool()?;
    let outstanding = r.u64()?;
    let epoch = r.u64()?;
    r.finish()?;
    Ok(DrainState {
        draining,
        outstanding,
        epoch,
    })
}

/// `PREWARM`: the announcing controller's epoch, then a full render
/// request (a `BatchKey` alone cannot rebuild a plan — the destination
/// needs the spec, volume and config the key was derived from).
pub fn encode_prewarm(epoch: u64, request: &NetSceneRequest) -> Vec<u8> {
    let mut bytes = encode_epoch(epoch);
    bytes.extend_from_slice(&encode_request(request));
    bytes
}

pub fn decode_prewarm(payload: &[u8]) -> Result<(u64, NetSceneRequest), WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let request = decode_request(r.rest())?;
    Ok((epoch, request))
}

/// `PREWARMED`: owning shard index + whether a plan was newly built.
pub fn encode_prewarmed(shard: u32, built: bool) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(shard);
    w.bool(built);
    w.into_bytes()
}

pub fn decode_prewarmed(payload: &[u8]) -> Result<(u32, bool), WireError> {
    let mut r = Reader::new(payload);
    let shard = r.u32()?;
    let built = r.bool()?;
    r.finish()?;
    Ok((shard, built))
}

/// A rendered frame as delivered across the socket: the exact image a
/// direct render would produce (floats travel by bit pattern), plus the
/// cache provenance and the simulated frame time of the modeled cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFrame {
    pub image: mgpu_volren::Image,
    /// Served from the server's frame cache (no render ran for this
    /// request).
    pub from_cache: bool,
    /// Simulated (DES) frame time on the modeled cluster — zero for cache
    /// hits, which re-deliver a previously rendered frame.
    pub sim_frame: Duration,
}

/// `FRAME`: flags + sim time + dimensions + raw RGBA rows.
pub fn encode_frame(image: &mgpu_volren::Image, from_cache: bool, sim_nanos: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.bool(from_cache);
    w.u64(sim_nanos);
    w.u32(image.width());
    w.u32(image.height());
    for px in image.pixels() {
        for c in px {
            w.f32(*c);
        }
    }
    w.into_bytes()
}

pub fn decode_frame(payload: &[u8]) -> Result<NetFrame, WireError> {
    let mut r = Reader::new(payload);
    let from_cache = r.bool()?;
    let sim_nanos = r.u64()?;
    let width = r.u32()?;
    let height = r.u32()?;
    let count = (width as u64).checked_mul(height as u64).ok_or_else(|| {
        WireError::Malformed(format!("image dimensions {width}x{height} overflow"))
    })?;
    // Pixel data is implied by the dimensions; verify before allocating.
    let have = payload.len().saturating_sub(1 + 8 + 4 + 4);
    let needed = count
        .checked_mul(16)
        .filter(|n| *n <= usize::MAX as u64)
        .ok_or_else(|| WireError::Malformed(format!("{count} pixels overflow")))?
        as usize;
    if needed != have {
        return Err(WireError::Malformed(format!(
            "{width}x{height} frame needs {needed} pixel bytes, payload has {have}"
        )));
    }
    let mut pixels = Vec::with_capacity(count as usize);
    for _ in 0..count {
        pixels.push([r.f32()?, r.f32()?, r.f32()?, r.f32()?]);
    }
    r.finish()?;
    Ok(NetFrame {
        image: mgpu_volren::Image::from_pixels(width, height, pixels),
        from_cache,
        sim_frame: Duration::from_nanos(sim_nanos),
    })
}

pub fn encode_message(message: &str) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(message);
    w.into_bytes()
}

pub fn decode_message(payload: &[u8]) -> Result<String, WireError> {
    let mut r = Reader::new(payload);
    let message = r.str()?;
    r.finish()?;
    Ok(message)
}

// ---------------------------------------------------------------------------
// Trace payloads (`TRACES` / `TRACES_REPLY`)
// ---------------------------------------------------------------------------

/// `TRACES`: ask for the server's newest `max` completed request traces.
pub fn encode_traces_request(max: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(max);
    w.into_bytes()
}

pub fn decode_traces_request(payload: &[u8]) -> Result<u32, WireError> {
    let mut r = Reader::new(payload);
    let max = r.u32()?;
    r.finish()?;
    Ok(max)
}

/// `TRACES_REPLY`: the completed traces, newest first. Each trace is its
/// wire `request_id`-seeded trace id plus the named stage spans as
/// nanosecond offsets from the trace's start.
pub fn encode_traces(traces: &[mgpu_obs::CompletedTrace]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(traces.len() as u32);
    for trace in traces {
        w.u64(trace.id);
        w.u32(trace.spans.len() as u32);
        for span in &trace.spans {
            w.str(&span.name);
            w.u64(span.start_ns);
            w.u64(span.end_ns);
        }
    }
    w.into_bytes()
}

pub fn decode_traces(payload: &[u8]) -> Result<Vec<mgpu_obs::CompletedTrace>, WireError> {
    let mut r = Reader::new(payload);
    // A trace is at least an id and a span count; a span at least a name
    // length and two offsets.
    let count = r.count(8 + 4)?;
    let mut traces = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u64()?;
        let spans_len = r.count(4 + 8 + 8)?;
        let mut spans = Vec::with_capacity(spans_len);
        for _ in 0..spans_len {
            let name = r.str()?;
            let start_ns = r.u64()?;
            let end_ns = r.u64()?;
            if end_ns < start_ns {
                return Err(WireError::Malformed(format!(
                    "span {name:?} ends ({end_ns}) before it starts ({start_ns})"
                )));
            }
            spans.push(mgpu_obs::SpanRecord {
                name,
                start_ns,
                end_ns,
            });
        }
        traces.push(mgpu_obs::CompletedTrace { id, spans });
    }
    r.finish()?;
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &NetSceneRequest) -> NetSceneRequest {
        decode_request(&encode_request(req)).expect("round-trip")
    }

    fn sample_request() -> NetSceneRequest {
        NetSceneRequest::orbit_dataset(Dataset::Skull, 16, 2, 33.0, 20.0, &TransferFunction::bone())
            .with_config(RenderConfig::test_size(24))
    }

    #[test]
    fn request_roundtrips_field_for_field() {
        let req = sample_request();
        let back = roundtrip_request(&req);
        assert_eq!(back, req);
        // The canonical identity the service uses is the Debug encoding of
        // the reconstructed parts — they must match exactly.
        let (spec, volume, scene, cfg, priority) = req.to_parts().unwrap();
        let (spec2, volume2, scene2, cfg2, priority2) = back.to_parts().unwrap();
        assert_eq!(format!("{spec:?}"), format!("{spec2:?}"));
        assert_eq!(volume.meta, volume2.meta);
        assert_eq!(format!("{scene:?}"), format!("{scene2:?}"));
        assert_eq!(format!("{cfg:?}"), format!("{cfg2:?}"));
        assert_eq!(priority, priority2);
    }

    #[test]
    fn request_roundtrips_every_enum_arm() {
        let mut req = sample_request();
        req.volume = VolumeSpec::InMemory {
            name: "twin".into(),
            dims: [2, 2, 2],
            voxels: vec![0.25; 8],
        };
        req.transfer = TransferSpec::Points(vec![
            ControlPoint {
                value: 0.0,
                rgba: [0.0; 4],
            },
            ControlPoint {
                value: 1.0,
                rgba: [1.0, 0.5, 0.25, 1.0],
            },
        ]);
        req.priority = Priority::Interactive;
        req.background = [0.1, 0.2, 0.3, 0.4];
        req.config.residency = Residency::Disk;
        req.config.partition = PartitionStrategy::Tiled { tile: 32 };
        req.config.compositor = Compositor::BinarySwap;
        req.config.assignment = Assignment::Blocked;
        req.config.combiner = true;
        req.config.trace.async_upload = true;
        assert_eq!(roundtrip_request(&req), req);

        req.config.partition = PartitionStrategy::Checkerboard { cell: 8 };
        req.config.residency = Residency::HostResident;
        req.priority = Priority::Batch;
        assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn custom_transfer_encodes_by_points_and_presets_by_name() {
        assert_eq!(
            TransferSpec::of(&TransferFunction::fire()),
            TransferSpec::Preset("fire".into())
        );
        let custom = TransferFunction::from_points(
            "wire",
            vec![ControlPoint {
                value: 0.5,
                rgba: [1.0; 4],
            }],
        );
        match TransferSpec::of(&custom) {
            TransferSpec::Points(p) => assert_eq!(p.len(), 1),
            other => panic!("custom must encode by points, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_a_valid_payload_is_a_typed_error() {
        let bytes = encode_request(&sample_request());
        for cut in 0..bytes.len() {
            match decode_request(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::Malformed(_)) => {}
                Ok(_) => panic!("prefix of {cut} bytes decoded successfully"),
                Err(other) => panic!("prefix of {cut} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&sample_request());
        bytes.push(0xAB);
        assert_eq!(
            decode_request(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn header_validation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::PING, 42, &encode_ping(7)).unwrap();
        assert_eq!(buf, frame_bytes(opcode::PING, 42, &encode_ping(7)));
        let (op, id, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(op, opcode::PING);
        assert_eq!(id, 42);
        assert_eq!(decode_ping(&payload), Ok(7));

        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        match read_frame(&mut bad.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(WireError::BadMagic(_)) => {}
            other => panic!("{other:?}"),
        }

        let mut bad = buf.clone();
        bad[4] = 0xEE; // version
        match read_frame(&mut bad.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(WireError::UnsupportedVersion { want: VERSION, .. }) => {}
            other => panic!("{other:?}"),
        }

        // Declared length beyond the bound.
        let mut bad = buf.clone();
        bad[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut bad.as_slice(), 1024) {
            Err(WireError::TooLarge { max: 1024, .. }) => {}
            other => panic!("{other:?}"),
        }

        // Empty stream = clean close; torn header = closed too.
        match read_frame(&mut (&[] as &[u8]), 1024) {
            Err(WireError::ConnectionClosed) => {}
            other => panic!("{other:?}"),
        }

        // A frame torn inside the request id is a close, not a panic.
        match read_frame(&mut (&buf[..HEADER_BYTES + 3]), 1024) {
            Err(WireError::ConnectionClosed) => {}
            other => panic!("{other:?}"),
        }
    }

    /// Every request id value round-trips verbatim through the prelude —
    /// including the reserved 0 and the all-ones pattern.
    #[test]
    fn request_id_roundtrips_verbatim() {
        for id in [0u64, 1, 8, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let buf = frame_bytes(opcode::SUBMIT, id, b"xyz");
            let (op, got, payload) = read_frame(&mut buf.as_slice(), 1024).unwrap();
            assert_eq!(
                (op, got, payload.as_slice()),
                (opcode::SUBMIT, id, &b"xyz"[..])
            );
        }
    }

    #[test]
    fn unsupported_version_payload_roundtrips() {
        assert_eq!(
            decode_unsupported_version(&encode_unsupported_version(2, VERSION)),
            Ok((2, VERSION))
        );
        assert_eq!(
            decode_unsupported_version(&encode_unsupported_version(0xEEEE, VERSION)),
            Ok((0xEEEE, VERSION))
        );
        // Truncated and oversized payloads are typed errors.
        assert!(matches!(
            decode_unsupported_version(&[1]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode_unsupported_version(&[0, 0, 0, 0, 9]),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn error_payloads_roundtrip() {
        let admission = AdmissionError {
            priority: Priority::Batch,
            queued: 9,
            limit: 8,
        };
        assert_eq!(decode_rejected(&encode_rejected(&admission)), Ok(admission));
        assert_eq!(
            decode_throttled(&encode_throttled(Duration::from_millis(125))),
            Ok(Duration::from_millis(125))
        );
        assert_eq!(
            decode_message(&encode_message("render panicked: poison")),
            Ok("render panicked: poison".to_string())
        );
        // usize::MAX (the unbounded sentinel) survives the u64 crossing on
        // 64-bit hosts.
        let unbounded = AdmissionError {
            priority: Priority::Interactive,
            queued: 3,
            limit: usize::MAX,
        };
        assert_eq!(decode_rejected(&encode_rejected(&unbounded)), Ok(unbounded));
    }

    #[test]
    fn drain_control_payloads_roundtrip() {
        for epoch in [0u64, 1, 7, u64::MAX] {
            assert_eq!(decode_epoch(&encode_epoch(epoch)), Ok(epoch));
        }
        let state = DrainState {
            draining: true,
            outstanding: 9,
            epoch: 41,
        };
        assert_eq!(decode_drain_state(&encode_drain_state(state)), Ok(state));
        let idle = DrainState {
            draining: false,
            outstanding: 0,
            epoch: u64::MAX,
        };
        assert_eq!(decode_drain_state(&encode_drain_state(idle)), Ok(idle));
        assert_eq!(decode_prewarmed(&encode_prewarmed(3, true)), Ok((3, true)));
        assert_eq!(
            decode_prewarmed(&encode_prewarmed(0, false)),
            Ok((0, false))
        );
    }

    #[test]
    fn prewarm_carries_the_epoch_and_the_full_request() {
        let req = sample_request();
        let bytes = encode_prewarm(17, &req);
        let (epoch, back) = decode_prewarm(&bytes).expect("round-trip");
        assert_eq!(epoch, 17);
        assert_eq!(back, req);
        // Every truncation of the combined payload is a typed error — both
        // inside the epoch prefix and inside the embedded request.
        for cut in 0..bytes.len() {
            match decode_prewarm(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::Malformed(_)) => {}
                Ok(_) => panic!("prefix of {cut} bytes decoded successfully"),
                Err(other) => panic!("prefix of {cut} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn drain_control_truncations_are_typed_errors() {
        let payloads = [
            encode_epoch(99),
            encode_drain_state(DrainState {
                draining: true,
                outstanding: 2,
                epoch: 5,
            }),
            encode_prewarmed(1, true),
        ];
        for bytes in &payloads {
            for cut in 0..bytes.len() {
                let slice = &bytes[..cut];
                let results = [
                    decode_epoch(slice).map(|_| ()),
                    decode_drain_state(slice).map(|_| ()),
                    decode_prewarmed(slice).map(|_| ()),
                ];
                for r in results {
                    if let Err(e) = r {
                        assert!(
                            matches!(
                                e,
                                WireError::Truncated { .. }
                                    | WireError::Malformed(_)
                                    | WireError::TrailingBytes { .. }
                            ),
                            "unexpected {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frame_roundtrips_bit_exact() {
        let mut image = mgpu_volren::Image::new(3, 2);
        for (i, px) in (0..6).zip([0.1f32, 0.5, 0.999, 0.0, 1.0, 0.25]) {
            image.set_linear(i, [px, px * 0.5, 1.0 - px, 1.0]);
        }
        let frame = decode_frame(&encode_frame(&image, true, 123_456)).unwrap();
        assert_eq!(frame.image, image);
        assert!(frame.from_cache);
        assert_eq!(frame.sim_frame, Duration::from_nanos(123_456));

        // Dimension/pixel mismatch is malformed, not a panic.
        let mut bytes = encode_frame(&image, false, 0);
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    /// The v2 camera arm: a raw look-at camera crosses the wire bit-exactly.
    #[test]
    fn look_camera_roundtrips_bit_exact() {
        let mut req = sample_request();
        let camera = mgpu_volren::camera::Camera::look_at(
            mgpu_volren::math::vec3(9.0, -3.0, 4.5),
            mgpu_volren::math::vec3(8.0, 8.0, 8.0),
            mgpu_volren::math::vec3(0.0, 0.0, 1.0),
            33.0,
        );
        req.camera = CameraSpec::of(&camera);
        let back = roundtrip_request(&req);
        assert_eq!(back, req);
        let (_, volume, scene, _, _) = back.to_parts().unwrap();
        assert_eq!(scene.camera, camera);
        // And the reconstructed camera is bit-identical, not just PartialEq.
        let _ = volume;
        let (e1, f1, r1, u1, t1) = camera.raw_parts();
        let (e2, f2, r2, u2, t2) = scene.camera.raw_parts();
        for (a, b) in [(e1, e2), (f1, f2), (r1, r2), (u1, u2)] {
            for c in 0..3 {
                assert_eq!(a[c].to_bits(), b[c].to_bits());
            }
        }
        assert_eq!(t1.to_bits(), t2.to_bits());
    }

    /// `from_request` is the portable description of an in-process request:
    /// named datasets travel by name, anything small ships voxels, and the
    /// reconstructed parts match the originals field for field.
    #[test]
    fn from_request_describes_in_process_requests() {
        use mgpu_serve::{Priority, SceneRequest};

        let volume = Dataset::Supernova.volume(16);
        let spec = ClusterSpec::accelerator_cluster(3).with_gpus_per_node(2);
        let scene = Scene::orbit(&volume, 123.0, -8.0, TransferFunction::fire())
            .with_background([0.2, 0.1, 0.0, 1.0]);
        let request = SceneRequest {
            spec: spec.clone(),
            volume: volume.clone(),
            scene: scene.clone(),
            config: RenderConfig::test_size(16),
            priority: Priority::Interactive,
        };
        let net = NetSceneRequest::from_request(&request).expect("portable");
        assert_eq!(
            net.volume,
            VolumeSpec::Dataset {
                dataset: Dataset::Supernova,
                base: 16
            },
            "a named dataset travels by name, not by voxels"
        );
        let (spec2, volume2, scene2, cfg2, priority2) = roundtrip_request(&net).to_parts().unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(volume2.meta, volume.meta);
        assert_eq!(scene2.camera, scene.camera);
        assert_eq!(scene2.background, scene.background);
        assert_eq!(format!("{cfg2:?}"), format!("{:?}", request.config));
        assert_eq!(priority2, Priority::Interactive);

        // A custom in-memory volume ships its exact voxels.
        let custom = Volume::in_memory("twist", [3, 3, 3], (0..27).map(|i| i as f32).collect());
        let shipped = SceneRequest {
            volume: custom.clone(),
            scene: Scene::orbit(&custom, 0.0, 0.0, TransferFunction::bone()),
            ..request.clone()
        };
        match NetSceneRequest::from_request(&shipped).unwrap().volume {
            VolumeSpec::InMemory { name, dims, voxels } => {
                assert_eq!((name.as_str(), dims), ("twist", [3, 3, 3]));
                assert_eq!(voxels.len(), 27);
            }
            other => panic!("expected shipped voxels, got {other:?}"),
        }

        // A non-standard cluster model is a typed refusal, not silence.
        let mut exotic = request.clone();
        exotic.spec.disk = mgpu_sim::LinkModel::new(1.0, 1.0);
        let err = NetSceneRequest::from_request(&exotic).expect_err("not portable");
        assert!(err.contains("accelerator-cluster"), "{err}");
    }

    #[test]
    fn traces_roundtrip_and_truncations_are_typed() {
        let traces = vec![
            mgpu_obs::CompletedTrace {
                id: 7,
                spans: vec![
                    mgpu_obs::SpanRecord {
                        name: "queue".into(),
                        start_ns: 10,
                        end_ns: 20,
                    },
                    mgpu_obs::SpanRecord {
                        name: "render".into(),
                        start_ns: 20,
                        end_ns: 90,
                    },
                ],
            },
            mgpu_obs::CompletedTrace {
                id: u64::MAX,
                spans: vec![],
            },
        ];
        let bytes = encode_traces(&traces);
        assert_eq!(decode_traces(&bytes).unwrap(), traces);
        assert_eq!(decode_traces_request(&encode_traces_request(32)), Ok(32));
        for cut in 0..bytes.len() {
            match decode_traces(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::Malformed(_)) => {}
                Ok(_) => panic!("prefix of {cut} bytes decoded successfully"),
                Err(other) => panic!("prefix of {cut} bytes: unexpected {other:?}"),
            }
        }
        // A span that ends before it starts is malformed, not accepted.
        let mut backwards = traces.clone();
        backwards[0].spans[0].start_ns = 50;
        backwards[0].spans[0].end_ns = 40;
        assert!(matches!(
            decode_traces(&encode_traces(&backwards)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn bad_volume_specs_are_malformed() {
        let mismatched = VolumeSpec::InMemory {
            name: "broken".into(),
            dims: [2, 2, 2],
            voxels: vec![0.0; 7],
        };
        assert!(matches!(
            mismatched.to_volume(),
            Err(WireError::Malformed(_))
        ));
        let zero = VolumeSpec::Dataset {
            dataset: Dataset::Skull,
            base: 0,
        };
        assert!(matches!(zero.to_volume(), Err(WireError::Malformed(_))));
    }
}
