//! Shard heat over the wire: the `STATS` request's payload — the merged
//! [`ServiceReport`] plus one [`ShardHeat`] per shard — and a client-side
//! view with the imbalance arithmetic a rebalancer (or an operator reading
//! a dashboard) starts from.

use std::time::Duration;

use mgpu_obs::{Snapshot, HIST_BUCKETS};
use mgpu_serve::{CacheSnapshot, ServiceReport, ShardHeat, WAIT_BUCKETS};

use crate::wire::{Reader, WireError, Writer};

/// What `STATS` returns: cluster-wide accounting plus per-shard heat —
/// and, since STATS v2, the node's full [`mgpu_obs`] registry snapshot
/// (per-stage histograms, cache counters, event-loop wakeups, …), which
/// merges exactly across nodes via [`Snapshot::merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// The directory epoch this node last heard about (wire v4). Every
    /// placement change — a node joining or leaving the pool, a
    /// `BatchKey` migration, a drain — bumps the pool's epoch, and the
    /// pool announces it with `DRAIN`/`RESUME`/`PREWARM`. A client whose
    /// directory epoch lags the value echoed here is routing on a stale
    /// placement.
    pub epoch: u64,
    /// All shards folded together (see [`ServiceReport::merged`]).
    pub merged: ServiceReport,
    /// Per-shard heat, indexed by shard.
    pub shards: Vec<ShardHeat>,
    /// The node's observability snapshot (STATS v2): every registered
    /// counter, gauge and histogram under its stable name.
    pub obs: Snapshot,
}

impl NetStats {
    /// The busiest shard by completed frames (`None` with zero shards —
    /// never the case for a live server).
    pub fn hottest(&self) -> Option<&ShardHeat> {
        self.shards.iter().max_by_key(|h| h.frames_completed)
    }

    /// Max-over-mean completed frames across shards: 1.0 is a perfectly
    /// even spread; large values say rendezvous routing is fighting a
    /// skewed key distribution and a rebalancer would help.
    pub fn imbalance(&self) -> f64 {
        let max = self
            .shards
            .iter()
            .map(|h| h.frames_completed)
            .max()
            .unwrap_or(0);
        let total: u64 = self.shards.iter().map(|h| h.frames_completed).sum();
        if total == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shards.len() as f64;
        max as f64 / mean
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "epoch {}", self.epoch)?;
        writeln!(f, "{}", self.merged)?;
        writeln!(
            f,
            "{:>5} {:>7} {:>9} {:>9} {:>11} {:>11} {:>9}",
            "shard", "queued", "frames", "frames/s", "cache", "plans", "p90 wait"
        )?;
        for h in &self.shards {
            writeln!(
                f,
                "{:>5} {:>7} {:>9} {:>9.2} {:>6}/{:<4} {:>6}/{:<4} {:>7.2}ms",
                h.shard,
                h.queue_depth(),
                h.frames_completed,
                h.frames_per_sec,
                h.frame_cache.entries,
                h.frame_cache.capacity,
                h.plan_cache.entries,
                h.plan_cache.capacity,
                h.queue_wait_p90.as_secs_f64() * 1e3,
            )?;
        }
        write!(f, "imbalance (max/mean frames): {:.2}", self.imbalance())
    }
}

fn put_cache(w: &mut Writer, snap: &CacheSnapshot) {
    w.u64(snap.entries as u64);
    w.u64(snap.capacity as u64);
    w.u64(snap.hits);
    w.u64(snap.misses);
    w.u64(snap.evictions);
}

fn get_cache(r: &mut Reader) -> Result<CacheSnapshot, WireError> {
    Ok(CacheSnapshot {
        entries: r.u64()? as usize,
        capacity: r.u64()? as usize,
        hits: r.u64()?,
        misses: r.u64()?,
        evictions: r.u64()?,
    })
}

fn put_duration(w: &mut Writer, d: Duration) {
    w.u64(d.as_nanos().min(u64::MAX as u128) as u64);
}

fn get_duration(r: &mut Reader) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn put_report(w: &mut Writer, r: &ServiceReport) {
    w.u64(r.frames_submitted);
    w.u64(r.frames_completed);
    w.u64(r.frames_rendered);
    w.u64(r.frames_failed);
    w.u64(r.cache_hits);
    w.u64(r.admission_rejected);
    w.u64(r.batches);
    w.u64(r.batched_frames);
    w.u64(r.jobs_popped);
    w.u64(r.brick_stagings);
    w.u64(r.brick_reuses);
    put_cache(w, &r.plan_cache);
    put_cache(w, &r.frame_cache);
    put_duration(w, r.mean_queue_wait);
    for bucket in r.queue_wait_hist {
        w.u64(bucket);
    }
    put_duration(w, r.wall_elapsed);
    put_duration(w, r.sim_frame_total);
}

fn get_report(r: &mut Reader) -> Result<ServiceReport, WireError> {
    let frames_submitted = r.u64()?;
    let frames_completed = r.u64()?;
    let frames_rendered = r.u64()?;
    let frames_failed = r.u64()?;
    let cache_hits = r.u64()?;
    let admission_rejected = r.u64()?;
    let batches = r.u64()?;
    let batched_frames = r.u64()?;
    let jobs_popped = r.u64()?;
    let brick_stagings = r.u64()?;
    let brick_reuses = r.u64()?;
    let plan_cache = get_cache(r)?;
    let frame_cache = get_cache(r)?;
    let mean_queue_wait = get_duration(r)?;
    let mut queue_wait_hist = [0u64; WAIT_BUCKETS];
    for bucket in &mut queue_wait_hist {
        *bucket = r.u64()?;
    }
    let wall_elapsed = get_duration(r)?;
    let sim_frame_total = get_duration(r)?;
    Ok(ServiceReport {
        frames_submitted,
        frames_completed,
        frames_rendered,
        frames_failed,
        cache_hits,
        admission_rejected,
        batches,
        batched_frames,
        jobs_popped,
        brick_stagings,
        brick_reuses,
        plan_cache,
        frame_cache,
        mean_queue_wait,
        queue_wait_hist,
        wall_elapsed,
        sim_frame_total,
    })
}

fn put_heat(w: &mut Writer, h: &ShardHeat) {
    w.u32(h.shard as u32);
    for d in h.queue_depths {
        w.u64(d as u64);
    }
    w.u64(h.frames_completed);
    w.f64(h.frames_per_sec);
    put_cache(w, &h.frame_cache);
    put_cache(w, &h.plan_cache);
    put_duration(w, h.mean_queue_wait);
    put_duration(w, h.queue_wait_p90);
}

fn get_heat(r: &mut Reader) -> Result<ShardHeat, WireError> {
    Ok(ShardHeat {
        shard: r.u32()? as usize,
        queue_depths: [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize],
        frames_completed: r.u64()?,
        frames_per_sec: r.f64()?,
        frame_cache: get_cache(r)?,
        plan_cache: get_cache(r)?,
        mean_queue_wait: get_duration(r)?,
        queue_wait_p90: get_duration(r)?,
    })
}

/// Encode an [`mgpu_obs::Snapshot`] — name-keyed counters, gauges and
/// histograms. Names are written in the snapshot's stable sorted order, so
/// equal snapshots encode to equal bytes.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut w = Writer::new();
    put_snapshot(&mut w, snap);
    w.into_bytes()
}

fn put_snapshot(w: &mut Writer, snap: &Snapshot) {
    let counters = snap.counters();
    w.u32(counters.len() as u32);
    for (name, value) in counters {
        w.str(name);
        w.u64(*value);
    }
    let gauges = snap.gauges();
    w.u32(gauges.len() as u32);
    for (name, value) in gauges {
        w.str(name);
        w.u64(*value as u64); // i64 by bit pattern
    }
    let histograms = snap.histograms();
    w.u32(histograms.len() as u32);
    for (name, buckets) in histograms {
        w.str(name);
        for bucket in buckets {
            w.u64(*bucket);
        }
    }
}

/// Decode an [`mgpu_obs::Snapshot`] payload; consumes the whole payload.
pub fn decode_snapshot(payload: &[u8]) -> Result<Snapshot, WireError> {
    let mut r = Reader::new(payload);
    let snap = get_snapshot(&mut r)?;
    r.finish()?;
    Ok(snap)
}

fn get_snapshot(r: &mut Reader) -> Result<Snapshot, WireError> {
    let mut snap = Snapshot::new();
    // Each entry is at least a name length prefix plus one u64.
    let counters = r.count(4 + 8)?;
    for _ in 0..counters {
        let name = r.str()?;
        let value = r.u64()?;
        snap.add_counter(&name, value);
    }
    let gauges = r.count(4 + 8)?;
    for _ in 0..gauges {
        let name = r.str()?;
        let value = r.u64()? as i64; // i64 by bit pattern
        snap.add_gauge(&name, value);
    }
    let histograms = r.count(4 + 8 * HIST_BUCKETS)?;
    for _ in 0..histograms {
        let name = r.str()?;
        let mut buckets = [0u64; HIST_BUCKETS];
        for bucket in &mut buckets {
            *bucket = r.u64()?;
        }
        snap.add_histogram(&name, &buckets);
    }
    Ok(snap)
}

/// Encode a `STATS_REPORT` payload (STATS v2: report + shard heat + the
/// node's observability snapshot).
pub fn encode_stats(stats: &NetStats) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(stats.epoch);
    put_report(&mut w, &stats.merged);
    w.u32(stats.shards.len() as u32);
    for h in &stats.shards {
        put_heat(&mut w, h);
    }
    put_snapshot(&mut w, &stats.obs);
    w.into_bytes()
}

/// Decode a `STATS_REPORT` payload; consumes the whole payload.
pub fn decode_stats(payload: &[u8]) -> Result<NetStats, WireError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let merged = get_report(&mut r)?;
    let n = r.count(1)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(get_heat(&mut r)?);
    }
    let obs = get_snapshot(&mut r)?;
    r.finish()?;
    Ok(NetStats {
        epoch,
        merged,
        shards,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_obs::names;

    fn sample_heat(shard: usize, frames: u64) -> ShardHeat {
        ShardHeat {
            shard,
            queue_depths: [1, 2, 0],
            frames_completed: frames,
            frames_per_sec: frames as f64 * 1.5,
            frame_cache: CacheSnapshot {
                entries: 3,
                capacity: 64,
                hits: 5,
                misses: 9,
                evictions: 0,
            },
            plan_cache: CacheSnapshot {
                entries: 1,
                capacity: 8,
                hits: 2,
                misses: 1,
                evictions: 0,
            },
            mean_queue_wait: Duration::from_micros(840),
            queue_wait_p90: Duration::from_millis(3),
        }
    }

    fn sample_stats() -> NetStats {
        let mut merged = ServiceReport::merged([]);
        merged.frames_submitted = 24;
        merged.frames_completed = 24;
        merged.frames_rendered = 20;
        merged.cache_hits = 4;
        merged.jobs_popped = 20;
        merged.queue_wait_hist[12] = 20;
        merged.mean_queue_wait = Duration::from_micros(900);
        merged.wall_elapsed = Duration::from_secs(2);
        let mut obs = Snapshot::new();
        obs.add_counter(names::NET_FRAMES_IN, 24);
        obs.add_counter(names::SERVE_FRAMES_RENDERED, 20);
        obs.add_gauge(names::SERVE_QUEUE_DEPTH, -1); // negative survives the cast
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[12] = 20;
        buckets[HIST_BUCKETS - 1] = 1;
        obs.add_histogram(names::SERVE_QUEUE_WAIT_NS, &buckets);
        NetStats {
            epoch: 7,
            merged,
            shards: vec![sample_heat(0, 18), sample_heat(1, 6)],
            obs,
        }
    }

    #[test]
    fn stats_roundtrip_bit_exact() {
        let stats = sample_stats();
        let decoded = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(decoded, stats);
    }

    #[test]
    fn snapshot_roundtrips_and_reencodes_byte_equal() {
        let stats = sample_stats();
        let bytes = encode_snapshot(&stats.obs);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, stats.obs);
        // Stable sorted keys: re-encoding the decoded snapshot reproduces
        // the exact bytes, which is what lets merged pool snapshots be
        // compared bit-for-bit.
        assert_eq!(encode_snapshot(&decoded), bytes);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = encode_stats(&sample_stats());
        for cut in 0..bytes.len() {
            assert!(decode_stats(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn imbalance_and_hottest() {
        let stats = sample_stats();
        assert_eq!(stats.hottest().unwrap().shard, 0);
        // max 18, mean 12 → 1.5
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
        let empty = NetStats {
            epoch: 0,
            merged: ServiceReport::merged([]),
            shards: vec![],
            obs: Snapshot::new(),
        };
        assert_eq!(empty.imbalance(), 1.0);
        assert!(empty.hottest().is_none());
        // The display table renders without panicking.
        assert!(format!("{stats}").contains("imbalance"));
    }
}
