//! The client side of the wire: a blocking [`RenderClient`] mirroring the
//! in-process service API — `render` blocks like `RenderService::submit`
//! (waiting out admission bounds *and* the render), `submit` is the
//! fire-and-forget `try_submit` analogue returning a [`NetTicket`] to
//! redeem later, and every in-process error type crosses the socket intact:
//! admission shedding comes back as the same [`AdmissionError`], a caught
//! render panic as the same [`FrameError`] message.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mgpu_serve::{AdmissionError, FrameError};

use crate::heat::{decode_stats, NetStats};
use crate::wire::{
    decode_frame, decode_message, decode_pong, decode_rejected, decode_throttled, decode_ticket,
    decode_tickets_full, encode_ping, encode_request, encode_ticket, opcode, read_frame,
    write_frame, NetFrame, NetSceneRequest, WireError, DEFAULT_MAX_PAYLOAD,
};

/// Why a client call failed, with the server-side error types restored.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or framing problem (includes the server's `BAD_REQUEST`
    /// echo of a [`WireError`] we caused).
    Wire(WireError),
    /// The server's admission control shed this submission (fire-and-forget
    /// path only; blocking renders wait instead).
    Admission(AdmissionError),
    /// The per-session rate limiter refused the request; retry no sooner
    /// than `retry_after`.
    Throttled { retry_after: Duration },
    /// The session holds too many un-redeemed tickets; redeem some, then
    /// retry (fire-and-forget path only).
    TicketsFull { outstanding: u64, limit: u64 },
    /// The render itself failed server-side (e.g. a caught render panic).
    Render(FrameError),
    /// The server answered something this client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(err) => write!(f, "wire error: {err}"),
            ClientError::Admission(err) => write!(f, "admission rejected: {err}"),
            ClientError::Throttled { retry_after } => {
                write!(
                    f,
                    "rate limited: retry in {:.3} s",
                    retry_after.as_secs_f64()
                )
            }
            ClientError::TicketsFull { outstanding, limit } => {
                write!(
                    f,
                    "session holds {outstanding} un-redeemed tickets (limit {limit}): \
                     redeem before submitting more"
                )
            }
            ClientError::Render(err) => write!(f, "render failed: {err}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> ClientError {
        ClientError::Wire(err)
    }
}

/// A redeemable handle from [`RenderClient::submit`] — the wire analogue of
/// an in-process `FrameTicket`. Tickets are connection-scoped: redeem them
/// on the client that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetTicket {
    id: u64,
}

impl NetTicket {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rebuild a ticket from its id (e.g. recorded in a log). Redeeming a
    /// ticket the issuing connection does not know is a typed error, so
    /// this cannot forge frames — only name them.
    pub fn from_id(id: u64) -> NetTicket {
        NetTicket { id }
    }
}

/// Client-side transport tuning: how long to wait for a connection and for
/// each response before declaring the node dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` uses the OS
    /// default (which can be minutes against a black-holed address).
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read of a response. Without it, a node that
    /// accepted the connection but died before replying hangs a blocking
    /// `render` indefinitely. Must exceed the longest legitimate render
    /// (plus queue wait) the workload can produce — a timeout is
    /// indistinguishable from a dead node and poisons the connection.
    pub read_timeout: Option<Duration>,
    /// Cap this client accepts on one response frame (see
    /// [`RenderClient::set_max_payload`]).
    pub max_payload: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: None,
            read_timeout: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// A blocking render-service client over one TCP connection. One session =
/// one connection: the server's rate limiter and ticket table live per
/// connection, and requests are strictly request/response.
pub struct RenderClient {
    stream: TcpStream,
    shards: u32,
    max_payload: u64,
}

impl RenderClient {
    /// Connect and handshake (a `PING` round-trip that also verifies the
    /// protocol version and learns the server's shard count). Uses the
    /// default [`ClientConfig`] — no timeouts; see
    /// [`RenderClient::connect_with`] to bound connect and response waits.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RenderClient, ClientError> {
        RenderClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit transport bounds. A read timeout surfaces as
    /// a [`ClientError::Wire`] I/O error on the call that hit it; treat the
    /// connection as poisoned afterwards (the late reply, if any, would
    /// desynchronize the request/response stream).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<RenderClient, ClientError> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr).map_err(WireError::from)?,
            Some(bound) => {
                // `connect_timeout` needs concrete addresses: try each
                // resolution, keeping the last error.
                let addrs: Vec<_> = addr.to_socket_addrs().map_err(WireError::from)?.collect();
                let mut last = WireError::Io(std::io::ErrorKind::AddrNotAvailable);
                let mut stream = None;
                for candidate in addrs {
                    match TcpStream::connect_timeout(&candidate, bound) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = e.into(),
                    }
                }
                stream.ok_or(last)?
            }
        };
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(WireError::from)?;
        let mut client = RenderClient {
            stream,
            shards: 0,
            max_payload: config.max_payload,
        };
        client.shards = client.ping()?;
        Ok(client)
    }

    /// Shards behind the server (learned during the handshake).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Raise (or lower) the cap this client accepts on one response frame.
    /// A 1024² float-RGBA frame is 16 MiB; request images larger than
    /// ~2048² exceed the 64 MiB default and need a higher bound *before*
    /// the render call — once an oversized response header is rejected,
    /// the unread payload poisons the connection for further requests.
    pub fn set_max_payload(&mut self, max_payload: u64) {
        self.max_payload = max_payload;
    }

    /// Round-trip a `PING`; returns the server's shard count.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        let token = 0x6D67_7075; // arbitrary echo payload
        let (op, payload) = self.round_trip(opcode::PING, &encode_ping(token))?;
        match op {
            opcode::PONG => {
                let (echoed, shards) = decode_pong(&payload)?;
                if echoed != token {
                    return Err(ClientError::Protocol(format!(
                        "pong echoed {echoed:#x}, expected {token:#x}"
                    )));
                }
                Ok(shards)
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Render one frame, blocking until it is delivered — the wire analogue
    /// of `ShardedService::submit(...).wait()`, including blocking at the
    /// admission bound. Distinguishes throttling and render failures as
    /// typed errors.
    pub fn render(&mut self, request: &NetSceneRequest) -> Result<NetFrame, ClientError> {
        let (op, payload) = self.round_trip(opcode::RENDER, &encode_request(request))?;
        self.frame_response(op, &payload)
    }

    /// Fire-and-forget submit — the wire analogue of `try_submit`: sheds
    /// with [`ClientError::Admission`] under overload instead of blocking,
    /// and returns a ticket immediately while the server renders. Redeem
    /// with [`RenderClient::redeem`], or drop the ticket (the frame still
    /// lands in the server's cache).
    pub fn submit(&mut self, request: &NetSceneRequest) -> Result<NetTicket, ClientError> {
        let (op, payload) = self.round_trip(opcode::SUBMIT, &encode_request(request))?;
        match op {
            opcode::SUBMITTED => Ok(NetTicket {
                id: decode_ticket(&payload)?,
            }),
            opcode::REJECTED => Err(ClientError::Admission(decode_rejected(&payload)?)),
            opcode::THROTTLED => Err(ClientError::Throttled {
                retry_after: decode_throttled(&payload)?,
            }),
            opcode::TICKETS_FULL => {
                let (outstanding, limit) = decode_tickets_full(&payload)?;
                Err(ClientError::TicketsFull { outstanding, limit })
            }
            other => Err(self.unexpected(other, &payload)),
        }
    }

    /// Block until a submitted frame is ready. A ticket redeems once.
    pub fn redeem(&mut self, ticket: NetTicket) -> Result<NetFrame, ClientError> {
        let (op, payload) = self.round_trip(opcode::REDEEM, &encode_ticket(ticket.id))?;
        self.frame_response(op, &payload)
    }

    /// Fetch the merged service report and per-shard heat metrics.
    pub fn stats(&mut self) -> Result<NetStats, ClientError> {
        let (op, payload) = self.round_trip(opcode::STATS, &[])?;
        match op {
            opcode::STATS_REPORT => Ok(decode_stats(&payload)?),
            other => Err(self.unexpected(other, &payload)),
        }
    }

    fn round_trip(&mut self, op: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, op, payload)?;
        Ok(read_frame(&mut self.stream, self.max_payload)?)
    }

    fn frame_response(&mut self, op: u8, payload: &[u8]) -> Result<NetFrame, ClientError> {
        match op {
            opcode::FRAME => Ok(decode_frame(payload)?),
            opcode::FAILED => Err(ClientError::Render(FrameError::new(decode_message(
                payload,
            )?))),
            opcode::THROTTLED => Err(ClientError::Throttled {
                retry_after: decode_throttled(payload)?,
            }),
            opcode::REJECTED => Err(ClientError::Admission(decode_rejected(payload)?)),
            other => Err(self.unexpected(other, payload)),
        }
    }

    /// Interpret an out-of-protocol reply: `BAD_REQUEST` echoes the typed
    /// error the server saw; anything else is a protocol violation.
    fn unexpected(&self, op: u8, payload: &[u8]) -> ClientError {
        if op == opcode::BAD_REQUEST {
            match decode_message(payload) {
                Ok(echo) => ClientError::Protocol(format!("server rejected request: {echo}")),
                Err(err) => ClientError::Wire(err),
            }
        } else {
            ClientError::Protocol(format!("unexpected response opcode {op:#04x}"))
        }
    }
}
