//! The client side of the wire: a **pipelined** [`RenderClient`] over one
//! TCP connection. Every request carries a fresh `request_id` and the
//! server replies in *completion* order, so one connection carries many
//! in-flight renders at once:
//!
//! - [`RenderClient::render`] blocks until the frame arrives — the wire
//!   analogue of `ShardedService::submit(...).wait()` — but concurrent
//!   `render` calls from many threads interleave on the same socket.
//! - [`RenderClient::begin_render`] / [`RenderClient::finish_render`]
//!   split that into an issue half (returns immediately with a
//!   [`PendingRender`]) and a redeem half, so a single thread can hold
//!   many renders in flight and collect them in any order.
//! - [`RenderClient::submit`] stays the `try_submit` analogue: it waits
//!   only for the server's admission verdict (a fast ack), returning a
//!   [`NetTicket`] while the render proceeds server-side.
//!
//! Every in-process error type still crosses the socket intact: admission
//! shedding comes back as the same [`AdmissionError`], a caught render
//! panic as the same [`FrameError`] message.
//!
//! Internally the client is a mailbox: all methods take `&self` and are
//! safe to call from many threads. Writers serialize whole frames through
//! one lock; on the read side one caller at a time is elected *reader* and
//! pulls the next frame off the socket, filing it in an inbox keyed by
//! `request_id` — everyone else parks on a condvar and checks the inbox
//! when woken. A transport error poisons the mailbox: every waiter (and
//! every later call) fails with the same typed error, because a
//! desynchronized byte stream cannot be trusted again.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use mgpu_obs::CompletedTrace;
use mgpu_serve::{AdmissionError, FrameError};

use crate::heat::{decode_stats, NetStats};
use crate::wire::{
    decode_drain_state, decode_epoch, decode_frame, decode_message, decode_pong, decode_prewarmed,
    decode_rejected, decode_throttled, decode_ticket, decode_tickets_full, decode_traces,
    decode_unsupported_version, encode_epoch, encode_ping, encode_prewarm, encode_request,
    encode_ticket, encode_traces_request, opcode, read_frame, write_frame, DrainState, NetFrame,
    NetSceneRequest, WireError, DEFAULT_MAX_PAYLOAD,
};

/// Why a client call failed, with the server-side error types restored.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or framing problem (includes the server's `BAD_REQUEST`
    /// echo of a [`WireError`] we caused).
    Wire(WireError),
    /// The server's admission control shed this submission (fire-and-forget
    /// path only; blocking renders wait instead).
    Admission(AdmissionError),
    /// The per-session rate limiter refused the request; retry no sooner
    /// than `retry_after`.
    Throttled { retry_after: Duration },
    /// The session holds too many outstanding requests (in-flight renders
    /// plus un-redeemed tickets); consume some replies, then retry.
    TicketsFull { outstanding: u64, limit: u64 },
    /// The render itself failed server-side (e.g. a caught render panic).
    Render(FrameError),
    /// The node is draining (wire v4): it refuses new work but still
    /// answers in-flight renders and parked redeems. `epoch` is the
    /// directory epoch the drain was announced under — a client routing
    /// here is using stale placement.
    Draining { epoch: u64 },
    /// The node finished draining and said `GOODBYE` — every outstanding
    /// request was answered and the connection is done for good.
    Goodbye,
    /// The server answered something this client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(err) => write!(f, "wire error: {err}"),
            ClientError::Admission(err) => write!(f, "admission rejected: {err}"),
            ClientError::Throttled { retry_after } => {
                write!(
                    f,
                    "rate limited: retry in {:.3} s",
                    retry_after.as_secs_f64()
                )
            }
            ClientError::TicketsFull { outstanding, limit } => {
                write!(
                    f,
                    "session holds {outstanding} outstanding requests (limit {limit}): \
                     consume replies before submitting more"
                )
            }
            ClientError::Render(err) => write!(f, "render failed: {err}"),
            ClientError::Draining { epoch } => {
                write!(
                    f,
                    "node is draining (directory epoch {epoch}): route elsewhere"
                )
            }
            ClientError::Goodbye => write!(f, "node drained and said goodbye"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> ClientError {
        ClientError::Wire(err)
    }
}

/// A redeemable handle from [`RenderClient::submit`] — the wire analogue of
/// an in-process `FrameTicket`. Its id *is* the `SUBMIT` frame's
/// `request_id`. Tickets are connection-scoped: redeem them on the client
/// that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetTicket {
    id: u64,
}

impl NetTicket {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rebuild a ticket from its id (e.g. recorded in a log). Redeeming a
    /// ticket the issuing connection does not know is a typed error, so
    /// this cannot forge frames — only name them.
    pub fn from_id(id: u64) -> NetTicket {
        NetTicket { id }
    }
}

/// An issued-but-uncollected render from [`RenderClient::begin_render`].
/// Collect it with [`RenderClient::finish_render`] — in any order relative
/// to other pending renders on the same connection. Dropping it abandons
/// the reply (the frame still arrives and sits in the client's inbox until
/// the connection is dropped).
#[must_use = "collect the frame with RenderClient::finish_render"]
#[derive(Debug)]
pub struct PendingRender {
    id: u64,
}

impl PendingRender {
    /// The `request_id` the reply will carry (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Client-side transport tuning: how long to wait for a connection and for
/// each response before declaring the node dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` uses the OS
    /// default (which can be minutes against a black-holed address).
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read of a response. Without it, a node that
    /// accepted the connection but died before replying hangs a blocking
    /// `render` indefinitely. Must exceed the longest legitimate render
    /// (plus queue wait) the workload can produce — a timeout is
    /// indistinguishable from a dead node and poisons the connection.
    pub read_timeout: Option<Duration>,
    /// Cap this client accepts on one response frame (see
    /// [`RenderClient::set_max_payload`]).
    pub max_payload: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: None,
            read_timeout: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Replies filed by `request_id`, plus the shared connection state.
struct Mailbox {
    inbox: HashMap<u64, (u8, Vec<u8>)>,
    /// Someone currently holds the read half pulling the next frame.
    reading: bool,
    /// A transport-level failure poisons the whole connection: everyone
    /// gets the same typed error.
    dead: Option<ClientError>,
}

/// A pipelined render-service client over one TCP connection. One session =
/// one connection: the server's rate limiter and outstanding-request table
/// live per connection. All methods take `&self`; share a client across
/// threads (e.g. in an `Arc`) and their requests multiplex on the socket.
pub struct RenderClient {
    write: Mutex<TcpStream>,
    read: Mutex<TcpStream>,
    mail: Mutex<Mailbox>,
    delivered: Condvar,
    next_id: AtomicU64,
    max_payload: AtomicU64,
    shards: u32,
}

impl RenderClient {
    /// Connect and handshake (a `PING` round-trip that also verifies the
    /// protocol version and learns the server's shard count). Uses the
    /// default [`ClientConfig`] — no timeouts; see
    /// [`RenderClient::connect_with`] to bound connect and response waits.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RenderClient, ClientError> {
        RenderClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit transport bounds. A read timeout surfaces as
    /// a [`ClientError::Wire`] I/O error on the call that hit it and
    /// poisons the connection (a late reply would desynchronize the frame
    /// stream).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<RenderClient, ClientError> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr).map_err(WireError::from)?,
            Some(bound) => {
                // `connect_timeout` needs concrete addresses: try each
                // resolution, keeping the last error.
                let addrs: Vec<_> = addr.to_socket_addrs().map_err(WireError::from)?.collect();
                let mut last = WireError::Io(std::io::ErrorKind::AddrNotAvailable);
                let mut stream = None;
                for candidate in addrs {
                    match TcpStream::connect_timeout(&candidate, bound) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = e.into(),
                    }
                }
                stream.ok_or(last)?
            }
        };
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(WireError::from)?;
        let read = stream.try_clone().map_err(WireError::from)?;
        let mut client = RenderClient {
            write: Mutex::new(stream),
            read: Mutex::new(read),
            mail: Mutex::new(Mailbox {
                inbox: HashMap::new(),
                reading: false,
                dead: None,
            }),
            delivered: Condvar::new(),
            next_id: AtomicU64::new(1),
            max_payload: AtomicU64::new(config.max_payload),
            shards: 0,
        };
        client.shards = client.ping()?;
        Ok(client)
    }

    /// Shards behind the server (learned during the handshake).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Raise (or lower) the cap this client accepts on one response frame.
    /// A 1024² float-RGBA frame is 16 MiB; request images larger than
    /// ~2048² exceed the 64 MiB default and need a higher bound *before*
    /// the render call — once an oversized response header is rejected,
    /// the unread payload poisons the connection for further requests.
    pub fn set_max_payload(&self, max_payload: u64) {
        self.max_payload.store(max_payload, Ordering::Relaxed);
    }

    /// Round-trip a `PING`; returns the server's shard count.
    pub fn ping(&self) -> Result<u32, ClientError> {
        let token = 0x6D67_7075; // arbitrary echo payload
        let id = self.fresh_id();
        self.send(opcode::PING, id, &encode_ping(token))?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::PONG => {
                let (echoed, shards) = decode_pong(&payload)?;
                if echoed != token {
                    return Err(ClientError::Protocol(format!(
                        "pong echoed {echoed:#x}, expected {token:#x}"
                    )));
                }
                Ok(shards)
            }
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Render one frame, blocking until it is delivered. Unlike the old
    /// strict request/response wire, concurrent `render` calls (from many
    /// threads sharing this client) all proceed at once; replies are
    /// matched by `request_id`. Admission shedding surfaces as a typed
    /// [`ClientError::Admission`] — the server answers inline instead of
    /// parking the request (retry loops live in `RemoteBackend`).
    pub fn render(&self, request: &NetSceneRequest) -> Result<NetFrame, ClientError> {
        let pending = self.begin_render(request)?;
        self.finish_render(pending)
    }

    /// Issue a render without waiting for anything: the request frame is
    /// written and a [`PendingRender`] returned while the server works.
    /// Issue as many as the server's per-session outstanding bound allows,
    /// then collect them in any order with [`RenderClient::finish_render`].
    pub fn begin_render(&self, request: &NetSceneRequest) -> Result<PendingRender, ClientError> {
        let id = self.fresh_id();
        self.send(opcode::RENDER, id, &encode_request(request))?;
        Ok(PendingRender { id })
    }

    /// Collect one pending render — blocks until *its* reply arrives,
    /// regardless of how many other requests are in flight or in what
    /// order the server finishes them.
    pub fn finish_render(&self, pending: PendingRender) -> Result<NetFrame, ClientError> {
        let (op, payload) = self.await_reply(pending.id)?;
        frame_response(op, &payload)
    }

    /// Fire-and-forget submit — the wire analogue of `try_submit`: waits
    /// only for the server's admission verdict (a fast ack sent before the
    /// render runs), shedding with [`ClientError::Admission`] under
    /// overload, and returns a ticket while the server renders. Redeem
    /// with [`RenderClient::redeem`], or drop the ticket (the frame still
    /// lands in the server's cache).
    pub fn submit(&self, request: &NetSceneRequest) -> Result<NetTicket, ClientError> {
        let id = self.fresh_id();
        self.send(opcode::SUBMIT, id, &encode_request(request))?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::SUBMITTED => Ok(NetTicket {
                id: decode_ticket(&payload)?,
            }),
            opcode::REJECTED => Err(ClientError::Admission(decode_rejected(&payload)?)),
            opcode::THROTTLED => Err(ClientError::Throttled {
                retry_after: decode_throttled(&payload)?,
            }),
            opcode::TICKETS_FULL => {
                let (outstanding, limit) = decode_tickets_full(&payload)?;
                Err(ClientError::TicketsFull { outstanding, limit })
            }
            opcode::DRAINING => Err(ClientError::Draining {
                epoch: decode_epoch(&payload)?,
            }),
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Block until a submitted frame is ready. A ticket redeems once.
    pub fn redeem(&self, ticket: NetTicket) -> Result<NetFrame, ClientError> {
        let id = self.fresh_id();
        self.send(opcode::REDEEM, id, &encode_ticket(ticket.id))?;
        let (op, payload) = self.await_reply(id)?;
        frame_response(op, &payload)
    }

    /// Fetch the merged service report, per-shard heat metrics and the
    /// server's obs snapshot (STATS v2).
    pub fn stats(&self) -> Result<NetStats, ClientError> {
        let id = self.fresh_id();
        self.send(opcode::STATS, id, &[])?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::STATS_REPORT => Ok(decode_stats(&payload)?),
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Fetch the server's most recently completed request traces, newest
    /// first, at most `max`. Trace ids are the `request_id`s the requests
    /// were submitted under, so a client can find its own.
    pub fn traces(&self, max: u32) -> Result<Vec<CompletedTrace>, ClientError> {
        let id = self.fresh_id();
        self.send(opcode::TRACES, id, &encode_traces_request(max))?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::TRACES_REPLY => Ok(decode_traces(&payload)?),
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Ask the node to drain (wire v4): stop accepting new RENDER/SUBMIT,
    /// keep answering in-flight work and parked redeems, `GOODBYE` when
    /// empty. `epoch` is the directory epoch the drain belongs to — the
    /// node echoes it in STATS so stale clients are detectable. Draining
    /// an already-draining node is idempotent. Returns the node's drain
    /// state (including how much work is still outstanding).
    pub fn drain(&self, epoch: u64) -> Result<DrainState, ClientError> {
        self.drain_control(opcode::DRAIN, epoch)
    }

    /// Undo a drain: the node accepts new work again. Resuming a node that
    /// is not draining is idempotent.
    pub fn resume(&self, epoch: u64) -> Result<DrainState, ClientError> {
        self.drain_control(opcode::RESUME, epoch)
    }

    fn drain_control(&self, op: u8, epoch: u64) -> Result<DrainState, ClientError> {
        let id = self.fresh_id();
        self.send(op, id, &encode_epoch(epoch))?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::DRAIN_STATE => Ok(decode_drain_state(&payload)?),
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Hint the node to populate its plan cache for `request`'s batch key
    /// off the hot path (the migration pre-warm of the elastic pool), and
    /// announce directory `epoch` while at it. Returns the shard routed to
    /// and whether a plan was actually built (`false` = already warm).
    pub fn prewarm(
        &self,
        epoch: u64,
        request: &NetSceneRequest,
    ) -> Result<(u32, bool), ClientError> {
        let id = self.fresh_id();
        self.send(opcode::PREWARM, id, &encode_prewarm(epoch, request))?;
        let (op, payload) = self.await_reply(id)?;
        match op {
            opcode::PREWARMED => Ok(decode_prewarmed(&payload)?),
            opcode::DRAINING => Err(ClientError::Draining {
                epoch: decode_epoch(&payload)?,
            }),
            other => Err(unexpected(other, &payload)),
        }
    }

    /// Request ids only need to be unique among a connection's
    /// *outstanding* requests; a monotone counter never reuses one at all.
    /// 0 is reserved for the server's unsolicited frames.
    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Write one whole request frame (serialized so concurrent requests
    /// never interleave bytes). Fails fast if the connection is poisoned.
    fn send(&self, op: u8, request_id: u64, payload: &[u8]) -> Result<(), ClientError> {
        if let Some(dead) = &self.mail.lock().expect("client mailbox poisoned").dead {
            return Err(dead.clone());
        }
        let mut stream = self.write.lock().expect("client write half poisoned");
        write_frame(&mut *stream, op, request_id, payload)?;
        Ok(())
    }

    /// Block until the reply for `id` is in the inbox. Leader/follower:
    /// whoever arrives while nobody is reading takes the read half and
    /// pulls exactly one frame, files it, and wakes everyone; followers
    /// wait on the condvar and re-check. Each frame is read by *somebody*,
    /// so no reply can starve even if its requester arrives late.
    fn await_reply(&self, id: u64) -> Result<(u8, Vec<u8>), ClientError> {
        let mut mail = self.mail.lock().expect("client mailbox poisoned");
        loop {
            if let Some(reply) = mail.inbox.remove(&id) {
                return Ok(reply);
            }
            if let Some(dead) = &mail.dead {
                return Err(dead.clone());
            }
            if mail.reading {
                mail = self.delivered.wait(mail).expect("client mailbox poisoned");
                continue;
            }
            // Become the reader. The mailbox lock is released while
            // blocked on the socket so followers can park and late
            // arrivals can check the inbox.
            mail.reading = true;
            drop(mail);
            let result = {
                let mut stream = self.read.lock().expect("client read half poisoned");
                read_frame(&mut *stream, self.max_payload.load(Ordering::Relaxed))
            };
            mail = self.mail.lock().expect("client mailbox poisoned");
            mail.reading = false;
            match result {
                Ok((op, reply_id, payload)) => self.file(&mut mail, op, reply_id, payload),
                // The first verdict wins: a read error after a GOODBYE is
                // just the drained node closing, not a new failure.
                Err(err) => {
                    if mail.dead.is_none() {
                        mail.dead = Some(ClientError::Wire(err));
                    }
                }
            }
            self.delivered.notify_all();
        }
    }

    /// File one received frame. Unsolicited frames (`request_id` 0) are
    /// connection verdicts, not replies: a version mismatch or an
    /// unframable-input echo poisons the connection with a typed error for
    /// every waiter.
    fn file(&self, mail: &mut Mailbox, op: u8, reply_id: u64, payload: Vec<u8>) {
        if reply_id != 0 {
            mail.inbox.insert(reply_id, (op, payload));
            return;
        }
        if mail.dead.is_some() {
            return; // the first verdict wins
        }
        mail.dead = Some(match op {
            opcode::UNSUPPORTED_VERSION => match decode_unsupported_version(&payload) {
                Ok((got, want)) => ClientError::Protocol(format!(
                    "server speaks wire protocol v{want}, this client sent v{got}"
                )),
                Err(err) => ClientError::Wire(err),
            },
            opcode::BAD_REQUEST => match decode_message(&payload) {
                Ok(echo) => ClientError::Protocol(format!("server rejected request: {echo}")),
                Err(err) => ClientError::Wire(err),
            },
            // The drained node answered everything and is closing; every
            // later call on this connection gets the typed goodbye rather
            // than a confusing EOF.
            opcode::GOODBYE => ClientError::Goodbye,
            other => ClientError::Protocol(format!(
                "unsolicited frame with opcode {other:#04x} and request id 0"
            )),
        });
    }
}

fn frame_response(op: u8, payload: &[u8]) -> Result<NetFrame, ClientError> {
    match op {
        opcode::FRAME => Ok(decode_frame(payload)?),
        opcode::FAILED => Err(ClientError::Render(FrameError::new(decode_message(
            payload,
        )?))),
        opcode::THROTTLED => Err(ClientError::Throttled {
            retry_after: decode_throttled(payload)?,
        }),
        opcode::REJECTED => Err(ClientError::Admission(decode_rejected(payload)?)),
        opcode::TICKETS_FULL => {
            let (outstanding, limit) = decode_tickets_full(payload)?;
            Err(ClientError::TicketsFull { outstanding, limit })
        }
        opcode::DRAINING => Err(ClientError::Draining {
            epoch: decode_epoch(payload)?,
        }),
        other => Err(unexpected(other, payload)),
    }
}

/// Interpret an out-of-protocol reply: `BAD_REQUEST` echoes the typed
/// error the server saw; anything else is a protocol violation.
fn unexpected(op: u8, payload: &[u8]) -> ClientError {
    if op == opcode::BAD_REQUEST {
        match decode_message(payload) {
            Ok(echo) => ClientError::Protocol(format!("server rejected request: {echo}")),
            Err(err) => ClientError::Wire(err),
        }
    } else {
        ClientError::Protocol(format!("unexpected response opcode {op:#04x}"))
    }
}
