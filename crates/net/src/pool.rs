//! [`NodePool`]: the first multi-node rung — N [`crate::RenderServer`]s
//! behind one [`RenderBackend`], with placement, connection reuse, retry
//! budgets and failover.
//!
//! ```text
//!                    NodePool (RenderBackend)
//!   BatchKey ──► Directory (rendezvous, same policy as ShardedService)
//!                     │ preferred node, then failover order
//!                     ▼
//!     per-node slot: one shared pipelined RenderClient connection
//!                     │   (all in-flight work multiplexes on it)
//!                     │   Throttled → sleep exact retry_after (budgeted)
//!                     │   connection loss → re-issue only the lost
//!                     │   request ids on the next-ranked node
//!                     ▼
//!              RenderServer … RenderServer   (N processes / hosts)
//! ```
//!
//! Placement uses the *same* rendezvous hash as the in-process
//! [`mgpu_serve::ShardedService`] ([`mgpu_serve::shard::route`]): a batch
//! key's node across processes and its shard within a process are chosen by
//! one consistent rule, so a key keeps hitting the node (and shard) whose
//! plan cache is warm, and growing the directory from N to N+1 nodes only
//! moves ~1/(N+1) of the keys.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mgpu_serve::shard::{ranked, route};
use mgpu_serve::{
    BackendError, BackendFrame, BatchKey, RenderBackend, SceneRequest, ServiceReport,
};

use crate::client::{ClientConfig, ClientError, NetTicket, RenderClient};
use crate::heat::NetStats;
use crate::remote::{backend_error, backend_frame, portable};

/// The placement directory: which render nodes exist, and which one owns a
/// given [`BatchKey`]. Rendezvous-hashed with the exact policy
/// [`mgpu_serve::ShardedService`] uses for in-process shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    addrs: Vec<SocketAddr>,
}

impl Directory {
    /// A directory over the given node addresses (at least one).
    pub fn new(addrs: Vec<SocketAddr>) -> Directory {
        assert!(
            !addrs.is_empty(),
            "a node directory needs at least one node"
        );
        Directory { addrs }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction requires ≥ 1 node
    }

    pub fn addr(&self, node: usize) -> SocketAddr {
        self.addrs[node]
    }

    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The node that owns this key (deterministic; every client with the
    /// same directory agrees without coordination).
    pub fn node_for(&self, key: &BatchKey) -> usize {
        route(key, self.addrs.len())
    }

    /// Every node in preference order for this key: `[0]` is the owner,
    /// the tail is the failover order when the owner is unreachable.
    pub fn ranked(&self, key: &BatchKey) -> Vec<usize> {
        ranked(key, self.addrs.len())
    }
}

/// How much adversity one pool operation absorbs before giving up — the
/// typed contract for "the pool retries so the caller doesn't".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Transport failures (connection refused/lost, protocol violation)
    /// tolerated per operation; each one fails over to the next node in
    /// the key's preference order. At least 1 (the first try itself).
    pub attempts: u32,
    /// Largest single server `retry_after` the pool honors by sleeping;
    /// anything longer is returned to the caller as
    /// [`BackendError::Throttled`] instead of silently stalling.
    pub max_throttle_wait: Duration,
    /// Total sleep budget per operation (throttle waits plus blocked
    /// admission polling). Exhausted → the last refusal is returned.
    pub total_wait: Duration,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget {
            attempts: 4,
            max_throttle_wait: Duration::from_secs(5),
            total_wait: Duration::from_secs(30),
        }
    }
}

/// Pool tuning: the retry budget plus the per-connection transport bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePoolConfig {
    pub retry: RetryBudget,
    /// Connect/read timeouts and payload bound for every pooled
    /// connection (see [`ClientConfig`]).
    pub client: ClientConfig,
}

impl Default for NodePoolConfig {
    /// Unlike a bare [`ClientConfig`], the pool defaults to *finite*
    /// transport timeouts: the retry budget only meters waits between
    /// attempts, so an unbounded read against a hung (accepting but
    /// unresponsive) node would block forever and failover could never
    /// trigger. The 120 s read bound must exceed the slowest legitimate
    /// render + queue wait — raise it for heavyweight workloads.
    fn default() -> NodePoolConfig {
        NodePoolConfig {
            retry: RetryBudget::default(),
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(5)),
                read_timeout: Some(Duration::from_secs(120)),
                ..ClientConfig::default()
            },
        }
    }
}

/// One pooled connection slot. `generation` counts (re)connects, so a
/// ticket issued on a connection that later died can never redeem against
/// the replacement connection's unrelated ticket table. The client is held
/// in an `Arc`: callers clone the handle out and release the slot lock, so
/// one pooled connection carries every caller's in-flight work
/// concurrently — the pipelined wire multiplexes them by `request_id`.
struct NodeSlot {
    client: Option<Arc<RenderClient>>,
    generation: u64,
}

/// A redeemable handle from the pool's submit paths: pinned to the node
/// *and the exact connection* that issued it — server-side ticket tables
/// are per-connection, so a ticket does not survive its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolTicket {
    node: usize,
    generation: u64,
    ticket: NetTicket,
}

impl PoolTicket {
    /// The node this ticket's frame is parked on.
    pub fn node(&self) -> usize {
        self.node
    }
}

/// Poll interval for the blocking submit while the owning node sheds for
/// admission (mirrors the in-process blocking submit, which parks on the
/// queue's condvar — the wire has no condvar to park on).
const ADMISSION_RETRY: Duration = Duration::from_millis(2);

/// N render servers behind one [`RenderBackend`]. Connections are opened
/// lazily and reused per node; requests route by batch key through the
/// [`Directory`]; throttling and node loss are absorbed within the
/// [`RetryBudget`].
pub struct NodePool {
    directory: Directory,
    config: NodePoolConfig,
    nodes: Vec<Mutex<NodeSlot>>,
}

impl NodePool {
    /// A pool over the directory. No I/O happens here: each node's
    /// connection is dialed on first use (and re-dialed after a failure).
    pub fn new(directory: Directory, config: NodePoolConfig) -> NodePool {
        let nodes = (0..directory.len())
            .map(|_| {
                Mutex::new(NodeSlot {
                    client: None,
                    generation: 0,
                })
            })
            .collect();
        NodePool {
            directory,
            config,
            nodes,
        }
    }

    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    pub fn node_count(&self) -> usize {
        self.directory.len()
    }

    /// Which node this request routes to (before any failover).
    pub fn node_for(&self, request: &SceneRequest) -> usize {
        self.directory.node_for(&BatchKey::of(request))
    }

    /// Run `op` on one node's pooled connection, dialing it if needed.
    /// The slot lock is held only to clone the connection handle out — the
    /// operation itself runs unlocked, so concurrent callers multiplex on
    /// the same connection instead of queueing. Returns the slot
    /// generation the operation ran on; transport and protocol failures
    /// poison the slot (the next use re-dials), unless a concurrent
    /// failure already re-dialed it (generation moved on).
    fn on_node<T>(
        &self,
        node: usize,
        op: impl FnOnce(&RenderClient) -> Result<T, ClientError>,
    ) -> Result<(u64, T), ClientError> {
        let (client, generation) = {
            let mut slot = self.nodes[node].lock();
            if slot.client.is_none() {
                let client =
                    RenderClient::connect_with(self.directory.addr(node), self.config.client)?;
                slot.client = Some(Arc::new(client));
                slot.generation += 1;
            }
            (
                Arc::clone(slot.client.as_ref().expect("slot dialed above")),
                slot.generation,
            )
        };
        let result = op(&client);
        if matches!(
            result,
            Err(ClientError::Wire(_)) | Err(ClientError::Protocol(_))
        ) {
            // The connection is no longer trustworthy. Only this caller's
            // own request is lost and re-issued by `drive`; other callers
            // sharing the connection observe their own typed errors and
            // retry their own request ids — nobody replays someone else's
            // work.
            let mut slot = self.nodes[node].lock();
            if slot.generation == generation {
                slot.client = None;
            }
        }
        result.map(|value| (generation, value))
    }

    /// The retry loop shared by every submit flavour: walk the key's node
    /// preference order on transport failures, honor throttle waits (and,
    /// when `blocking`, poll out admission sheds) within the budget.
    fn drive<T>(
        &self,
        key: &BatchKey,
        blocking: bool,
        mut op: impl FnMut(&RenderClient) -> Result<T, ClientError>,
    ) -> Result<(usize, u64, T), BackendError> {
        let order = self.directory.ranked(key);
        let budget = self.config.retry;
        let mut attempts = budget.attempts.max(1);
        let mut waited = Duration::ZERO;
        let mut rank = 0usize;
        loop {
            let node = order[rank % order.len()];
            match self.on_node(node, &mut op) {
                Ok((generation, value)) => return Ok((node, generation, value)),
                Err(ClientError::Throttled { retry_after }) if blocking => {
                    if retry_after > budget.max_throttle_wait
                        || waited + retry_after > budget.total_wait
                    {
                        return Err(BackendError::Throttled { retry_after });
                    }
                    std::thread::sleep(retry_after);
                    waited += retry_after;
                    // Throttle honors don't consume failover attempts: the
                    // node is healthy, just telling us to pace.
                }
                Err(ClientError::Admission(err)) if blocking => {
                    if waited + ADMISSION_RETRY > budget.total_wait {
                        return Err(BackendError::Admission(err));
                    }
                    std::thread::sleep(ADMISSION_RETRY);
                    waited += ADMISSION_RETRY;
                }
                Err(err @ (ClientError::Wire(_) | ClientError::Protocol(_))) => {
                    attempts -= 1;
                    if attempts == 0 {
                        return Err(backend_error(err));
                    }
                    // Fail over: next node in this key's preference order.
                    rank += 1;
                }
                // Semantic refusals (admission/tickets-full on the
                // non-blocking path, render failures) belong to the caller.
                Err(err) => return Err(backend_error(err)),
            }
        }
    }

    /// Per-node stats (merged report + per-shard heat + obs snapshot),
    /// indexed like the directory; unreachable nodes report their error
    /// instead.
    pub fn node_stats(&self) -> Vec<Result<NetStats, BackendError>> {
        (0..self.node_count())
            .map(|node| {
                self.on_node(node, |client| client.stats())
                    .map(|(_, stats)| stats)
                    .map_err(backend_error)
            })
            .collect()
    }

    /// One pool-wide obs snapshot: every reachable node's STATS v2
    /// snapshot folded together. Counters, gauges and histogram buckets
    /// add *exactly* (no sketch error), so pool-level quantiles are as
    /// trustworthy as a single node's. Fails only when no node answers.
    pub fn obs_snapshot(&self) -> Result<mgpu_obs::Snapshot, BackendError> {
        let mut merged = mgpu_obs::Snapshot::new();
        let mut reached = false;
        let mut last_err = None;
        for stats in self.node_stats() {
            match stats {
                Ok(stats) => {
                    merged.merge(&stats.obs);
                    reached = true;
                }
                Err(err) => last_err = Some(err),
            }
        }
        match (reached, last_err) {
            (false, Some(err)) => Err(err),
            _ => Ok(merged),
        }
    }

    /// Each node's most recent completed request traces (newest first, at
    /// most `max` per node), indexed like the directory.
    pub fn node_traces(
        &self,
        max: u32,
    ) -> Vec<Result<Vec<mgpu_obs::CompletedTrace>, BackendError>> {
        (0..self.node_count())
            .map(|node| {
                self.on_node(node, |client| client.traces(max))
                    .map(|(_, traces)| traces)
                    .map_err(backend_error)
            })
            .collect()
    }
}

impl RenderBackend for NodePool {
    type Ticket = PoolTicket;

    fn submit(&self, request: SceneRequest) -> Result<PoolTicket, BackendError> {
        let net = portable(&request)?;
        let key = BatchKey::of(&request);
        self.drive(&key, true, |client| client.submit(&net))
            .map(|(node, generation, ticket)| PoolTicket {
                node,
                generation,
                ticket,
            })
    }

    fn try_submit(&self, request: SceneRequest) -> Result<PoolTicket, BackendError> {
        let net = portable(&request)?;
        let key = BatchKey::of(&request);
        self.drive(&key, false, |client| client.submit(&net))
            .map(|(node, generation, ticket)| PoolTicket {
                node,
                generation,
                ticket,
            })
    }

    fn redeem(&self, ticket: PoolTicket) -> Result<BackendFrame, BackendError> {
        let client = {
            let slot = self.nodes[ticket.node].lock();
            match &slot.client {
                Some(client) if slot.generation == ticket.generation => Arc::clone(client),
                // The issuing connection is gone; the server dropped its
                // per-connection ticket table with it. Never redeem
                // against a replacement connection: its ticket ids are
                // unrelated.
                _ => {
                    return Err(BackendError::Transport(format!(
                        "ticket {} was issued on a connection to node {} that has \
                         since been lost; its frame cannot be recovered",
                        ticket.ticket.id(),
                        ticket.node
                    )))
                }
            }
        };
        let result = client.redeem(ticket.ticket);
        if matches!(
            result,
            Err(ClientError::Wire(_)) | Err(ClientError::Protocol(_))
        ) {
            let mut slot = self.nodes[ticket.node].lock();
            if slot.generation == ticket.generation {
                slot.client = None;
            }
        }
        result.map(backend_frame).map_err(backend_error)
    }

    fn render(&self, request: SceneRequest) -> Result<BackendFrame, BackendError> {
        let net = portable(&request)?;
        let key = BatchKey::of(&request);
        self.drive(&key, true, |client| client.render(&net))
            .map(|(_, _, frame)| backend_frame(frame))
    }

    /// Pool-level merged accounting: every reachable node's merged report
    /// folded together. Fails only when *no* node answers.
    fn report(&self) -> Result<ServiceReport, BackendError> {
        let mut reports = Vec::new();
        let mut last_err = None;
        for stats in self.node_stats() {
            match stats {
                Ok(stats) => reports.push(stats.merged),
                Err(err) => last_err = Some(err),
            }
        }
        match (reports.is_empty(), last_err) {
            (true, Some(err)) => Err(err),
            _ => Ok(ServiceReport::merged(&reports)),
        }
    }

    /// Disconnect from every node, returning the best-effort merged report
    /// (the servers keep running — a pool is a client-side object).
    fn shutdown(self) -> ServiceReport {
        RenderBackend::report(&self).unwrap_or_else(|_| ServiceReport::merged([]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7000 + i).parse().unwrap())
            .collect()
    }

    /// The directory is the ShardedService policy verbatim: same owner,
    /// same preference order, for every key.
    #[test]
    fn directory_routes_with_the_shard_policy() {
        let dir = Directory::new(addrs(4));
        for tag in 0..64 {
            let key = BatchKey::synthetic(tag);
            assert_eq!(dir.node_for(&key), route(&key, 4));
            assert_eq!(dir.ranked(&key), ranked(&key, 4));
            assert_eq!(dir.ranked(&key)[0], dir.node_for(&key));
        }
    }

    #[test]
    fn directory_growth_only_moves_keys_to_the_new_node() {
        let four = Directory::new(addrs(4));
        let five = Directory::new(addrs(5));
        let mut moved = 0;
        for tag in 0..256 {
            let key = BatchKey::synthetic(tag);
            if five.node_for(&key) != four.node_for(&key) {
                assert_eq!(five.node_for(&key), 4, "moves only to the new node");
                moved += 1;
            }
        }
        assert!(moved > 0 && moved < 128, "{moved}/256 moved");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_directory_is_rejected() {
        Directory::new(Vec::new());
    }

    /// An unreachable node exhausts the budget with a typed transport
    /// error — no panic, no hang (connections are dialed lazily, so the
    /// pool constructs fine).
    #[test]
    fn unreachable_nodes_exhaust_the_budget_with_a_typed_error() {
        use mgpu_cluster::ClusterSpec;
        use mgpu_voldata::Dataset;
        use mgpu_volren::camera::Scene;
        use mgpu_volren::{RenderConfig, TransferFunction};

        // Bind-then-drop two ephemeral ports: both are closed by the time
        // the pool dials them, so connects fail fast with REFUSED.
        let dead: Vec<SocketAddr> = (0..2)
            .map(|_| {
                let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                listener.local_addr().unwrap()
            })
            .collect();
        let pool = NodePool::new(
            Directory::new(dead),
            NodePoolConfig {
                retry: RetryBudget {
                    attempts: 2,
                    ..RetryBudget::default()
                },
                ..NodePoolConfig::default()
            },
        );
        let volume = Dataset::Skull.volume(8);
        let request = SceneRequest {
            spec: ClusterSpec::accelerator_cluster(1),
            scene: Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()),
            volume,
            config: RenderConfig::test_size(8),
            priority: mgpu_serve::Priority::Normal,
        };
        match RenderBackend::render(&pool, request) {
            Err(BackendError::Transport(_)) => {}
            other => panic!("expected transport exhaustion, got {other:?}"),
        }
        assert!(RenderBackend::report(&pool).is_err(), "no node reachable");
    }
}
