//! [`NodePool`]: N [`crate::RenderServer`]s behind one [`RenderBackend`],
//! with placement, connection reuse, retry budgets, failover — and, since
//! wire v4, **elastic membership**: nodes join, drain and leave under live
//! traffic, hot keys migrate, and no admitted frame is ever lost.
//!
//! ```text
//!                    NodePool (RenderBackend)
//!   BatchKey ──► Directory (rendezvous + migration pins, epoch-versioned)
//!                     │ preferred node, then failover order
//!                     ▼
//!     per-node slot: one shared pipelined RenderClient connection
//!                     │   (all in-flight work multiplexes on it)
//!                     │   Throttled → sleep exact retry_after (budgeted)
//!                     │   connection loss / DRAINING → next-ranked node
//!                     ▼
//!              RenderServer … RenderServer   (N processes / hosts)
//! ```
//!
//! Placement uses the *same* rendezvous hash as the in-process
//! [`mgpu_serve::ShardedService`] ([`mgpu_serve::shard::route`]): a batch
//! key's node across processes and its shard within a process are chosen by
//! one consistent rule, so a key keeps hitting the node (and shard) whose
//! plan cache is warm, and growing the directory from N to N+1 nodes only
//! moves ~1/(N+1) of the keys. A [`Directory::migrate`] pin overrides the
//! hash for one key (the rebalancer's lever); every placement change bumps
//! the directory **epoch**, which the pool announces to its nodes with
//! `DRAIN`/`RESUME`/`PREWARM` and the nodes echo in STATS — so a client
//! routing on a stale directory is detectable, not just wrong.
//!
//! **Zero-loss drain.** Every pool ticket is backed by a pending-request
//! table entry pinning the issuing connection (and its generation). A
//! redeem first tries the issuing connection — a *draining* node still
//! answers parked redeems — and if that connection is gone (node crashed,
//! said `GOODBYE`, or was decommissioned), the pool **re-renders the same
//! request on a survivor** instead of reporting loss. Renders are
//! bit-identical across nodes, so the handed-off frame is indistinguishable
//! from the original.

use mgpu_obs::names;
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use mgpu_serve::shard::{ranked, route};
use mgpu_serve::{
    BackendError, BackendFrame, BatchKey, RenderBackend, SceneRequest, ServiceReport,
};

use crate::client::{ClientConfig, ClientError, NetTicket, RenderClient};
use crate::heat::NetStats;
use crate::remote::{backend_error, backend_frame, portable};
use crate::wire::{DrainState, NetSceneRequest};

/// Why a [`Directory`] could not be built or changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// A directory needs at least one node.
    Empty,
    /// The same address appeared twice (or was added twice).
    Duplicate(SocketAddr),
    /// The named node index is not in the directory.
    UnknownNode { node: usize, nodes: usize },
    /// The last node cannot be removed — an empty pool routes nothing.
    LastNode,
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::Empty => write!(f, "a node directory needs at least one node"),
            DirectoryError::Duplicate(addr) => {
                write!(f, "node address {addr} appears more than once")
            }
            DirectoryError::UnknownNode { node, nodes } => {
                write!(f, "node {node} is not in the directory ({nodes} nodes)")
            }
            DirectoryError::LastNode => {
                write!(f, "the last node cannot be removed from the directory")
            }
        }
    }
}

impl std::error::Error for DirectoryError {}

/// The placement directory: which render nodes exist, and which one owns a
/// given [`BatchKey`]. Rendezvous-hashed with the exact policy
/// [`mgpu_serve::ShardedService`] uses for in-process shards, overridden
/// per key by migration **pins**, and versioned by an **epoch** that bumps
/// on every membership or placement change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    addrs: Vec<SocketAddr>,
    /// Migration pins: key → owning node, overriding the rendezvous hash.
    /// Sparse — only rebalanced keys appear; everything else routes by
    /// hash, so pins survive membership changes with index remapping.
    pins: BTreeMap<BatchKey, usize>,
    /// Placement version. Every change (node added/removed, key migrated,
    /// drain initiated) bumps it; nodes echo the highest epoch they have
    /// heard in STATS, so stale routing is observable.
    epoch: u64,
}

impl Directory {
    /// A directory over the given node addresses (at least one, no
    /// duplicates) — a typed [`DirectoryError`] otherwise, caught at
    /// construction instead of panicking at first use.
    pub fn new(addrs: Vec<SocketAddr>) -> Result<Directory, DirectoryError> {
        if addrs.is_empty() {
            return Err(DirectoryError::Empty);
        }
        for (i, addr) in addrs.iter().enumerate() {
            if addrs[..i].contains(addr) {
                return Err(DirectoryError::Duplicate(*addr));
            }
        }
        Ok(Directory {
            addrs,
            pins: BTreeMap::new(),
            epoch: 0,
        })
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction and removal both keep ≥ 1 node
    }

    pub fn addr(&self, node: usize) -> SocketAddr {
        self.addrs[node]
    }

    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The placement version (see struct docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The node that owns this key: its migration pin if one exists, the
    /// rendezvous hash otherwise (deterministic; every client with the
    /// same directory agrees without coordination).
    pub fn node_for(&self, key: &BatchKey) -> usize {
        match self.pins.get(key) {
            Some(&pin) => pin,
            None => route(key, self.addrs.len()),
        }
    }

    /// Every node in preference order for this key: `[0]` is the owner
    /// (pin-aware), the tail is the failover order when the owner is
    /// unreachable.
    pub fn ranked(&self, key: &BatchKey) -> Vec<usize> {
        let mut order = ranked(key, self.addrs.len());
        if let Some(&pin) = self.pins.get(key) {
            if let Some(pos) = order.iter().position(|&node| node == pin) {
                order.remove(pos);
            }
            order.insert(0, pin);
        }
        order
    }

    /// Add a node at the end of the directory. Returns its index. Bumps
    /// the epoch; rendezvous hashing means only ~1/(N+1) of unpinned keys
    /// move — all of them to the new node.
    pub fn add_node(&mut self, addr: SocketAddr) -> Result<usize, DirectoryError> {
        if self.addrs.contains(&addr) {
            return Err(DirectoryError::Duplicate(addr));
        }
        self.addrs.push(addr);
        self.epoch += 1;
        Ok(self.addrs.len() - 1)
    }

    /// Remove a node. Pins pointing at it dissolve (those keys fall back
    /// to the hash); pins past it slide down with the indices. Bumps the
    /// epoch. The last node cannot be removed.
    pub fn remove_node(&mut self, node: usize) -> Result<SocketAddr, DirectoryError> {
        if node >= self.addrs.len() {
            return Err(DirectoryError::UnknownNode {
                node,
                nodes: self.addrs.len(),
            });
        }
        if self.addrs.len() == 1 {
            return Err(DirectoryError::LastNode);
        }
        let addr = self.addrs.remove(node);
        self.pins = std::mem::take(&mut self.pins)
            .into_iter()
            .filter_map(|(key, pin)| match pin.cmp(&node) {
                std::cmp::Ordering::Less => Some((key, pin)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((key, pin - 1)),
            })
            .collect();
        self.epoch += 1;
        Ok(addr)
    }

    /// Migrate one key to `node`: pin it there, or — when `node` is the
    /// key's natural rendezvous owner — just dissolve any existing pin.
    /// Returns whether placement actually changed (the epoch bumps only
    /// then, so repeated migrations are idempotent).
    pub fn migrate(&mut self, key: &BatchKey, node: usize) -> Result<bool, DirectoryError> {
        if node >= self.addrs.len() {
            return Err(DirectoryError::UnknownNode {
                node,
                nodes: self.addrs.len(),
            });
        }
        let changed = if route(key, self.addrs.len()) == node {
            self.pins.remove(key).is_some()
        } else {
            self.pins.insert(key.clone(), node) != Some(node)
        };
        if changed {
            self.epoch += 1;
        }
        Ok(changed)
    }
}

/// How much adversity one pool operation absorbs before giving up — the
/// typed contract for "the pool retries so the caller doesn't".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Transport failures (connection refused/lost, protocol violation,
    /// a node answering `DRAINING`/`GOODBYE`) tolerated per operation;
    /// each one fails over to the next node in the key's preference
    /// order. At least 1 (the first try itself).
    pub attempts: u32,
    /// Largest single server `retry_after` the pool honors by sleeping;
    /// anything longer is returned to the caller as
    /// [`BackendError::Throttled`] instead of silently stalling.
    pub max_throttle_wait: Duration,
    /// Total sleep budget per operation (throttle waits plus blocked
    /// admission polling). Exhausted → the last refusal is returned.
    pub total_wait: Duration,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget {
            attempts: 4,
            max_throttle_wait: Duration::from_secs(5),
            total_wait: Duration::from_secs(30),
        }
    }
}

/// Pool tuning: the retry budget plus the per-connection transport bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePoolConfig {
    pub retry: RetryBudget,
    /// Connect/read timeouts and payload bound for every pooled
    /// connection (see [`ClientConfig`]).
    pub client: ClientConfig,
}

impl Default for NodePoolConfig {
    /// Unlike a bare [`ClientConfig`], the pool defaults to *finite*
    /// transport timeouts: the retry budget only meters waits between
    /// attempts, so an unbounded read against a hung (accepting but
    /// unresponsive) node would block forever and failover could never
    /// trigger. The 120 s read bound must exceed the slowest legitimate
    /// render + queue wait — raise it for heavyweight workloads.
    fn default() -> NodePoolConfig {
        NodePoolConfig {
            retry: RetryBudget::default(),
            client: ClientConfig {
                connect_timeout: Some(Duration::from_secs(5)),
                read_timeout: Some(Duration::from_secs(120)),
                ..ClientConfig::default()
            },
        }
    }
}

/// Why a [`NodePool`] could not be built: configuration problems are typed
/// and caught at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolConfigError {
    /// The node set itself is invalid (empty, duplicates).
    Directory(DirectoryError),
    /// `retry.attempts` must be at least 1 — the first try is an attempt.
    ZeroAttempts,
}

impl std::fmt::Display for PoolConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolConfigError::Directory(err) => write!(f, "invalid node directory: {err}"),
            PoolConfigError::ZeroAttempts => {
                write!(
                    f,
                    "retry.attempts must be ≥ 1 (the first try is an attempt)"
                )
            }
        }
    }
}

impl std::error::Error for PoolConfigError {}

impl From<DirectoryError> for PoolConfigError {
    fn from(err: DirectoryError) -> PoolConfigError {
        PoolConfigError::Directory(err)
    }
}

/// A pool operation failed against one specific node — the index and
/// address say *which*, so an operator can tell a dead node from a hot
/// one when scanning per-node results.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeError {
    /// Directory index at the time of the call.
    pub node: usize,
    /// The node's address (stable across index remaps).
    pub addr: SocketAddr,
    pub error: BackendError,
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} ({}): {}", self.node, self.addr, self.error)
    }
}

impl std::error::Error for NodeError {}

/// One pooled connection slot. `generation` counts (re)connects, so a
/// ticket issued on a connection that later died can never redeem against
/// the replacement connection's unrelated ticket table. The client is held
/// in an `Arc`: callers clone the handle out and release the slot lock, so
/// one pooled connection carries every caller's in-flight work
/// concurrently — the pipelined wire multiplexes them by `request_id`.
/// Slots themselves are `Arc`-shared: pending tickets pin their issuing
/// slot directly, so a slot outlives its directory index (a decommissioned
/// node's parked frames stay redeemable while its connection lives).
struct NodeSlot {
    client: Option<Arc<RenderClient>>,
    generation: u64,
}

/// What a successful `drive` pass yields: the answering node's directory
/// index, its connection slot, the slot generation at issue time, and the
/// operation's value.
type Driven<T> = (usize, Arc<Mutex<NodeSlot>>, u64, T);

/// A redeemable handle from the pool's submit paths. Backed by a
/// pool-side pending entry that remembers the request and the issuing
/// connection — if that connection is gone by redeem time (node crashed,
/// drained away, or was removed), the pool re-renders on a survivor
/// instead of reporting loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolTicket {
    id: u64,
    node: usize,
}

impl PoolTicket {
    /// The node this ticket's frame was submitted to (directory index at
    /// submit time — informational; redemption follows the connection,
    /// not the index).
    pub fn node(&self) -> usize {
        self.node
    }
}

/// What a pool ticket is backed by: enough to redeem directly, and enough
/// to re-render elsewhere when the issuing connection is gone.
struct PendingEntry {
    key: BatchKey,
    net: NetSceneRequest,
    slot: Arc<Mutex<NodeSlot>>,
    generation: u64,
    ticket: NetTicket,
}

/// Per-key traffic the pool has observed — what the rebalancer reads to
/// find hot keys, and the request it replays to pre-warm a destination.
struct KeyTraffic {
    frames: u64,
    last: NetSceneRequest,
}

/// Bound on distinct keys tracked for rebalancing; the coldest entry is
/// evicted when a new key arrives at the cap.
const KEY_HEAT_CAP: usize = 64;

/// Poll interval for the blocking submit while the owning node sheds for
/// admission (mirrors the in-process blocking submit, which parks on the
/// queue's condvar — the wire has no condvar to park on).
const ADMISSION_RETRY: Duration = Duration::from_millis(2);

/// Membership + placement, mutated together under one lock so routing
/// never sees a directory/slot mismatch.
struct PoolState {
    directory: Directory,
    nodes: Vec<Arc<Mutex<NodeSlot>>>,
    /// Nodes being drained: excluded from new-work routing (they would
    /// refuse with `DRAINING` anyway — skipping saves the round-trip).
    draining: Vec<bool>,
}

fn fresh_slot() -> Arc<Mutex<NodeSlot>> {
    Arc::new(Mutex::new(NodeSlot {
        client: None,
        generation: 0,
    }))
}

/// N render servers behind one [`RenderBackend`]. Connections are opened
/// lazily and reused per node; requests route by batch key through the
/// [`Directory`]; throttling and node loss are absorbed within the
/// [`RetryBudget`]. The directory is *live*: [`NodePool::add_node`],
/// [`NodePool::remove_node`], [`NodePool::migrate`] and
/// [`NodePool::drain_node`] reshape the pool under traffic.
pub struct NodePool {
    state: RwLock<PoolState>,
    config: NodePoolConfig,
    /// Un-redeemed pool tickets, keyed by [`PoolTicket`] id.
    pending: Mutex<HashMap<u64, PendingEntry>>,
    next_ticket: AtomicU64,
    key_heat: Mutex<HashMap<BatchKey, KeyTraffic>>,
}

impl NodePool {
    /// A pool over an already-validated directory. No I/O happens here:
    /// each node's connection is dialed on first use (and re-dialed after
    /// a failure).
    pub fn new(directory: Directory, config: NodePoolConfig) -> NodePool {
        let nodes = (0..directory.len()).map(|_| fresh_slot()).collect();
        let draining = vec![false; directory.len()];
        NodePool {
            state: RwLock::new(PoolState {
                directory,
                nodes,
                draining,
            }),
            config,
            pending: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(1),
            key_heat: Mutex::new(HashMap::new()),
        }
    }

    /// Build a pool straight from addresses, validating both the node set
    /// and the config — every rejection a typed [`PoolConfigError`].
    pub fn try_new(
        addrs: Vec<SocketAddr>,
        config: NodePoolConfig,
    ) -> Result<NodePool, PoolConfigError> {
        if config.retry.attempts == 0 {
            return Err(PoolConfigError::ZeroAttempts);
        }
        Ok(NodePool::new(Directory::new(addrs)?, config))
    }

    /// A point-in-time copy of the placement directory (membership, pins,
    /// epoch). The live directory can only be changed through the pool's
    /// own methods.
    pub fn directory(&self) -> Directory {
        self.state.read().directory.clone()
    }

    /// The current placement epoch (see [`Directory::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.state.read().directory.epoch()
    }

    pub fn node_count(&self) -> usize {
        self.state.read().directory.len()
    }

    /// Which node this request routes to (before any failover).
    pub fn node_for(&self, request: &SceneRequest) -> usize {
        self.state.read().directory.node_for(&BatchKey::of(request))
    }

    /// Address + shared slot for one node, if it is (still) in the
    /// directory.
    fn slot_for(&self, node: usize) -> Option<(SocketAddr, Arc<Mutex<NodeSlot>>)> {
        let state = self.state.read();
        let addr = *state.directory.addrs().get(node)?;
        let slot = Arc::clone(state.nodes.get(node)?);
        Some((addr, slot))
    }

    /// Run `op` on one node's pooled connection, dialing it if needed.
    /// The slot lock is held only to clone the connection handle out — the
    /// operation itself runs unlocked, so concurrent callers multiplex on
    /// the same connection instead of queueing. Returns the slot and the
    /// generation the operation ran on; transport and protocol failures
    /// (and a `GOODBYE`) poison the slot so the next use re-dials, unless
    /// a concurrent failure already re-dialed it (generation moved on).
    fn on_node<T>(
        &self,
        node: usize,
        op: impl FnOnce(&RenderClient) -> Result<T, ClientError>,
    ) -> Result<(Arc<Mutex<NodeSlot>>, u64, T), ClientError> {
        let Some((addr, slot)) = self.slot_for(node) else {
            return Err(ClientError::Protocol(format!(
                "node {node} is not in the directory"
            )));
        };
        let (client, generation) = {
            let mut guard = slot.lock();
            if guard.client.is_none() {
                let client = RenderClient::connect_with(addr, self.config.client)?;
                guard.client = Some(Arc::new(client));
                guard.generation += 1;
            }
            (
                Arc::clone(guard.client.as_ref().expect("slot dialed above")),
                guard.generation,
            )
        };
        let result = op(&client);
        if matches!(
            result,
            Err(ClientError::Wire(_)) | Err(ClientError::Protocol(_)) | Err(ClientError::Goodbye)
        ) {
            // The connection is no longer trustworthy. Only this caller's
            // own request is lost and re-issued by `drive`; other callers
            // sharing the connection observe their own typed errors and
            // retry their own request ids — nobody replays someone else's
            // work.
            let mut guard = slot.lock();
            if guard.generation == generation {
                guard.client = None;
            }
        }
        result.map(|value| (slot, generation, value))
    }

    /// The retry loop shared by every submit flavour: walk the key's node
    /// preference order (skipping nodes the pool is draining) on transport
    /// failures and `DRAINING` refusals, honor throttle waits (and, when
    /// `blocking`, poll out admission sheds) within the budget.
    fn drive<T>(
        &self,
        key: &BatchKey,
        blocking: bool,
        mut op: impl FnMut(&RenderClient) -> Result<T, ClientError>,
    ) -> Result<Driven<T>, BackendError> {
        let order = {
            let state = self.state.read();
            let order = state.directory.ranked(key);
            let usable: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&node| !state.draining[node])
                .collect();
            // With the whole pool draining there is nowhere better to go;
            // let the typed DRAINING refusals surface.
            if usable.is_empty() {
                order
            } else {
                usable
            }
        };
        let budget = self.config.retry;
        let mut attempts = budget.attempts.max(1);
        let mut waited = Duration::ZERO;
        let mut rank = 0usize;
        loop {
            let node = order[rank % order.len()];
            match self.on_node(node, &mut op) {
                Ok((slot, generation, value)) => return Ok((node, slot, generation, value)),
                Err(ClientError::Throttled { retry_after }) if blocking => {
                    if retry_after > budget.max_throttle_wait
                        || waited + retry_after > budget.total_wait
                    {
                        return Err(BackendError::Throttled { retry_after });
                    }
                    std::thread::sleep(retry_after);
                    waited += retry_after;
                    // Throttle honors don't consume failover attempts: the
                    // node is healthy, just telling us to pace.
                }
                Err(ClientError::Admission(err)) if blocking => {
                    if waited + ADMISSION_RETRY > budget.total_wait {
                        return Err(BackendError::Admission(err));
                    }
                    std::thread::sleep(ADMISSION_RETRY);
                    waited += ADMISSION_RETRY;
                }
                Err(
                    err @ (ClientError::Wire(_)
                    | ClientError::Protocol(_)
                    | ClientError::Draining { .. }
                    | ClientError::Goodbye),
                ) => {
                    if matches!(err, ClientError::Draining { .. } | ClientError::Goodbye) {
                        // The routing table lagged the drain; the refusal
                        // itself is the re-route signal.
                        mgpu_obs::global().counter(names::POOL_DRAIN_REROUTED).inc();
                    }
                    attempts -= 1;
                    if attempts == 0 {
                        return Err(backend_error(err));
                    }
                    // Fail over: next node in this key's preference order.
                    rank += 1;
                }
                // Semantic refusals (admission/tickets-full on the
                // non-blocking path, render failures) belong to the caller.
                Err(err) => return Err(backend_error(err)),
            }
        }
    }

    /// Note one frame of traffic for `key` (rebalancer fuel).
    fn record_heat(&self, key: &BatchKey, net: &NetSceneRequest) {
        let mut heat = self.key_heat.lock();
        if let Some(traffic) = heat.get_mut(key) {
            traffic.frames += 1;
            traffic.last = net.clone();
            return;
        }
        if heat.len() >= KEY_HEAT_CAP {
            if let Some(coldest) = heat
                .iter()
                .min_by_key(|(_, traffic)| traffic.frames)
                .map(|(key, _)| key.clone())
            {
                heat.remove(&coldest);
            }
        }
        heat.insert(
            key.clone(),
            KeyTraffic {
                frames: 1,
                last: net.clone(),
            },
        );
    }

    /// Keys this pool has routed with their observed frame counts,
    /// hottest first (bounded to the `KEY_HEAT_CAP` hottest keys).
    pub fn key_heat(&self) -> Vec<(BatchKey, u64)> {
        let heat = self.key_heat.lock();
        let mut keys: Vec<(BatchKey, u64)> = heat
            .iter()
            .map(|(key, traffic)| (key.clone(), traffic.frames))
            .collect();
        keys.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        keys
    }

    /// The most recent request observed for `key` — what a rebalancer
    /// replays as a `PREWARM` so the migration destination builds its
    /// plan before the cutover.
    pub fn last_request(&self, key: &BatchKey) -> Option<NetSceneRequest> {
        self.key_heat.lock().get(key).map(|t| t.last.clone())
    }

    // --- elastic membership -----------------------------------------------

    /// Control operations ride the same pooled connection as render
    /// traffic. A completed drain seals that connection with `GOODBYE`,
    /// so the first control attempt after it poisons the slot — retry
    /// once on a fresh dial (which the server serves normally: only
    /// sessions that carried render work are sealed).
    fn control<T>(
        &self,
        node: usize,
        mut op: impl FnMut(&RenderClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        match self.on_node(node, &mut op) {
            Ok((_, _, value)) => Ok(value),
            Err(ClientError::Goodbye) | Err(ClientError::Wire(_)) => {
                self.on_node(node, &mut op).map(|(_, _, value)| value)
            }
            Err(err) => Err(err),
        }
    }

    /// Join a new node (its connection dials lazily like any other).
    /// Returns the new node's directory index; bumps the epoch.
    pub fn add_node(&self, addr: SocketAddr) -> Result<usize, DirectoryError> {
        let mut state = self.state.write();
        let node = state.directory.add_node(addr)?;
        state.nodes.push(fresh_slot());
        state.draining.push(false);
        Ok(node)
    }

    /// Drop a node from the directory. Its un-redeemed tickets stay
    /// redeemable: they pin the slot's connection directly, and if that
    /// connection dies too, redemption re-renders on a survivor. Bumps
    /// the epoch. Use [`NodePool::drain_node`] first for a hitless
    /// decommission.
    pub fn remove_node(&self, node: usize) -> Result<SocketAddr, DirectoryError> {
        let mut state = self.state.write();
        let addr = state.directory.remove_node(node)?;
        state.nodes.remove(node);
        state.draining.remove(node);
        Ok(addr)
    }

    /// Migrate one key to `node` (see [`Directory::migrate`]). The usual
    /// sequence is [`NodePool::prewarm`] first, then migrate — so the
    /// destination's plan cache is warm before traffic cuts over.
    pub fn migrate(&self, key: &BatchKey, node: usize) -> Result<bool, DirectoryError> {
        self.state.write().directory.migrate(key, node)
    }

    /// Start draining `node`: it leaves the routing tables immediately
    /// (epoch bump), and the node itself is told to refuse new work while
    /// answering everything it still owes. Idempotent. Returns the node's
    /// drain state (with its outstanding-work count).
    pub fn drain_node(&self, node: usize) -> Result<DrainState, NodeError> {
        let (addr, epoch) = {
            let mut state = self.state.write();
            let Some(&addr) = state.directory.addrs().get(node) else {
                let nodes = state.directory.len();
                return Err(NodeError {
                    node,
                    addr: "0.0.0.0:0".parse().expect("literal addr"),
                    error: BackendError::Transport(
                        DirectoryError::UnknownNode { node, nodes }.to_string(),
                    ),
                });
            };
            if !state.draining[node] {
                state.draining[node] = true;
                state.directory.bump_epoch();
                mgpu_obs::global()
                    .counter(names::POOL_DRAIN_INITIATED)
                    .inc();
            }
            (addr, state.directory.epoch())
        };
        self.control(node, |client| client.drain(epoch))
            .map_err(|error| NodeError {
                node,
                addr,
                error: backend_error(error),
            })
    }

    /// Undo a drain: the node re-enters the routing tables (epoch bump)
    /// and accepts new work again. Idempotent.
    pub fn resume_node(&self, node: usize) -> Result<DrainState, NodeError> {
        let (addr, epoch) = {
            let mut state = self.state.write();
            let Some(&addr) = state.directory.addrs().get(node) else {
                let nodes = state.directory.len();
                return Err(NodeError {
                    node,
                    addr: "0.0.0.0:0".parse().expect("literal addr"),
                    error: BackendError::Transport(
                        DirectoryError::UnknownNode { node, nodes }.to_string(),
                    ),
                });
            };
            if state.draining[node] {
                state.draining[node] = false;
                state.directory.bump_epoch();
                mgpu_obs::global().counter(names::POOL_DRAIN_RESUMED).inc();
            }
            (addr, state.directory.epoch())
        };
        self.control(node, |client| client.resume(epoch))
            .map_err(|error| NodeError {
                node,
                addr,
                error: backend_error(error),
            })
    }

    /// Has a draining node finished? True once it owes nothing (or has
    /// already said `GOODBYE` / gone away entirely). Only meaningful
    /// after [`NodePool::drain_node`]; a node the pool is not draining
    /// reports `false`.
    pub fn node_drained(&self, node: usize) -> bool {
        let epoch = {
            let state = self.state.read();
            match state.draining.get(node) {
                Some(true) => state.directory.epoch(),
                // Not draining (or unknown): never "drained".
                _ => return false,
            }
        };
        // Re-sending DRAIN is idempotent and returns the live
        // outstanding-work count (the control retry re-dials if the
        // drain's GOODBYE sealed the old connection).
        match self.control(node, |client| client.drain(epoch)) {
            Ok(state) => state.draining && state.outstanding == 0,
            // A refused or lost connection means the node is gone
            // altogether — nothing left to wait for.
            Err(ClientError::Goodbye) | Err(ClientError::Wire(_)) => true,
            Err(_) => false,
        }
    }

    /// Is the pool currently draining `node`?
    pub fn draining(&self, node: usize) -> bool {
        self.state
            .read()
            .draining
            .get(node)
            .copied()
            .unwrap_or(false)
    }

    /// Pre-warm `node`'s plan cache for one request (and announce the
    /// current epoch). The staging happens off the node's hot path; the
    /// reply says which shard was warmed and whether a plan was actually
    /// built (`false` = already warm).
    pub fn prewarm(&self, node: usize, net: &NetSceneRequest) -> Result<(u32, bool), NodeError> {
        let addr = self
            .slot_for(node)
            .map(|(addr, _)| addr)
            .unwrap_or_else(|| "0.0.0.0:0".parse().expect("literal addr"));
        let epoch = self.epoch();
        self.control(node, |client| client.prewarm(epoch, net))
            .inspect(|_| {
                mgpu_obs::global()
                    .counter(names::POOL_REBALANCE_PREWARMS)
                    .inc();
            })
            .map_err(|error| NodeError {
                node,
                addr,
                error: backend_error(error),
            })
    }

    // --- observability ----------------------------------------------------

    /// Per-node stats (merged report + per-shard heat + obs snapshot +
    /// echoed epoch), indexed like the directory; unreachable nodes
    /// report a [`NodeError`] that names the node and address, so a dead
    /// node is distinguishable from a hot one.
    pub fn node_stats(&self) -> Vec<Result<NetStats, NodeError>> {
        let nodes: Vec<(usize, SocketAddr)> = {
            let state = self.state.read();
            state
                .directory
                .addrs()
                .iter()
                .copied()
                .enumerate()
                .collect()
        };
        nodes
            .into_iter()
            .map(|(node, addr)| {
                self.on_node(node, |client| client.stats())
                    .map(|(_, _, stats)| stats)
                    .map_err(|error| NodeError {
                        node,
                        addr,
                        error: backend_error(error),
                    })
            })
            .collect()
    }

    /// One pool-wide obs snapshot: every reachable node's STATS v2
    /// snapshot folded together. Counters, gauges and histogram buckets
    /// add *exactly* (no sketch error), so pool-level quantiles are as
    /// trustworthy as a single node's. Fails only when no node answers —
    /// and then names the last node that refused.
    pub fn obs_snapshot(&self) -> Result<mgpu_obs::Snapshot, BackendError> {
        let mut merged = mgpu_obs::Snapshot::new();
        let mut reached = false;
        let mut last_err = None;
        for stats in self.node_stats() {
            match stats {
                Ok(stats) => {
                    merged.merge(&stats.obs);
                    reached = true;
                }
                Err(err) => last_err = Some(err),
            }
        }
        match (reached, last_err) {
            (false, Some(err)) => Err(BackendError::Transport(err.to_string())),
            _ => Ok(merged),
        }
    }

    /// Each node's most recent completed request traces (newest first, at
    /// most `max` per node), indexed like the directory.
    pub fn node_traces(&self, max: u32) -> Vec<Result<Vec<mgpu_obs::CompletedTrace>, NodeError>> {
        let nodes: Vec<(usize, SocketAddr)> = {
            let state = self.state.read();
            state
                .directory
                .addrs()
                .iter()
                .copied()
                .enumerate()
                .collect()
        };
        nodes
            .into_iter()
            .map(|(node, addr)| {
                self.on_node(node, |client| client.traces(max))
                    .map(|(_, _, traces)| traces)
                    .map_err(|error| NodeError {
                        node,
                        addr,
                        error: backend_error(error),
                    })
            })
            .collect()
    }

    /// Submit through `drive` and park a pending entry so the ticket can
    /// be handed off if the issuing connection dies before redemption.
    fn submit_pending(
        &self,
        request: &SceneRequest,
        blocking: bool,
    ) -> Result<PoolTicket, BackendError> {
        let net = portable(request)?;
        let key = BatchKey::of(request);
        let (node, slot, generation, ticket) =
            self.drive(&key, blocking, |client| client.submit(&net))?;
        self.record_heat(&key, &net);
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().insert(
            id,
            PendingEntry {
                key,
                net,
                slot,
                generation,
                ticket,
            },
        );
        Ok(PoolTicket { id, node })
    }
}

impl RenderBackend for NodePool {
    type Ticket = PoolTicket;

    fn submit(&self, request: SceneRequest) -> Result<PoolTicket, BackendError> {
        self.submit_pending(&request, true)
    }

    fn try_submit(&self, request: SceneRequest) -> Result<PoolTicket, BackendError> {
        self.submit_pending(&request, false)
    }

    /// Redeem a pool ticket — **zero-loss**: first against the issuing
    /// connection (a draining node still answers parked redeems), and if
    /// that connection is gone, by re-rendering the same request on a
    /// surviving node. Renders are bit-identical across nodes, so the
    /// handed-off frame matches the one the lost node would have served.
    fn redeem(&self, ticket: PoolTicket) -> Result<BackendFrame, BackendError> {
        let Some(entry) = self.pending.lock().remove(&ticket.id) else {
            return Err(BackendError::Transport(format!(
                "unknown or already redeemed pool ticket {}",
                ticket.id
            )));
        };
        let direct = {
            let guard = entry.slot.lock();
            match &guard.client {
                Some(client) if guard.generation == entry.generation => Some(Arc::clone(client)),
                // The issuing connection is gone; the server dropped its
                // per-connection ticket table with it. Never redeem
                // against a replacement connection: its ticket ids are
                // unrelated. Fall through to the hand-off below.
                _ => None,
            }
        };
        if let Some(client) = direct {
            match client.redeem(entry.ticket) {
                Ok(frame) => return Ok(backend_frame(frame)),
                // The render itself failed server-side; re-rendering would
                // fail identically (renders are deterministic).
                Err(ClientError::Render(err)) => return Err(BackendError::Render(err)),
                Err(ClientError::Wire(_) | ClientError::Protocol(_) | ClientError::Goodbye) => {
                    // Connection lost mid-redeem: poison the slot and hand
                    // the ticket off.
                    let mut guard = entry.slot.lock();
                    if guard.generation == entry.generation {
                        guard.client = None;
                    }
                }
                Err(other) => return Err(backend_error(other)),
            }
        }
        // Ticket hand-off: the issuing connection (and its parked frame)
        // is unreachable, so re-render the remembered request on whichever
        // node now owns the key. Same request, same deterministic kernel —
        // bit-identical output, zero frames lost.
        mgpu_obs::global().counter(names::POOL_DRAIN_HANDOFFS).inc();
        let net = entry.net;
        self.drive(&entry.key, true, |client| client.render(&net))
            .map(|(_, _, _, frame)| backend_frame(frame))
    }

    fn render(&self, request: SceneRequest) -> Result<BackendFrame, BackendError> {
        let net = portable(&request)?;
        let key = BatchKey::of(&request);
        let frame = self
            .drive(&key, true, |client| client.render(&net))
            .map(|(_, _, _, frame)| backend_frame(frame))?;
        self.record_heat(&key, &net);
        Ok(frame)
    }

    /// Pool-level merged accounting: every reachable node's merged report
    /// folded together. Fails only when *no* node answers.
    fn report(&self) -> Result<ServiceReport, BackendError> {
        let mut reports = Vec::new();
        let mut last_err = None;
        for stats in self.node_stats() {
            match stats {
                Ok(stats) => reports.push(stats.merged),
                Err(err) => last_err = Some(err),
            }
        }
        match (reports.is_empty(), last_err) {
            (true, Some(err)) => Err(BackendError::Transport(err.to_string())),
            _ => Ok(ServiceReport::merged(&reports)),
        }
    }

    /// Disconnect from every node, returning the best-effort merged report
    /// (the servers keep running — a pool is a client-side object).
    fn shutdown(self) -> ServiceReport {
        RenderBackend::report(&self).unwrap_or_else(|_| ServiceReport::merged([]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7000 + i).parse().unwrap())
            .collect()
    }

    /// The directory is the ShardedService policy verbatim: same owner,
    /// same preference order, for every key (absent migrations).
    #[test]
    fn directory_routes_with_the_shard_policy() {
        let dir = Directory::new(addrs(4)).unwrap();
        for tag in 0..64 {
            let key = BatchKey::synthetic(tag);
            assert_eq!(dir.node_for(&key), route(&key, 4));
            assert_eq!(dir.ranked(&key), ranked(&key, 4));
            assert_eq!(dir.ranked(&key)[0], dir.node_for(&key));
        }
    }

    #[test]
    fn directory_growth_only_moves_keys_to_the_new_node() {
        let four = Directory::new(addrs(4)).unwrap();
        let five = Directory::new(addrs(5)).unwrap();
        let mut moved = 0;
        for tag in 0..256 {
            let key = BatchKey::synthetic(tag);
            if five.node_for(&key) != four.node_for(&key) {
                assert_eq!(five.node_for(&key), 4, "moves only to the new node");
                moved += 1;
            }
        }
        assert!(moved > 0 && moved < 128, "{moved}/256 moved");
    }

    #[test]
    fn empty_and_duplicate_directories_are_typed_errors() {
        assert_eq!(Directory::new(Vec::new()), Err(DirectoryError::Empty));
        let mut dupes = addrs(2);
        dupes.push(dupes[0]);
        assert_eq!(
            Directory::new(dupes.clone()),
            Err(DirectoryError::Duplicate(dupes[0]))
        );
        // The same rejections surface through pool construction, plus the
        // config's own validation.
        assert!(matches!(
            NodePool::try_new(Vec::new(), NodePoolConfig::default()),
            Err(PoolConfigError::Directory(DirectoryError::Empty))
        ));
        let zero = NodePoolConfig {
            retry: RetryBudget {
                attempts: 0,
                ..RetryBudget::default()
            },
            ..NodePoolConfig::default()
        };
        assert!(matches!(
            NodePool::try_new(addrs(2), zero),
            Err(PoolConfigError::ZeroAttempts)
        ));
    }

    #[test]
    fn migration_pins_rule_placement_and_bump_the_epoch() {
        let mut dir = Directory::new(addrs(3)).unwrap();
        let key = BatchKey::synthetic(7);
        let natural = dir.node_for(&key);
        let dest = (natural + 1) % 3;
        assert_eq!(dir.epoch(), 0);
        assert!(dir.migrate(&key, dest).unwrap());
        assert_eq!(dir.node_for(&key), dest);
        assert_eq!(dir.ranked(&key)[0], dest, "pin leads the failover order");
        assert_eq!(dir.epoch(), 1);
        // Re-migrating to the same place is a no-op: no epoch bump.
        assert!(!dir.migrate(&key, dest).unwrap());
        assert_eq!(dir.epoch(), 1);
        // Migrating back to the natural owner dissolves the pin.
        assert!(dir.migrate(&key, natural).unwrap());
        assert_eq!(dir.node_for(&key), natural);
        assert_eq!(dir.ranked(&key), ranked(&key, 3));
        assert_eq!(dir.epoch(), 2);
        assert!(!dir.migrate(&key, natural).unwrap());
        // Unknown destinations are typed errors.
        assert_eq!(
            dir.migrate(&key, 9),
            Err(DirectoryError::UnknownNode { node: 9, nodes: 3 })
        );
    }

    #[test]
    fn membership_changes_remap_pins_and_bump_the_epoch() {
        let mut dir = Directory::new(addrs(4)).unwrap();
        let keys: Vec<BatchKey> = (0..64).map(BatchKey::synthetic).collect();
        // One key pinned past the node we will remove, one pinned onto it.
        let key_high = keys.iter().find(|k| dir.node_for(k) != 3).unwrap().clone();
        dir.migrate(&key_high, 3).unwrap();
        let key_onto = keys
            .iter()
            .find(|k| dir.node_for(k) != 1 && **k != key_high)
            .unwrap()
            .clone();
        dir.migrate(&key_onto, 1).unwrap();
        let before = dir.epoch();

        let removed = dir.remove_node(1).unwrap();
        assert_eq!(removed, addrs(4)[1]);
        assert_eq!(dir.len(), 3);
        assert!(dir.epoch() > before);
        // The pin to node 3 slid down with the indices…
        assert_eq!(dir.node_for(&key_high), 2);
        // …and the pin onto the removed node dissolved back to the hash.
        assert_eq!(dir.node_for(&key_onto), route(&key_onto, 3));

        // Duplicates are rejected on join; the last node cannot leave.
        let existing = dir.addr(0);
        assert_eq!(
            dir.add_node(existing),
            Err(DirectoryError::Duplicate(existing))
        );
        dir.remove_node(0).unwrap();
        dir.remove_node(0).unwrap();
        assert_eq!(dir.remove_node(0), Err(DirectoryError::LastNode));
    }

    /// An unreachable node exhausts the budget with a typed transport
    /// error — no panic, no hang (connections are dialed lazily, so the
    /// pool constructs fine).
    #[test]
    fn unreachable_nodes_exhaust_the_budget_with_a_typed_error() {
        use mgpu_cluster::ClusterSpec;
        use mgpu_voldata::Dataset;
        use mgpu_volren::camera::Scene;
        use mgpu_volren::{RenderConfig, TransferFunction};

        // Bind-then-drop two ephemeral ports: both are closed by the time
        // the pool dials them, so connects fail fast with REFUSED.
        let dead: Vec<SocketAddr> = (0..2)
            .map(|_| {
                let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                listener.local_addr().unwrap()
            })
            .collect();
        let pool = NodePool::try_new(
            dead,
            NodePoolConfig {
                retry: RetryBudget {
                    attempts: 2,
                    ..RetryBudget::default()
                },
                ..NodePoolConfig::default()
            },
        )
        .unwrap();
        let volume = Dataset::Skull.volume(8);
        let request = SceneRequest {
            spec: ClusterSpec::accelerator_cluster(1),
            scene: Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()),
            volume,
            config: RenderConfig::test_size(8),
            priority: mgpu_serve::Priority::Normal,
        };
        match RenderBackend::render(&pool, request) {
            Err(BackendError::Transport(_)) => {}
            other => panic!("expected transport exhaustion, got {other:?}"),
        }
        // Per-node errors carry the node index and address.
        let stats = pool.node_stats();
        assert_eq!(stats.len(), 2);
        for (node, result) in stats.into_iter().enumerate() {
            let err = result.expect_err("dead node must error");
            assert_eq!(err.node, node);
            let text = err.to_string();
            assert!(
                text.contains(&format!("node {node} (127.0.0.1:")),
                "error must name the node: {text}"
            );
        }
        assert!(RenderBackend::report(&pool).is_err(), "no node reachable");
    }
}
