//! The metrics half: atomic counter/gauge/histogram primitives, the
//! name → metric [`Registry`], and the mergeable [`Snapshot`] every export
//! surface (STATS v2, `BENCH_obs.json`, the `obs_top` dashboard) is built
//! from.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` (nanoseconds, by convention). 64 buckets span the whole
/// `u64` range, so even pathological multi-minute waits land in a bucket
/// whose edge reflects them instead of saturating early.
pub const HIST_BUCKETS: usize = 64;

/// Which bucket a sample lands in: `floor(log2(v))`, with 0 clamped into
/// bucket 0 and the top of the `u64` range into the last bucket.
pub fn bucket_of(value: u64) -> usize {
    (value.max(1).ilog2() as usize).min(HIST_BUCKETS - 1)
}

/// Quantile over loaded histogram buckets: the inclusive upper edge of the
/// bucket holding the q-th sample — conservative, it never under-reports.
/// `q` is clamped to `[0, 1]`; zero while the histogram is empty.
pub fn quantile(buckets: &[u64; HIST_BUCKETS], q: f64) -> Duration {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
    let mut seen = 0;
    for (i, count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Duration::from_nanos(1u64 << (i + 1).min(63));
        }
    }
    Duration::from_nanos(u64::MAX)
}

/// A monotonic counter. Recording is one relaxed `fetch_add` — safe from
/// any thread, never a lock.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, open connections): goes up
/// and down, snapshots read the current level.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log₂ histogram ([`HIST_BUCKETS`] buckets). The mean hides
/// overload tails; percentiles are what dashboards and the bench-trend
/// JSON need, and summing buckets merges *exactly* across shards and
/// nodes (no quantile sketch error).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (nanoseconds by convention).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Load all buckets (relaxed — a statistics snapshot, not a barrier).
    pub fn load(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.load().iter().sum()
    }

    /// Quantile of the recorded distribution (see [`quantile`]).
    pub fn quantile(&self, q: f64) -> Duration {
        quantile(&self.load(), q)
    }
}

/// A point-in-time copy of every metric in a [`Registry`] (or decoded off
/// the wire): plain data, stable-sorted by name, exactly mergeable.
///
/// Merging sums counters, gauges and histogram buckets — the right
/// semantics for combining shards or pool nodes, where each source counted
/// disjoint events. Merge is associative and commutative with no count
/// loss (pinned by proptests).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, [u64; HIST_BUCKETS])>,
}

fn upsert<T>(entries: &mut Vec<(String, T)>, name: &str, v: T, add: impl FnOnce(&mut T, T)) {
    match entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
        Ok(i) => add(&mut entries[i].1, v),
        Err(i) => entries.insert(i, (name.to_string(), v)),
    }
}

impl Snapshot {
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Add `v` into the named counter (creating it at `v`).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        upsert(&mut self.counters, name, v, |acc, v| *acc += v);
    }

    /// Add `v` into the named gauge (creating it at `v`).
    pub fn add_gauge(&mut self, name: &str, v: i64) {
        upsert(&mut self.gauges, name, v, |acc, v| *acc += v);
    }

    /// Add bucket counts into the named histogram (creating it).
    pub fn add_histogram(&mut self, name: &str, buckets: &[u64; HIST_BUCKETS]) {
        upsert(&mut self.histograms, name, *buckets, |acc, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a += b;
            }
        });
    }

    /// Counters as sorted `(name, value)` pairs.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    pub fn gauges(&self) -> &[(String, i64)] {
        &self.gauges
    }

    pub fn histograms(&self) -> &[(String, [u64; HIST_BUCKETS])] {
        &self.histograms
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    pub fn histogram(&self, name: &str) -> Option<&[u64; HIST_BUCKETS]> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Quantile of a named histogram (`None` if absent; zero if empty).
    pub fn hist_quantile(&self, name: &str, q: f64) -> Option<Duration> {
        self.histogram(name).map(|b| quantile(b, q))
    }

    /// Fold another snapshot into this one: counters, gauges and histogram
    /// buckets add, names union.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.add_gauge(name, *v);
        }
        for (name, b) in &other.histograms {
            self.add_histogram(name, b);
        }
    }

    /// True when nothing has been recorded into this snapshot.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Stable-keyed JSON: counters and gauges verbatim, histograms as
    /// `{count, p50_ns, p90_ns, p99_ns}` summaries. Keys appear in sorted
    /// order, so two snapshots with the same contents render byte-equal —
    /// trend tooling can diff exports with ordinary text tools.
    pub fn to_json(&self) -> String {
        fn obj<T>(
            out: &mut String,
            key: &str,
            entries: &[(String, T)],
            one: impl Fn(&T) -> String,
        ) {
            out.push_str(&format!("  \"{key}\": {{"));
            for (i, (name, v)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&format!("    \"{name}\": {}", one(v)));
            }
            if !entries.is_empty() {
                out.push_str("\n  ");
            }
            out.push('}');
        }
        let mut out = String::from("{\n");
        obj(&mut out, "counters", &self.counters, |v| v.to_string());
        out.push_str(",\n");
        obj(&mut out, "gauges", &self.gauges, |v| v.to_string());
        out.push_str(",\n");
        obj(&mut out, "histograms", &self.histograms, |b| {
            format!(
                "{{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                b.iter().sum::<u64>(),
                quantile(b, 0.5).as_nanos(),
                quantile(b, 0.9).as_nanos(),
                quantile(b, 0.99).as_nanos()
            )
        });
        out.push_str("\n}");
        out
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(&'static str, Arc<Counter>)>,
    gauges: Vec<(&'static str, Arc<Gauge>)>,
    histograms: Vec<(&'static str, Arc<Histogram>)>,
}

fn get_or_insert<T: Default>(
    entries: &mut Vec<(&'static str, Arc<T>)>,
    name: &'static str,
) -> Arc<T> {
    match entries.binary_search_by(|(n, _)| n.cmp(&name)) {
        Ok(i) => Arc::clone(&entries[i].1),
        Err(i) => {
            let fresh = Arc::new(T::default());
            entries.insert(i, (name, Arc::clone(&fresh)));
            fresh
        }
    }
}

/// A name → metric table. Registration (`counter`/`gauge`/`histogram`) is
/// get-or-create under a short mutex — done once per call site, which then
/// caches the `Arc` and records lock-free. The same name always returns
/// the same metric, so independent call sites share one counter by naming
/// it identically.
///
/// Registries are values: the process-wide [`global()`] one feeds STATS
/// v2, while a server can own a private registry for metrics that must
/// not mix across instances (per-server wakeups under test).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-register the named counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&mut self.lock().counters, name)
    }

    /// Get-or-register the named gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&mut self.lock().gauges, name)
    }

    /// Get-or-register the named histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&mut self.lock().histograms, name)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned registry mutex would mean a panic mid-Vec-insert;
        // the data is still sound for reading and re-inserting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Freeze every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut snap = Snapshot::new();
        for (name, c) in &inner.counters {
            snap.add_counter(name, c.get());
        }
        for (name, g) in &inner.gauges {
            snap.add_gauge(name, g.get());
        }
        for (name, h) in &inner.histograms {
            snap.add_histogram(name, &h.load());
        }
        snap
    }
}

/// The process-wide registry: what serve and volren record into, and what
/// the STATS v2 payload snapshots. Metrics here aggregate across every
/// service instance in the process — exactly what a per-node export wants.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 10);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let hist = Histogram::new();
        // 0 clamps into bucket 0; huge values clamp into the last bucket.
        hist.record(0);
        hist.record(1);
        hist.record(u64::MAX);
        let loaded = hist.load();
        assert_eq!(loaded[0], 2);
        assert_eq!(loaded[HIST_BUCKETS - 1], 1);
        assert_eq!(hist.count(), 3);

        let hist = Histogram::new();
        for _ in 0..9 {
            hist.record(1_000); // bucket 9 (512..1024 ns)
        }
        hist.record_duration(Duration::from_secs(1)); // one 1 s outlier
        let p50 = hist.quantile(0.5);
        let p99 = hist.quantile(0.99);
        assert!(p50 <= Duration::from_nanos(2048), "median ignores outlier");
        assert!(p99 >= Duration::from_millis(500), "tail sees the outlier");
        // q = 0 clamps to the first recorded sample's bucket.
        assert_eq!(hist.quantile(0.0), p50);
        assert_eq!(Histogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn registry_is_idempotent_and_shares_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x.hits").get(), 7, "one counter per name");
        assert!(Arc::ptr_eq(&a, &b));
        reg.gauge("x.depth").set(2);
        reg.histogram("x.wait_ns").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x.hits"), Some(7));
        assert_eq!(snap.gauge("x.depth"), Some(2));
        assert_eq!(snap.histogram("x.wait_ns").unwrap().iter().sum::<u64>(), 1);
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn snapshot_merge_sums_and_unions() {
        let mut a = Snapshot::new();
        a.add_counter("frames", 3);
        a.add_gauge("depth", 2);
        let mut hist = [0u64; HIST_BUCKETS];
        hist[4] = 5;
        a.add_histogram("wait", &hist);

        let mut b = Snapshot::new();
        b.add_counter("frames", 7);
        b.add_counter("only_b", 1);
        hist[4] = 2;
        hist[9] = 1;
        b.add_histogram("wait", &hist);

        a.merge(&b);
        assert_eq!(a.counter("frames"), Some(10));
        assert_eq!(a.counter("only_b"), Some(1));
        assert_eq!(a.gauge("depth"), Some(2));
        let merged = a.histogram("wait").unwrap();
        assert_eq!((merged[4], merged[9]), (7, 1));
        assert!(!a.is_empty());
        assert!(Snapshot::new().is_empty());
    }

    #[test]
    fn json_is_stable_keyed() {
        let mut snap = Snapshot::new();
        // Insert out of order: the export must still be sorted.
        snap.add_counter("z.last", 1);
        snap.add_counter("a.first", 2);
        let mut hist = [0u64; HIST_BUCKETS];
        hist[9] = 10;
        snap.add_histogram("wait_ns", &hist);
        let json = snap.to_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "keys sorted");
        assert!(json.contains("\"count\": 10"));
        assert!(json.contains("\"p50_ns\": 1024"));
        // Same contents, different insertion order: byte-equal export.
        let mut again = Snapshot::new();
        again.add_counter("a.first", 2);
        again.add_counter("z.last", 1);
        again.add_histogram("wait_ns", &hist);
        assert_eq!(json, again.to_json());
        // Empty maps render as valid JSON too.
        assert!(Snapshot::new().to_json().contains("\"counters\": {}"));
    }
}
