//! The tracing half: per-request span recording into a bounded,
//! never-blocking ring of completed traces.
//!
//! A [`Trace`] is created when a request enters the stack (its id seeded
//! from the wire `request_id`, or from the service's own sequence number
//! for in-process submits) and carried as an `Arc` alongside the request.
//! Stages stamp themselves in with [`SpanGuard`]s or explicit
//! [`Trace::record`] calls; a thread-local [`scope`] lets lower layers
//! (the renderer) record into the current request's trace without any
//! signature changes. When the last `Arc` drops — after the reply is
//! written — the finished span list lands in the global [`ring`], where
//! the `TRACES` wire request and the `obs_top` dashboard read it back.
//!
//! The ring is bounded and its writers never block: a push that finds its
//! slot contended, or that overwrites an older trace, counts a *drop*.
//! The accounting is exact — `pushed == held + dropped` at every quiescent
//! point — which is what makes "always-on tracing" safe to leave enabled.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the process-global [`ring`].
pub const RING_CAPACITY: usize = 256;

/// One named stage of a request, as nanosecond offsets from the trace
/// start (`end_ns >= start_ns` always; offsets make traces portable
/// across machines and the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A finished request trace: the id plus every recorded span, in record
/// order (completion order — sort by `start_ns` for a timeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    pub id: u64,
    pub spans: Vec<SpanRecord>,
}

impl CompletedTrace {
    /// The recorded span names, in record order.
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }

    /// Find one span by name (first match).
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// One live request's trace. Held as an `Arc` by whoever is currently
/// driving the request; recording takes the trace's own (uncontended)
/// mutex for a `Vec::push`. Dropping the last `Arc` publishes the
/// completed trace into its ring.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    t0: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    ring: Option<&'static TraceRing>,
}

impl Trace {
    /// Start a trace that publishes into the global [`ring`] when done.
    pub fn start(id: u64) -> Arc<Trace> {
        Arc::new(Trace {
            id,
            t0: Instant::now(),
            spans: Mutex::new(Vec::with_capacity(8)),
            ring: Some(ring()),
        })
    }

    /// Start a trace that is never published — for tests and tools that
    /// inspect spans directly without touching the global ring.
    pub fn detached(id: u64) -> Arc<Trace> {
        Arc::new(Trace {
            id,
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
            ring: None,
        })
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record a finished stage from explicit instants. Instants before the
    /// trace start clamp to offset 0 (`saturating_duration_since`), and
    /// `end` is clamped to be no earlier than `start`.
    pub fn record(&self, name: &str, start: Instant, end: Instant) {
        let to_ns = |i: Instant| i.saturating_duration_since(self.t0).as_nanos() as u64;
        let start_ns = to_ns(start);
        let end_ns = to_ns(end).max(start_ns);
        let record = SpanRecord {
            name: name.to_string(),
            start_ns,
            end_ns,
        };
        self.lock().push(record);
    }

    /// Record a stage that ends now.
    pub fn record_since(&self, name: &str, start: Instant) {
        self.record(name, start, Instant::now());
    }

    /// Open a guard that records the named span when dropped.
    pub fn span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        SpanGuard {
            trace: Arc::clone(self),
            name,
            start: Instant::now(),
        }
    }

    /// Spans recorded so far (clones; the trace keeps recording).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if let Some(ring) = self.ring {
            let spans = std::mem::take(self.spans.get_mut().unwrap_or_else(|e| e.into_inner()));
            if !spans.is_empty() {
                ring.push(CompletedTrace { id: self.id, spans });
            }
        }
    }
}

/// Records its span into the owning trace on drop (normal or panic exit).
#[derive(Debug)]
pub struct SpanGuard {
    trace: Arc<Trace>,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.trace.record_since(self.name, self.start);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Trace>>> = const { RefCell::new(None) };
}

/// Run `f` with `trace` as this thread's current trace (restoring the
/// previous one after — scopes nest). Lower layers reach the trace through
/// [`current`] / [`record_current`] without a handle in their signatures.
pub fn scope<R>(trace: &Arc<Trace>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Trace>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(trace)));
    let _restore = Restore(previous);
    f()
}

/// The current trace established by an enclosing [`scope`], if any.
pub fn current() -> Option<Arc<Trace>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Record a stage ending now on the current trace — a no-op (one TLS read)
/// outside any scope, which is what keeps always-on instrumentation free
/// for direct, unserved render calls.
pub fn record_current(name: &str, start: Instant) {
    if let Some(trace) = current() {
        trace.record_since(name, start);
    }
}

/// A bounded ring of completed traces whose writers never block.
///
/// Push claims a slot by atomic ticket, then *tries* the slot's lock: on
/// contention the incoming trace is dropped (counted), on success it
/// replaces the slot — evicting any older occupant (also counted). So
/// `pushed() == held() + dropped()` exactly, at every quiescent point, no
/// matter how many writers race. Readers ([`TraceRing::recent`]) take the
/// slot locks; they are rare (a stats request, a dashboard tick).
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<(u64, CompletedTrace)>>>,
    tickets: AtomicU64,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity >= 1, "trace ring needs at least one slot");
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            tickets: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publish one completed trace. Never blocks: contended or displaced
    /// traces are dropped and counted instead.
    pub fn push(&self, trace: CompletedTrace) {
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut held) => {
                if held.replace((ticket, trace)).is_some() {
                    // Evicted an older trace to make room.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // Slot contended (or poisoned): drop the incoming trace
                // rather than stall the hot path.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The most recent completed traces, newest first, at most `max`.
    pub fn recent(&self, max: usize) -> Vec<CompletedTrace> {
        let mut held: Vec<(u64, CompletedTrace)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        held.sort_by_key(|(ticket, _)| std::cmp::Reverse(*ticket));
        held.truncate(max);
        held.into_iter().map(|(_, trace)| trace).collect()
    }

    /// Traces ever pushed (kept or dropped).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Traces dropped: evicted by a newer push or discarded on slot
    /// contention. `pushed() - dropped()` traces are currently held.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Traces currently held in the ring (takes the slot locks).
    pub fn held(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).is_some())
            .count()
    }
}

/// The process-global ring ([`RING_CAPACITY`] traces) that
/// [`Trace::start`] publishes into and the `TRACES` wire request reads.
pub fn ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(RING_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_with_monotonic_offsets() {
        let trace = Trace::detached(7);
        let t0 = Instant::now();
        {
            let _guard = trace.span("kernel");
            std::thread::sleep(Duration::from_millis(2));
        }
        trace.record("queue", t0, Instant::now());
        let spans = trace.spans();
        assert_eq!(trace.id(), 7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "kernel");
        assert!(spans[0].end_ns >= spans[0].start_ns);
        assert!(spans[0].nanos() >= 1_000_000, "slept ~2 ms inside the span");
        // An instant before the trace start clamps to offset zero.
        let early = Trace::detached(1);
        early.record("pre", t0 - Duration::from_secs(5), t0);
        assert_eq!(early.spans()[0].start_ns, 0);
    }

    #[test]
    fn scope_carries_the_trace_and_nests() {
        let outer = Trace::detached(1);
        let inner = Trace::detached(2);
        assert!(current().is_none());
        scope(&outer, || {
            assert_eq!(current().unwrap().id(), 1);
            scope(&inner, || {
                let t = Instant::now();
                record_current("stage", t);
                assert_eq!(current().unwrap().id(), 2);
            });
            assert_eq!(current().unwrap().id(), 1, "scope restores");
        });
        assert!(current().is_none());
        assert_eq!(inner.spans().len(), 1, "record_current hit the scope");
        assert_eq!(outer.spans().len(), 0);
        // Outside any scope, record_current is a no-op, not a panic.
        record_current("orphan", Instant::now());
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let ring = TraceRing::new(4);
        let trace = |id: u64| CompletedTrace {
            id,
            spans: vec![SpanRecord {
                name: "s".into(),
                start_ns: 0,
                end_ns: 1,
            }],
        };
        for id in 0..10 {
            ring.push(trace(id));
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6, "capacity 4: six evicted");
        assert_eq!(ring.held(), 4);
        let recent = ring.recent(3);
        let ids: Vec<u64> = recent.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![9, 8, 7], "newest first");
        assert_eq!(ring.recent(100).len(), 4);
    }

    #[test]
    fn dropping_the_last_arc_publishes_into_the_global_ring() {
        let before = ring().pushed();
        let trace = Trace::start(0xDEAD);
        trace.record_since("only", Instant::now());
        let clone = Arc::clone(&trace);
        drop(trace);
        assert_eq!(ring().pushed(), before, "still one live Arc");
        drop(clone);
        assert!(ring().pushed() > before, "last drop published");
        assert!(ring()
            .recent(RING_CAPACITY)
            .iter()
            .any(|t| t.id == 0xDEAD && t.span("only").is_some()));
        // A span-less trace publishes nothing (cache-probe noise control).
        let quiet_before = ring().pushed();
        drop(Trace::start(0xBEEF));
        assert_eq!(ring().pushed(), quiet_before);
    }
}
