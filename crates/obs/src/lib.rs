//! # mgpu-obs — observability for the render stack
//!
//! The paper's MapReduce renderer wins by keeping every stage — map
//! (ray-cast), sort (route), reduce (composite) — measurable and balanced.
//! This crate is the reproduction's measuring instrument: one small,
//! dependency-free substrate that every layer (serve, net, volren, the
//! bench harness) records into and one snapshot format they all export.
//!
//! Two halves:
//!
//! * **Metrics** — [`Counter`], [`Gauge`] and a log₂-bucket [`Histogram`]
//!   (the generalization of serve's old `WaitHistogram`), all plain
//!   relaxed atomics: recording is one `fetch_add`, never a lock. Metrics
//!   live either as struct fields (a service's private stats) or in a
//!   [`Registry`] — a name → metric table whose registration is a one-time
//!   get-or-create under a short mutex; call sites cache the returned
//!   `Arc` and the hot path touches only the atomic. [`Registry::snapshot`]
//!   freezes every registered metric into a [`Snapshot`]: stable-sorted
//!   keys, exact cross-node [`Snapshot::merge`] (counters and buckets
//!   add), and [`Snapshot::to_json`] for the bench artifacts. The
//!   process-wide [`global()`] registry is what the `STATS` v2 wire
//!   payload ships.
//! * **Tracing** — a [`trace::Trace`] is one request's span list:
//!   [`trace::SpanGuard`]s (or explicit [`trace::Trace::record`] calls)
//!   stamp named stages — admit, queue, plan, stage, kernel, composite,
//!   render, reply — as nanosecond offsets from the trace's start. The
//!   trace id is seeded from the wire's `request_id`, so one request is
//!   followable from socket to pixel and back. Completed traces land in a
//!   bounded [`trace::TraceRing`] whose writers never block: a slot that
//!   is contended or already full *drops* (counted exactly —
//!   `pushed == held + dropped` always), so tracing is always-on at
//!   near-zero cost and the `TRACES` wire request serves the last N from
//!   the ring. A thread-local [`trace::scope`] carries the current trace
//!   across layers (the worker sets it, the renderer records into it)
//!   without threading a handle through every signature.
//!
//! No dependencies, `std` only: the whole crate is atomics, two mutexes
//! off the hot path, and `Instant` arithmetic.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod names;
pub mod trace;

pub use metrics::{
    bucket_of, global, quantile, Counter, Gauge, Histogram, Registry, Snapshot, HIST_BUCKETS,
};
pub use trace::{ring, CompletedTrace, SpanRecord, Trace, TraceRing};
