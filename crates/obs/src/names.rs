//! The metric namespace, as compile-checked constants.
//!
//! Every instrument the stack registers and every name the `obs_top`
//! dashboard reads goes through these consts, so a dashboard/registry
//! drift is a compile error (`names::SERVE_FRAMES_RENDERD` does not
//! build), not a runtime mismatch. The `metric-registry` lint in
//! `mgpu-lint` resolves these consts at call sites, enforces the
//! `namespace.lowercase_dot` convention on the values, and diffs the
//! registered set against the blessed `ci/metrics.txt`.
//!
//! Naming convention: `namespace.rest`, where `namespace` is one of
//! `serve` / `net` / `volren` / `pool` / `gpu` / `obs` and every
//! dot-separated segment is `[a-z][a-z0-9_]*`. Histogram names end in
//! a unit suffix (`_ns`) or describe a distribution
//! (`samples_per_ray`).

// --- net.* — the wire front-end (per-server registry) -------------------

/// Bytes drained off client sockets by the event loop.
pub const NET_BYTES_READ: &str = "net.bytes_read";
/// Bytes flushed back to client sockets.
pub const NET_BYTES_WRITTEN: &str = "net.bytes_written";
/// Complete request frames parsed off connections.
pub const NET_FRAMES_IN: &str = "net.frames_in";
/// Reply frames queued for write-out.
pub const NET_FRAMES_OUT: &str = "net.frames_out";
/// Open connections (gauge; `Conn` drop decrements).
pub const NET_CONNECTIONS: &str = "net.connections";
/// Event-loop wakeups — the idle-cost regression canary.
pub const NET_LOOP_WAKEUPS: &str = "net.loop_wakeups";
/// Requests refused by the per-session token bucket.
pub const NET_THROTTLED: &str = "net.throttled";
/// PREWARM requests answered (plan built or already warm).
pub const NET_PREWARMS: &str = "net.prewarms";
/// GOODBYE seals sent to work-carrying sessions at drain completion.
pub const NET_GOODBYES: &str = "net.goodbyes";
/// RENDER/SUBMIT refused with a typed DRAINING reply.
pub const NET_DRAIN_REFUSED: &str = "net.drain_refused";
/// Idle→draining transitions (idempotent repeats not counted).
pub const NET_DRAINS: &str = "net.drains";
/// Draining→resumed transitions.
pub const NET_RESUMES: &str = "net.resumes";

// --- pool.* — NodePool cluster operations (process-global) --------------

/// Submissions rerouted off a draining node to the next-ranked one.
pub const POOL_DRAIN_REROUTED: &str = "pool.drain.rerouted";
/// Drains initiated by this pool controller.
pub const POOL_DRAIN_INITIATED: &str = "pool.drain.initiated";
/// Resumes issued by this pool controller.
pub const POOL_DRAIN_RESUMED: &str = "pool.drain.resumed";
/// Tickets redeemed via handoff re-render on a survivor node.
pub const POOL_DRAIN_HANDOFFS: &str = "pool.drain.handoffs";
/// Rebalancer control-loop ticks.
pub const POOL_REBALANCE_TICKS: &str = "pool.rebalance.ticks";
/// Hot-key migrations cut over by the rebalancer.
pub const POOL_REBALANCE_MIGRATIONS: &str = "pool.rebalance.migrations";
/// PREWARMs issued ahead of a migration cutover.
pub const POOL_REBALANCE_PREWARMS: &str = "pool.rebalance.prewarms";

// --- serve.* — the render service (process-global) ----------------------

/// Frames accepted into the queue (submit or render).
pub const SERVE_FRAMES_SUBMITTED: &str = "serve.frames_submitted";
/// Frames answered (rendered, cache-replayed, or failed).
pub const SERVE_FRAMES_COMPLETED: &str = "serve.frames_completed";
/// Frames that went through a real render (cache misses).
pub const SERVE_FRAMES_RENDERED: &str = "serve.frames_rendered";
/// Frames that returned a `FrameError` ticket.
pub const SERVE_FRAMES_FAILED: &str = "serve.frames_failed";
/// Frame-cache hits (bit-identical replays).
pub const SERVE_FRAME_CACHE_HITS: &str = "serve.frame_cache_hits";
/// Frame-cache misses.
pub const SERVE_FRAME_CACHE_MISSES: &str = "serve.frame_cache_misses";
/// Cross-batch plan-cache hits (bricking + warm store reused).
pub const SERVE_PLAN_CACHE_HITS: &str = "serve.plan_cache_hits";
/// Plan-cache misses (plan prepared from scratch).
pub const SERVE_PLAN_CACHE_MISSES: &str = "serve.plan_cache_misses";
/// Submissions shed by admission control (queue bounds).
pub const SERVE_ADMISSION_REJECTED: &str = "serve.admission_rejected";
/// Same-key batches executed.
pub const SERVE_BATCHES: &str = "serve.batches";
/// Frames coalesced into those batches.
pub const SERVE_BATCHED_FRAMES: &str = "serve.batched_frames";
/// Queue pops by workers (batch leaders + coalesced jobs).
pub const SERVE_JOBS_POPPED: &str = "serve.jobs_popped";
/// Bricks staged into a brick store (cold).
pub const SERVE_BRICK_STAGINGS: &str = "serve.brick_stagings";
/// Brick stagings avoided by the shared store (warm).
pub const SERVE_BRICK_REUSES: &str = "serve.brick_reuses";
/// Plans built by the PREWARM worker off the hot path.
pub const SERVE_PLAN_PREWARMS: &str = "serve.plan_prewarms";
/// Queue depth right now (gauge).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Submit → worker-pop wait per frame (histogram, ns).
pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue_wait_ns";
/// FramePlan::prepare wall time (histogram, ns).
pub const SERVE_PLAN_PREPARE_NS: &str = "serve.plan_prepare_ns";
/// Full render call wall time (histogram, ns).
pub const SERVE_RENDER_NS: &str = "serve.render_ns";

// --- volren.* — the renderer's stages (process-global) ------------------

/// Brick staging wall time per frame (histogram, ns).
pub const VOLREN_STAGING_NS: &str = "volren.staging_ns";
/// Frame-plan preparation wall time (histogram, ns).
pub const VOLREN_PLAN_PREPARE_NS: &str = "volren.plan_prepare_ns";
/// Map/ray-cast kernel wall time per frame (histogram, ns).
pub const VOLREN_KERNEL_NS: &str = "volren.kernel_ns";
/// Compositing reduce wall time per frame (histogram, ns).
pub const VOLREN_COMPOSITE_NS: &str = "volren.composite_ns";
/// 16×16 blocks launched through the batched kernel API.
pub const VOLREN_KERNEL_BLOCKS: &str = "volren.kernel.blocks";
/// Samples taken per ray (histogram; early termination shifts it left).
pub const VOLREN_SAMPLES_PER_RAY: &str = "volren.samples_per_ray";
