//! Stress the bounded [`TraceRing`] under concurrent writers: the ring
//! must never block, never lose accounting, and keep the exact invariant
//! `pushed() == held() + dropped()` at quiescence — the property `obs_top`
//! prints and the `TRACES` wire reply relies on for its drop counter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use mgpu_obs::{CompletedTrace, SpanRecord, Trace, TraceRing};

fn trace(id: u64) -> CompletedTrace {
    CompletedTrace {
        id,
        spans: vec![SpanRecord {
            name: "stress".to_string(),
            start_ns: id,
            end_ns: id + 1,
        }],
    }
}

/// Many writers hammering a small ring: exact overflow accounting.
#[test]
fn concurrent_writers_account_for_every_push() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 1_000;
    let ring = Arc::new(TraceRing::new(8));
    let start = Arc::new(Barrier::new(WRITERS as usize));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                for i in 0..PER_WRITER {
                    ring.push(trace(w * PER_WRITER + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    assert_eq!(ring.pushed(), WRITERS * PER_WRITER, "every push counted");
    assert!(ring.held() <= ring.capacity(), "held bounded by capacity");
    assert_eq!(
        ring.pushed(),
        ring.held() as u64 + ring.dropped(),
        "exact accounting: every trace is either held or counted dropped"
    );
    // With vastly more pushes than slots, overflow must have happened.
    assert!(ring.dropped() > 0, "overflow must be visible, not silent");
}

/// Readers racing writers: `recent` never blocks the writers, never
/// returns more than asked for, and accounting still balances after.
#[test]
fn readers_race_writers_without_breaking_accounting() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000;
    let ring = Arc::new(TraceRing::new(16));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let recent = ring.recent(8);
                assert!(recent.len() <= 8, "recent respects max");
                // Newest first: slot tickets decrease down the list.
                for pair in recent.windows(2) {
                    assert!(
                        pair[0].id != pair[1].id,
                        "distinct slots hold distinct traces"
                    );
                }
                seen += recent.len();
            }
            // One post-quiescence read: a reader that lost every timeslice
            // to the writers still observes the held survivors.
            seen + ring.recent(8).len()
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push(trace(w * PER_WRITER + i));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    let seen = reader.join().expect("reader thread");
    assert!(seen > 0, "reader observed traces mid-stress");

    assert_eq!(ring.pushed(), WRITERS * PER_WRITER);
    assert_eq!(
        ring.pushed(),
        ring.held() as u64 + ring.dropped(),
        "accounting balances after racing readers"
    );
}

/// The global ring gets the same treatment through the `Trace` front
/// door: concurrent traces publishing on last-drop keep the invariant on
/// the process-wide ring (checked as a delta, since other tests share it).
#[test]
fn traces_publish_to_global_ring_with_exact_deltas() {
    let ring = mgpu_obs::ring();
    let before = ring.pushed();
    const TRACES: u64 = 64;
    let handles: Vec<_> = (0..4u64)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..TRACES / 4 {
                    // No spans recorded: these must NOT publish.
                    let t = Trace::start(w * 1_000 + i);
                    drop(t);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("trace thread");
    }
    // Span-less traces are not published; only spanned ones count.
    assert_eq!(ring.pushed(), before, "empty traces never publish");

    let start = std::time::Instant::now();
    let t = Trace::start(0xABCD);
    t.record_since("stress", start);
    drop(t);
    assert_eq!(ring.pushed(), before + 1, "spanned trace publishes once");
    assert_eq!(
        ring.pushed(),
        ring.held() as u64 + ring.dropped(),
        "global ring accounting stays exact"
    );
}
