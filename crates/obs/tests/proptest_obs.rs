//! Properties of the metrics snapshot algebra and the histogram
//! quantiles — the guarantees every export surface (STATS v2, pool-wide
//! merges, `BENCH_obs.json`) silently relies on:
//!
//! * snapshot merge is **associative** and **commutative** with **no count
//!   loss** — shard and node snapshots can fold in any grouping or order
//!   and the totals agree exactly;
//! * histogram quantiles are **monotone** in `q` and **conservative**
//!   (never under-report a recorded sample);
//! * `bucket_of` and `quantile` agree: every sample's bucket upper edge
//!   bounds the sample.

use proptest::prelude::*;

use mgpu_obs::{bucket_of, quantile, Histogram, Snapshot, HIST_BUCKETS};

/// Names drawn from a small pool so merges actually collide.
const NAMES: [&str; 5] = ["a.hits", "b.depth", "c.wait", "d.frames", "e.misses"];

/// One randomized snapshot: counters, gauges and single-sample histogram
/// increments, each keyed into the shared name pool.
fn build(ops: &[(usize, u8, u64)]) -> Snapshot {
    let mut snap = Snapshot::new();
    for &(name, kind, value) in ops {
        let name = NAMES[name % NAMES.len()];
        match kind % 3 {
            0 => snap.add_counter(name, value),
            1 => snap.add_gauge(name, value as i64 % 1_000_000 - 500_000),
            _ => {
                let mut buckets = [0u64; HIST_BUCKETS];
                buckets[bucket_of(value)] = 1 + value % 7;
                snap.add_histogram(name, &buckets);
            }
        }
    }
    snap
}

/// Total event mass of a snapshot: counter values plus histogram bucket
/// counts (gauges are levels, not events — they sum too, but separately).
fn mass(snap: &Snapshot) -> (u64, i64, u64) {
    (
        snap.counters().iter().map(|(_, v)| *v).sum(),
        snap.gauges().iter().map(|(_, v)| *v).sum(),
        snap.histograms()
            .iter()
            .map(|(_, b)| b.iter().sum::<u64>())
            .sum(),
    )
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): shard snapshots can fold in any
    /// grouping — a pool merging per-node merges equals one flat merge.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((0usize..8, 0u8..3, 0u64..1u64 << 32), 0..24),
        b in prop::collection::vec((0usize..8, 0u8..3, 0u64..1u64 << 32), 0..24),
        c in prop::collection::vec((0usize..8, 0u8..3, 0u64..1u64 << 32), 0..24),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// a ⊕ b == b ⊕ a, and nothing is lost: every counter value and
    /// histogram bucket count in the merge is the exact sum of the inputs.
    #[test]
    fn merge_commutes_and_loses_nothing(
        a in prop::collection::vec((0usize..8, 0u8..3, 0u64..1u64 << 32), 0..32),
        b in prop::collection::vec((0usize..8, 0u8..3, 0u64..1u64 << 32), 0..32),
    ) {
        let (a, b) = (build(&a), build(&b));
        let ab = merged(&a, &b);
        prop_assert_eq!(&ab, &merged(&b, &a));
        let ((ca, ga, ha), (cb, gb, hb), (cm, gm, hm)) = (mass(&a), mass(&b), mass(&ab));
        prop_assert_eq!(cm, ca + cb, "counter mass conserved");
        prop_assert_eq!(gm, ga + gb, "gauge mass conserved");
        prop_assert_eq!(hm, ha + hb, "histogram count conserved");
        // The empty snapshot is the identity.
        prop_assert_eq!(&merged(&a, &Snapshot::new()), &a);
    }

    /// Quantiles are monotone in q and conservative: q=1 bounds every
    /// recorded sample, and no quantile of a non-empty histogram is zero.
    #[test]
    fn quantiles_are_monotone_and_conservative(
        samples in prop::collection::vec(0u64..u64::MAX, 1..64),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(hist.quantile(lo) <= hist.quantile(hi),
            "quantile must be monotone: q{lo} > q{hi}");
        // Conservative: the top quantile's bucket edge bounds the max
        // sample (both saturate at the top bucket's edge).
        let max = *samples.iter().max().unwrap();
        let edge = 1u128 << (bucket_of(max) + 1).min(63);
        prop_assert!(hist.quantile(1.0).as_nanos() >= edge.min(max as u128));
        prop_assert!(hist.quantile(0.0).as_nanos() > 0, "non-empty histogram");
    }

    /// Histogram merge (bucket-wise add through snapshots) preserves
    /// quantiles computed over the union of the samples.
    #[test]
    fn merged_histograms_quantile_like_the_union(
        xs in prop::collection::vec(1u64..1u64 << 40, 1..32),
        ys in prop::collection::vec(1u64..1u64 << 40, 1..32),
    ) {
        let (hx, hy, hu) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &x in &xs { hx.record(x); hu.record(x); }
        for &y in &ys { hy.record(y); hu.record(y); }
        let mut a = Snapshot::new();
        a.add_histogram("h", &hx.load());
        let mut b = Snapshot::new();
        b.add_histogram("h", &hy.load());
        a.merge(&b);
        let m = a.histogram("h").unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(quantile(m, q), hu.quantile(q), "q={}", q);
        }
    }
}
