//! Property tests for the DES engine: causality, resource exclusivity,
//! determinism and accounting consistency over random traces.

use proptest::prelude::*;

use mgpu_sim::{account, simulate, Activity, SimDuration, SimTime, TaskId, Trace};

const ACTIVITIES: [Activity; 10] = [
    Activity::DiskRead,
    Activity::HostToDevice,
    Activity::Kernel,
    Activity::DeviceToHost,
    Activity::PartitionCpu,
    Activity::NetSend,
    Activity::NetRecv,
    Activity::SortCpu,
    Activity::ReduceCpu,
    Activity::Other,
];

#[derive(Debug, Clone)]
struct RandomTaskPlan {
    activity_ix: usize,
    resource_ix: usize,
    duration: u64,
    post_latency: u64,
    /// Dependencies as offsets back from this task's index.
    dep_offsets: Vec<usize>,
}

fn plan_strategy(
    max_tasks: usize,
    max_resources: usize,
) -> impl Strategy<Value = Vec<RandomTaskPlan>> {
    prop::collection::vec(
        (
            0..ACTIVITIES.len(),
            0..max_resources,
            0u64..1000,
            0u64..50,
            prop::collection::vec(1usize..16, 0..4),
        )
            .prop_map(
                |(activity_ix, resource_ix, duration, post_latency, dep_offsets)| RandomTaskPlan {
                    activity_ix,
                    resource_ix,
                    duration,
                    post_latency,
                    dep_offsets,
                },
            ),
        0..max_tasks,
    )
}

fn build_trace(plans: &[RandomTaskPlan], num_resources: usize) -> Trace {
    let mut tr = Trace::new();
    let rs = tr.add_resources(num_resources);
    for (i, p) in plans.iter().enumerate() {
        let deps: Vec<TaskId> = p
            .dep_offsets
            .iter()
            .filter_map(|&off| i.checked_sub(off).map(|j| TaskId(j as u32)))
            .collect();
        tr.push(mgpu_sim::TaskSpec {
            activity: ACTIVITIES[p.activity_ix],
            resource: rs[p.resource_ix],
            duration: SimDuration(p.duration),
            post_latency: SimDuration(p.post_latency),
            deps,
            bytes: p.duration, // arbitrary but deterministic
        });
    }
    tr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tasks_never_start_before_dependencies_complete(
        plans in plan_strategy(60, 6)
    ) {
        let tr = build_trace(&plans, 6);
        let s = simulate(&tr);
        for (i, spec) in tr.tasks().iter().enumerate() {
            let t = s.timings()[i];
            prop_assert!(t.finish >= t.start);
            prop_assert!(t.complete >= t.finish);
            for d in &spec.deps {
                prop_assert!(
                    s.timing(*d).complete <= t.start,
                    "task {i} started before dep {:?} completed", d
                );
            }
        }
    }

    #[test]
    fn resources_never_run_two_tasks_at_once(
        plans in plan_strategy(60, 4)
    ) {
        let tr = build_trace(&plans, 4);
        let s = simulate(&tr);
        // Gather (start, finish) intervals per resource and check pairwise
        // disjointness (zero-length intervals may share an instant).
        for r in 0..tr.num_resources() {
            let mut intervals: Vec<(SimTime, SimTime)> = tr
                .tasks()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.resource.0 as usize == r && t.duration.nanos() > 0)
                .map(|(i, _)| (s.timings()[i].start, s.timings()[i].finish))
                .collect();
            intervals.sort();
            for w in intervals.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0,
                    "resource {r} overlapped: {:?} vs {:?}", w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn replay_is_deterministic(plans in plan_strategy(40, 5)) {
        let tr = build_trace(&plans, 5);
        let s1 = simulate(&tr);
        let s2 = simulate(&tr);
        prop_assert_eq!(s1.makespan(), s2.makespan());
        prop_assert_eq!(s1.timings(), s2.timings());
    }

    #[test]
    fn makespan_bounds(plans in plan_strategy(40, 5)) {
        let tr = build_trace(&plans, 5);
        let s = simulate(&tr);
        let serial = mgpu_sim::serial_demand(&tr);
        let max_post: u64 = tr.tasks().iter().map(|t| t.post_latency.nanos()).max().unwrap_or(0);
        let total_post: u64 = tr.tasks().iter().map(|t| t.post_latency.nanos()).sum();
        // Makespan can never beat the longest single task, nor exceed the
        // fully-serial schedule (with all post-latencies paid in sequence).
        let longest = tr.tasks().iter().map(|t| t.duration.nanos() + t.post_latency.nanos()).max().unwrap_or(0);
        prop_assert!(s.makespan().nanos() >= longest);
        prop_assert!(s.makespan().nanos() <= serial.nanos() + total_post + max_post);
    }

    #[test]
    fn accounting_consistent(plans in plan_strategy(40, 5)) {
        let tr = build_trace(&plans, 5);
        let s = simulate(&tr);
        let acc = account(&tr, &s);
        // Stacked phases cover exactly the span up to the last bucketed task.
        prop_assert!(acc.breakdown.total() <= acc.makespan);
        // Busy sums equal serial demand.
        let busy_sum: u64 = acc.activity.values().map(|a| a.busy.nanos()).sum();
        prop_assert_eq!(busy_sum, acc.serial_demand.nanos());
        // comm + compute <= serial (Other/Stitch excluded from both).
        prop_assert!(
            acc.communication_demand.nanos() + acc.computation_demand.nanos()
                <= acc.serial_demand.nanos()
        );
    }
}
