//! Phase accounting: turns a replayed schedule into the numbers the paper
//! reports — the Figure-3 stacked phase breakdown, per-activity busy times,
//! and the §6.3 communication-vs-computation split.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::activity::{Activity, Fig3Bucket};
use crate::engine::Schedule;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// The stacked per-phase breakdown of one rendering run (one Figure-3 bar).
///
/// Attribution is milestone-based, matching how the paper's phases complete
/// in sequence even though work overlaps internally:
/// * `map` — start → last Map-side task (upload/kernel/readback) finishes;
/// * `partition_io` — … → last fragment has been partitioned and received
///   (only the communication *tail* not hidden behind mapping is exposed,
///   which is exactly the overlap argument of §3/§6);
/// * `sort` — … → all reducers finish sorting;
/// * `reduce` — … → all reducers finish compositing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    pub map: SimDuration,
    pub partition_io: SimDuration,
    pub sort: SimDuration,
    pub reduce: SimDuration,
}

impl PhaseBreakdown {
    pub fn total(&self) -> SimDuration {
        self.map + self.partition_io + self.sort + self.reduce
    }

    pub fn get(&self, bucket: Fig3Bucket) -> SimDuration {
        match bucket {
            Fig3Bucket::Map => self.map,
            Fig3Bucket::PartitionIo => self.partition_io,
            Fig3Bucket::Sort => self.sort,
            Fig3Bucket::Reduce => self.reduce,
        }
    }
}

/// Aggregate busy time and bytes for one activity across all resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityTotals {
    pub busy: SimDuration,
    pub bytes: u64,
    pub tasks: u64,
}

/// Everything a benchmark needs to report about one replay.
#[derive(Debug, Clone)]
pub struct RunAccounting {
    pub breakdown: PhaseBreakdown,
    /// Virtual wall-clock of the whole run.
    pub makespan: SimDuration,
    /// Busy time / bytes per activity (sums over resources; overlap ignored).
    pub activity: BTreeMap<&'static str, ActivityTotals>,
    /// §6.3 split: total service demand of byte-moving tasks.
    pub communication_demand: SimDuration,
    /// §6.3 split: total service demand of computing tasks.
    pub computation_demand: SimDuration,
    /// Kernel-only demand (the "ray casting" time of §6.3).
    pub kernel_demand: SimDuration,
    /// Sum of all service demands: the zero-overlap serial time.
    pub serial_demand: SimDuration,
}

impl RunAccounting {
    pub fn totals(&self, activity: Activity) -> ActivityTotals {
        self.activity
            .get(activity.label())
            .copied()
            .unwrap_or(ActivityTotals {
                busy: SimDuration::ZERO,
                bytes: 0,
                tasks: 0,
            })
    }

    /// Overlap efficiency: serial demand / makespan (≥ 1 means the pipeline
    /// hid work behind other work; equals resource-parallelism achieved).
    pub fn overlap_factor(&self) -> f64 {
        if self.makespan.is_zero() {
            return 1.0;
        }
        self.serial_demand.as_secs_f64() / self.makespan.as_secs_f64()
    }
}

/// Compute accounting for a replayed trace.
pub fn account(trace: &Trace, schedule: &Schedule) -> RunAccounting {
    let mut map_done = SimTime::ZERO;
    let mut routed_done = SimTime::ZERO;
    let mut sort_done = SimTime::ZERO;
    let mut reduce_done = SimTime::ZERO;

    let mut activity: BTreeMap<&'static str, ActivityTotals> = BTreeMap::new();
    let mut comm = SimDuration::ZERO;
    let mut comp = SimDuration::ZERO;
    let mut kernel = SimDuration::ZERO;
    let mut serial = SimDuration::ZERO;

    for (i, spec) in trace.tasks().iter().enumerate() {
        let t = schedule.timings()[i];
        match spec.activity.fig3_bucket() {
            Some(Fig3Bucket::Map) => map_done = SimTime::max_of(map_done, t.complete),
            Some(Fig3Bucket::PartitionIo) => routed_done = SimTime::max_of(routed_done, t.complete),
            Some(Fig3Bucket::Sort) => sort_done = SimTime::max_of(sort_done, t.complete),
            Some(Fig3Bucket::Reduce) => reduce_done = SimTime::max_of(reduce_done, t.complete),
            None => {}
        }

        let e = activity
            .entry(spec.activity.label())
            .or_insert(ActivityTotals {
                busy: SimDuration::ZERO,
                bytes: 0,
                tasks: 0,
            });
        e.busy += spec.duration;
        e.bytes += spec.bytes;
        e.tasks += 1;

        if spec.activity.is_communication() {
            comm += spec.duration;
        }
        if spec.activity.is_computation() {
            comp += spec.duration;
        }
        if spec.activity == Activity::Kernel {
            kernel += spec.duration;
        }
        serial += spec.duration;
    }

    // Milestones are monotone: a later phase can never "complete" before an
    // earlier one for stacking purposes.
    routed_done = SimTime::max_of(routed_done, map_done);
    sort_done = SimTime::max_of(sort_done, routed_done);
    reduce_done = SimTime::max_of(reduce_done, sort_done);

    let breakdown = PhaseBreakdown {
        map: map_done.since(SimTime::ZERO),
        partition_io: routed_done.since(map_done),
        sort: sort_done.since(routed_done),
        reduce: reduce_done.since(sort_done),
    };

    RunAccounting {
        breakdown,
        makespan: schedule.makespan().since(SimTime::ZERO),
        activity,
        communication_demand: comm,
        computation_demand: comp,
        kernel_demand: kernel,
        serial_demand: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;

    fn dur(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A miniature two-mapper / one-reducer pipeline with overlap.
    fn tiny_pipeline() -> (Trace, RunAccounting) {
        let mut tr = Trace::new();
        let gpu0 = tr.add_resource();
        let gpu1 = tr.add_resource();
        let pcie0 = tr.add_resource();
        let pcie1 = tr.add_resource();
        let nic = tr.add_resource();
        let cpu = tr.add_resource();

        let u0 = tr.comm_task(
            Activity::HostToDevice,
            pcie0,
            dur(2),
            SimDuration::ZERO,
            100,
            vec![],
        );
        let k0 = tr.task(Activity::Kernel, gpu0, dur(10), vec![u0]);
        let d0 = tr.comm_task(
            Activity::DeviceToHost,
            pcie0,
            dur(1),
            SimDuration::ZERO,
            50,
            vec![k0],
        );
        let u1 = tr.comm_task(
            Activity::HostToDevice,
            pcie1,
            dur(2),
            SimDuration::ZERO,
            100,
            vec![],
        );
        let k1 = tr.task(Activity::Kernel, gpu1, dur(14), vec![u1]);
        let d1 = tr.comm_task(
            Activity::DeviceToHost,
            pcie1,
            dur(1),
            SimDuration::ZERO,
            50,
            vec![k1],
        );
        let s0 = tr.comm_task(Activity::NetSend, nic, dur(3), dur(1), 50, vec![d0]);
        let s1 = tr.comm_task(Activity::NetSend, nic, dur(3), dur(1), 50, vec![d1]);
        let sort = tr.task(Activity::SortCpu, cpu, dur(2), vec![s0, s1]);
        let red = tr.task(Activity::ReduceCpu, cpu, dur(4), vec![sort]);

        let s = simulate(&tr);
        // Map side: k1 path finishes last: u1(2) + k1(14) + d1(1) = 17.
        assert_eq!(s.timing(d1).complete, SimTime(17));
        assert_eq!(s.timing(red).finish, SimTime(17 + 3 + 1 + 2 + 4));
        let acc = account(&tr, &s);
        (tr, acc)
    }

    #[test]
    fn milestone_breakdown_stacks_to_makespan() {
        let (_tr, acc) = tiny_pipeline();
        assert_eq!(acc.breakdown.map, dur(17));
        // s0 ran at t=13..16 (overlapped with mapping); s1 at 17..20 +1 wire.
        assert_eq!(acc.breakdown.partition_io, dur(4));
        assert_eq!(acc.breakdown.sort, dur(2));
        assert_eq!(acc.breakdown.reduce, dur(4));
        assert_eq!(acc.breakdown.total(), acc.makespan);
    }

    #[test]
    fn busy_and_split_totals() {
        let (_tr, acc) = tiny_pipeline();
        assert_eq!(acc.kernel_demand, dur(24));
        // comm: 2 uploads (2+2) + 2 readbacks (1+1) + 2 sends (3+3) = 12.
        assert_eq!(acc.communication_demand, dur(12));
        // compute: kernels 24 + sort 2 + reduce 4 = 30.
        assert_eq!(acc.computation_demand, dur(30));
        assert_eq!(acc.serial_demand, dur(42));
        assert!(acc.overlap_factor() > 1.0);
        assert_eq!(acc.totals(Activity::NetSend).bytes, 100);
        assert_eq!(acc.totals(Activity::NetSend).tasks, 2);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let tr = Trace::new();
        let s = simulate(&tr);
        let acc = account(&tr, &s);
        assert_eq!(acc.breakdown.total(), SimDuration::ZERO);
        assert_eq!(acc.makespan, SimDuration::ZERO);
        assert_eq!(acc.overlap_factor(), 1.0);
    }

    #[test]
    fn milestones_are_monotone_even_with_odd_orderings() {
        // A reduce-tagged task that finishes before any map task must not
        // produce negative phases.
        let mut tr = Trace::new();
        let r = tr.add_resource();
        tr.task(Activity::ReduceCpu, r, dur(1), vec![]);
        tr.task(Activity::Kernel, r, dur(10), vec![]);
        let s = simulate(&tr);
        let acc = account(&tr, &s);
        assert_eq!(acc.breakdown.map, dur(11));
        assert_eq!(acc.breakdown.reduce, SimDuration::ZERO);
        assert_eq!(acc.breakdown.total(), acc.makespan);
    }
}
