//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is kept in integer **nanoseconds** so that event ordering is
//! exact and replay is deterministic; floating-point seconds are only used at
//! the edges (cost models in, reports out).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (report-side only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The elapsed span since `earlier`; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn max_of(a: SimTime, b: SimTime) -> SimTime {
        if a >= b {
            a
        } else {
            b
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from seconds; negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        // Round to the nearest nanosecond for stability across cost models.
        SimDuration((secs * 1e9).round() as u64)
    }

    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis_f64();
        if ms >= 1000.0 {
            write!(f, "{:.3} s", ms / 1000.0)
        } else if ms >= 1.0 {
            write!(f, "{ms:.3} ms")
        } else {
            write!(f, "{:.1} us", ms * 1000.0)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_from_secs_round_trips() {
        let d = SimDuration::from_secs_f64(0.020);
        assert_eq!(d.nanos(), 20_000_000);
        assert!((d.as_secs_f64() - 0.020).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(b.since(a), SimDuration(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(20);
        assert_eq!(t, SimTime(120));
        assert_eq!(t - SimTime(100), SimDuration(20));
        let total: SimDuration = [SimDuration(1), SimDuration(2)].into_iter().sum();
        assert_eq!(total, SimDuration(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500 s");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000 ms");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7.0 us");
    }
}
