//! # mgpu-sim — discrete-event simulation substrate
//!
//! The reproduction runs the paper's algorithms for real on the CPU, but the
//! *hardware* of the 2010 NCSA Accelerator Cluster (Tesla-class GPUs, PCIe
//! gen-2, node-local disks, QDR InfiniBand) is modeled. This crate provides
//! the machinery:
//!
//! * [`time`] — integer-nanosecond virtual time;
//! * [`activity`] — the taxonomy of traced work and its mapping onto the
//!   paper's Figure-3 phase buckets;
//! * [`trace`] — dependency traces recorded by the functional MapReduce run;
//! * [`engine`] — deterministic FIFO-resource replay producing a schedule;
//! * [`accounting`] — phase breakdowns, busy times and the §6.3
//!   communication/computation split;
//! * [`models`] — latency+bandwidth and overhead+rate cost-model shapes.
//!
//! Separating *what happened* (the trace, produced by real execution) from
//! *when it happened* (the replay, produced by the engine) keeps the timing
//! model pure, deterministic and unit-testable, while the images that come
//! out of the renderer remain genuinely computed.

#![forbid(unsafe_code)]

pub mod accounting;
pub mod activity;
pub mod engine;
pub mod gantt;
pub mod models;
pub mod time;
pub mod trace;

pub use accounting::{account, ActivityTotals, PhaseBreakdown, RunAccounting};
pub use activity::{Activity, Fig3Bucket};
pub use engine::{serial_demand, simulate, Schedule, TaskTiming};
pub use gantt::{ascii_timeline, gantt_bars, resource_use, GanttBar, ResourceUse};
pub use models::{LinkModel, RateModel};
pub use time::{SimDuration, SimTime};
pub use trace::{ResourceId, TaskId, TaskSpec, Trace};
