//! Generic hardware cost models shared by the GPU and cluster crates.
//!
//! Every model maps a demand (bytes, samples, items) to a [`SimDuration`].
//! The constants themselves live with the hardware presets (`mgpu-gpu` for
//! the device, `mgpu-cluster` for disks and the interconnect); this module
//! only provides the shapes.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A latency + bandwidth pipe: `time(bytes) = latency + bytes / bandwidth`.
///
/// Used for PCIe links, disks, NICs and shared-memory copies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed per-operation latency, seconds.
    pub latency_s: f64,
    /// Sustained bandwidth, bytes per second.
    pub bytes_per_s: f64,
}

impl LinkModel {
    pub fn new(latency_s: f64, bytes_per_s: f64) -> LinkModel {
        assert!(latency_s >= 0.0, "negative latency");
        assert!(bytes_per_s > 0.0, "non-positive bandwidth");
        LinkModel {
            latency_s,
            bytes_per_s,
        }
    }

    /// Time to move `bytes` through this link.
    pub fn time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.latency_s + bytes as f64 / self.bytes_per_s)
    }

    /// Effective bandwidth achieved for a transfer of `bytes` (report-side).
    pub fn effective_bytes_per_s(&self, bytes: u64) -> f64 {
        let t = self.time(bytes).as_secs_f64();
        if t <= 0.0 {
            return self.bytes_per_s;
        }
        bytes as f64 / t
    }
}

/// A rate server: `time(units) = overhead + units / rate`.
///
/// Used for kernels (units = samples), sorts and reductions (units = pairs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateModel {
    /// Fixed per-invocation overhead, seconds (e.g. kernel launch).
    pub overhead_s: f64,
    /// Sustained processing rate, units per second.
    pub units_per_s: f64,
}

impl RateModel {
    pub fn new(overhead_s: f64, units_per_s: f64) -> RateModel {
        assert!(overhead_s >= 0.0, "negative overhead");
        assert!(units_per_s > 0.0, "non-positive rate");
        RateModel {
            overhead_s,
            units_per_s,
        }
    }

    pub fn time(&self, units: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.overhead_s + units as f64 / self.units_per_s)
    }
}

/// Convenience constructors for common magnitudes.
pub mod units {
    pub const KIB: f64 = 1024.0;
    pub const MIB: f64 = 1024.0 * 1024.0;
    pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    pub fn mib(n: f64) -> u64 {
        (n * MIB) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_is_latency_plus_transfer() {
        let l = LinkModel::new(0.001, 1000.0);
        // 1 ms + 500/1000 s = 501 ms.
        assert_eq!(l.time(500), SimDuration::from_millis(501));
    }

    #[test]
    fn paper_anchor_disk_64cubed_brick_about_20ms() {
        // §3: "loading a 64³ block from disk takes approximately 20 ms".
        let disk = LinkModel::new(0.008, 85.0 * units::MIB);
        let brick_bytes = 64u64 * 64 * 64 * 4;
        let t = disk.time(brick_bytes).as_millis_f64();
        assert!(
            (t - 20.0).abs() < 1.5,
            "disk model off paper anchor: {t} ms"
        );
    }

    #[test]
    fn paper_anchor_h2d_under_point2ms_for_1mib() {
        // §3: transferring that (1 MiB) brick to the GPU takes < 0.2 ms.
        let pcie = LinkModel::new(15e-6, 6.0 * units::GIB);
        let t = pcie.time(64 * 64 * 64 * 4).as_millis_f64();
        assert!(t < 0.2, "PCIe model breaks the <0.2ms anchor: {t} ms");
        assert!(t > 0.05, "PCIe model implausibly fast: {t} ms");
    }

    #[test]
    fn effective_bandwidth_monotone_in_size() {
        let l = LinkModel::new(0.001, 1e9);
        assert!(l.effective_bytes_per_s(1_000) < l.effective_bytes_per_s(1_000_000));
        assert!(l.effective_bytes_per_s(1 << 30) <= 1e9);
    }

    #[test]
    fn rate_model_time() {
        let r = RateModel::new(60e-6, 267e6);
        let t = r.time(267_000_000).as_secs_f64();
        assert!((t - 1.00006).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn rejects_zero_bandwidth() {
        LinkModel::new(0.0, 0.0);
    }
}
