//! The discrete-event engine: replays a [`Trace`] against FIFO resources and
//! produces exact start/finish times for every task.
//!
//! Scheduling discipline: a task becomes *ready* when all of its dependencies
//! have completed (service + post-latency). Ready tasks queue on their
//! resource and are serviced FIFO in ready-time order, ties broken by task id,
//! which makes the replay fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};
use crate::trace::{TaskId, Trace};

/// When a task ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// Service start on the resource.
    pub start: SimTime,
    /// Service end (resource becomes free).
    pub finish: SimTime,
    /// Finish plus post-latency: the instant dependents may observe.
    pub complete: SimTime,
}

/// The outcome of replaying a trace.
#[derive(Debug, Clone)]
pub struct Schedule {
    timings: Vec<TaskTiming>,
    makespan: SimTime,
}

impl Schedule {
    pub fn timing(&self, id: TaskId) -> TaskTiming {
        self.timings[id.0 as usize]
    }

    pub fn timings(&self) -> &[TaskTiming] {
        &self.timings
    }

    /// Completion time of the last task (the run's virtual wall-clock).
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }
}

/// Replay `trace` and return the schedule.
///
/// Panics if the trace is malformed (impossible by construction via
/// [`Trace::push`], which rejects forward dependencies).
pub fn simulate(trace: &Trace) -> Schedule {
    let n = trace.len();
    let mut remaining_deps: Vec<u32> = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in trace.tasks().iter().enumerate() {
        remaining_deps.push(t.deps.len() as u32);
        for d in &t.deps {
            dependents[d.0 as usize].push(TaskId(i as u32));
        }
    }

    // Min-heap of (ready_time, task_id): global time order gives FIFO-by-ready
    // semantics per resource.
    let mut ready: BinaryHeap<Reverse<(SimTime, TaskId)>> = BinaryHeap::new();
    for (i, &rd) in remaining_deps.iter().enumerate() {
        if rd == 0 {
            ready.push(Reverse((SimTime::ZERO, TaskId(i as u32))));
        }
    }

    let mut resource_free: Vec<SimTime> = vec![SimTime::ZERO; trace.num_resources()];
    let mut timings: Vec<TaskTiming> = vec![
        TaskTiming {
            start: SimTime::ZERO,
            finish: SimTime::ZERO,
            complete: SimTime::ZERO,
        };
        n
    ];
    let mut scheduled = 0usize;
    let mut makespan = SimTime::ZERO;

    while let Some(Reverse((ready_at, id))) = ready.pop() {
        let spec = trace.get(id);
        let r = spec.resource.0 as usize;
        let start = SimTime::max_of(ready_at, resource_free[r]);
        let finish = start + spec.duration;
        let complete = finish + spec.post_latency;
        resource_free[r] = finish;
        timings[id.0 as usize] = TaskTiming {
            start,
            finish,
            complete,
        };
        makespan = SimTime::max_of(makespan, complete);
        scheduled += 1;

        for &dep in &dependents[id.0 as usize] {
            let rd = &mut remaining_deps[dep.0 as usize];
            *rd -= 1;
            if *rd == 0 {
                // The dependent is ready when its latest dependency completes.
                let mut t = SimTime::ZERO;
                for d in &trace.get(dep).deps {
                    t = SimTime::max_of(t, timings[d.0 as usize].complete);
                }
                ready.push(Reverse((t, dep)));
            }
        }
    }

    assert_eq!(
        scheduled, n,
        "dependency cycle or dangling dependency in trace"
    );

    Schedule { timings, makespan }
}

/// Serial lower bound: the sum of all service demands, i.e. the runtime with
/// zero overlap. Useful for "speed-of-light" comparisons (§6.3).
pub fn serial_demand(trace: &Trace) -> SimDuration {
    trace.tasks().iter().map(|t| t.duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::trace::TaskSpec;

    fn dur(n: u64) -> SimDuration {
        SimDuration(n)
    }

    #[test]
    fn independent_tasks_on_one_resource_serialize() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        let a = tr.task(Activity::Kernel, r, dur(10), vec![]);
        let b = tr.task(Activity::Kernel, r, dur(5), vec![]);
        let s = simulate(&tr);
        assert_eq!(s.timing(a).start, SimTime(0));
        assert_eq!(s.timing(a).finish, SimTime(10));
        assert_eq!(s.timing(b).start, SimTime(10));
        assert_eq!(s.timing(b).finish, SimTime(15));
        assert_eq!(s.makespan(), SimTime(15));
    }

    #[test]
    fn independent_tasks_on_two_resources_overlap() {
        let mut tr = Trace::new();
        let r0 = tr.add_resource();
        let r1 = tr.add_resource();
        tr.task(Activity::Kernel, r0, dur(10), vec![]);
        tr.task(Activity::Kernel, r1, dur(10), vec![]);
        let s = simulate(&tr);
        assert_eq!(s.makespan(), SimTime(10));
    }

    #[test]
    fn dependencies_are_respected() {
        let mut tr = Trace::new();
        let r0 = tr.add_resource();
        let r1 = tr.add_resource();
        let a = tr.task(Activity::HostToDevice, r0, dur(3), vec![]);
        let b = tr.task(Activity::Kernel, r1, dur(7), vec![a]);
        let s = simulate(&tr);
        assert_eq!(s.timing(b).start, SimTime(3));
        assert_eq!(s.makespan(), SimTime(10));
    }

    #[test]
    fn post_latency_delays_dependents_but_frees_resource() {
        let mut tr = Trace::new();
        let nic = tr.add_resource();
        let cpu = tr.add_resource();
        let send = tr.comm_task(Activity::NetSend, nic, dur(4), dur(6), 64, vec![]);
        // Another send can start as soon as the NIC is free (t=4)...
        let send2 = tr.comm_task(Activity::NetSend, nic, dur(4), dur(6), 64, vec![]);
        // ...but the receiver-side work waits for wire latency (t=10).
        let recv = tr.task(Activity::SortCpu, cpu, dur(1), vec![send]);
        let s = simulate(&tr);
        assert_eq!(s.timing(send2).start, SimTime(4));
        assert_eq!(s.timing(recv).start, SimTime(10));
    }

    #[test]
    fn fifo_order_is_by_ready_time_not_insertion() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        let gate_r = tr.add_resource();
        // `late` is created first but only becomes ready at t=8.
        let gate = tr.task(Activity::Other, gate_r, dur(8), vec![]);
        let late = tr.task(Activity::Kernel, r, dur(1), vec![gate]);
        let early = tr.task(Activity::Kernel, r, dur(3), vec![]);
        let s = simulate(&tr);
        assert_eq!(s.timing(early).start, SimTime(0));
        assert_eq!(s.timing(late).start, SimTime(8));
    }

    #[test]
    fn diamond_critical_path() {
        let mut tr = Trace::new();
        let rs = tr.add_resources(4);
        let a = tr.task(Activity::Kernel, rs[0], dur(2), vec![]);
        let b = tr.task(Activity::Kernel, rs[1], dur(10), vec![a]);
        let c = tr.task(Activity::Kernel, rs[2], dur(3), vec![a]);
        let d = tr.task(Activity::Kernel, rs[3], dur(1), vec![b, c]);
        let s = simulate(&tr);
        assert_eq!(s.timing(d).start, SimTime(12));
        assert_eq!(s.makespan(), SimTime(13));
    }

    #[test]
    fn serial_demand_sums_everything() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        tr.task(Activity::Kernel, r, dur(10), vec![]);
        tr.task(Activity::SortCpu, r, dur(5), vec![]);
        assert_eq!(serial_demand(&tr), dur(15));
    }

    #[test]
    fn empty_trace_is_fine() {
        let tr = Trace::new();
        let s = simulate(&tr);
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn zero_duration_tasks_chain() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        let a = tr.task(Activity::Other, r, dur(0), vec![]);
        let b = tr.task(Activity::Other, r, dur(0), vec![a]);
        let s = simulate(&tr);
        assert_eq!(s.timing(b).finish, SimTime(0));
    }

    #[test]
    fn push_accepts_full_spec() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        let id = tr.push(TaskSpec {
            activity: Activity::NetRecv,
            resource: r,
            duration: dur(2),
            post_latency: dur(1),
            deps: vec![],
            bytes: 42,
        });
        let s = simulate(&tr);
        assert_eq!(s.timing(id).complete, SimTime(3));
    }
}
