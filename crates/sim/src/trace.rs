//! Dependency traces: the functional MapReduce run records *what* happened
//! (tasks, their service demands, and their dependencies); the engine replays
//! the trace against modeled hardware to obtain *when* it happened.

use crate::activity::Activity;
use crate::time::SimDuration;

/// Index of a task inside a [`Trace`]. Dense, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// A serially-used hardware resource (a GPU, a PCIe link, a disk, a NIC, a
/// CPU core). Tasks bound to the same resource are serviced FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// One unit of traced work.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    pub activity: Activity,
    pub resource: ResourceId,
    /// Service demand on the resource (how long the resource is occupied).
    pub duration: SimDuration,
    /// Extra latency after service completes before dependents may start
    /// (e.g. wire latency of a network hop). Does not occupy the resource.
    pub post_latency: SimDuration,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
    /// Bytes moved (for communication tasks) — used by reports only.
    pub bytes: u64,
}

/// A complete dependency graph of traced work.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    tasks: Vec<TaskSpec>,
    num_resources: u32,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Register a resource and get its id. Resources are cheap; callers
    /// typically allocate one per modeled hardware unit up front.
    pub fn add_resource(&mut self) -> ResourceId {
        let id = ResourceId(self.num_resources);
        self.num_resources += 1;
        id
    }

    /// Declare `n` resources at once, returning their ids in order.
    pub fn add_resources(&mut self, n: usize) -> Vec<ResourceId> {
        (0..n).map(|_| self.add_resource()).collect()
    }

    pub fn num_resources(&self) -> usize {
        self.num_resources as usize
    }

    /// Append a task; panics if a dependency or resource id is out of range
    /// (dependencies must be created before their dependents, which also
    /// guarantees the graph is acyclic).
    pub fn push(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        assert!(
            spec.resource.0 < self.num_resources,
            "task references unregistered resource {:?}",
            spec.resource
        );
        for d in &spec.deps {
            assert!(d.0 < id.0, "task {id:?} depends on not-yet-created {d:?}");
        }
        self.tasks.push(spec);
        id
    }

    /// Convenience: append a task with no post-latency and no byte count.
    pub fn task(
        &mut self,
        activity: Activity,
        resource: ResourceId,
        duration: SimDuration,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.push(TaskSpec {
            activity,
            resource,
            duration,
            post_latency: SimDuration::ZERO,
            deps,
            bytes: 0,
        })
    }

    /// Convenience: a communication task (records bytes and wire latency).
    pub fn comm_task(
        &mut self,
        activity: Activity,
        resource: ResourceId,
        duration: SimDuration,
        post_latency: SimDuration,
        bytes: u64,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.push(TaskSpec {
            activity,
            resource,
            duration,
            post_latency,
            deps,
            bytes,
        })
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    pub fn get(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.0 as usize]
    }

    /// Total bytes moved by tasks of the given activity.
    pub fn bytes_for(&self, activity: Activity) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.activity == activity)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total service demand of tasks of the given activity (ignores overlap).
    pub fn demand_for(&self, activity: Activity) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.activity == activity)
            .map(|t| t.duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        let a = tr.task(Activity::Kernel, r, SimDuration(10), vec![]);
        let b = tr.comm_task(
            Activity::NetSend,
            r,
            SimDuration(5),
            SimDuration(2),
            128,
            vec![a],
        );
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.get(b).deps, vec![a]);
        assert_eq!(tr.bytes_for(Activity::NetSend), 128);
        assert_eq!(tr.demand_for(Activity::Kernel), SimDuration(10));
    }

    #[test]
    #[should_panic(expected = "unregistered resource")]
    fn rejects_unknown_resource() {
        let mut tr = Trace::new();
        tr.task(Activity::Kernel, ResourceId(3), SimDuration(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "not-yet-created")]
    fn rejects_forward_dependency() {
        let mut tr = Trace::new();
        let r = tr.add_resource();
        tr.task(Activity::Kernel, r, SimDuration(1), vec![TaskId(7)]);
    }
}
