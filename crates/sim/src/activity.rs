//! Activity taxonomy for traced work, and the mapping onto the phase buckets
//! reported in the paper's Figure 3 (Map / Partition + I/O / Sort / Reduce).

use serde::{Deserialize, Serialize};

/// What a traced task is doing. Every task in a [`crate::trace::Trace`] is
/// tagged with one activity; phase accounting aggregates over these tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Reading a brick (or any blob) from a node-local disk.
    DiskRead,
    /// Host→device PCIe copy (brick upload; synchronous for 3-D textures, as
    /// the paper notes for CUDA 3.0).
    HostToDevice,
    /// GPU kernel execution (the ray-casting map kernel).
    Kernel,
    /// Device→host PCIe copy (emitted key-value pairs / ray fragments).
    DeviceToHost,
    /// CPU-side partitioning of emitted pairs into per-reducer batches.
    PartitionCpu,
    /// A network send of a fragment batch (sender-side NIC occupancy).
    NetSend,
    /// A network receive of a fragment batch (receiver-side NIC occupancy).
    NetRecv,
    /// Intra-node handoff between processes (shared-memory copy).
    LocalCopy,
    /// Counting sort of received pairs on the CPU.
    SortCpu,
    /// Counting sort of received pairs on the GPU (ablation path).
    SortGpu,
    /// Per-key reduction (pixel compositing) on the CPU (paper default).
    ReduceCpu,
    /// Per-key reduction on the GPU (ablation path).
    ReduceGpu,
    /// Final image stitching. Implemented, but excluded from figure timings —
    /// the paper excludes it too.
    Stitch,
    /// Anything else (bookkeeping, barriers).
    Other,
}

/// The four stacked buckets of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Fig3Bucket {
    /// Brick upload + ray-cast kernel + fragment readback.
    Map,
    /// Partitioning plus disk and network I/O ("Partition + I/O").
    PartitionIo,
    Sort,
    Reduce,
}

impl Fig3Bucket {
    pub const ALL: [Fig3Bucket; 4] = [
        Fig3Bucket::Map,
        Fig3Bucket::PartitionIo,
        Fig3Bucket::Sort,
        Fig3Bucket::Reduce,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Fig3Bucket::Map => "Map",
            Fig3Bucket::PartitionIo => "Partition + I/O",
            Fig3Bucket::Sort => "Sort",
            Fig3Bucket::Reduce => "Reduce",
        }
    }
}

impl Activity {
    /// Which Figure-3 bucket this activity's time is attributed to.
    ///
    /// Stitch and Other return `None`: the paper excludes stitching from its
    /// timings ("it is a separate phase from Map, Sort, Partition, and
    /// Reduce").
    pub fn fig3_bucket(self) -> Option<Fig3Bucket> {
        use Activity::*;
        match self {
            HostToDevice | Kernel | DeviceToHost => Some(Fig3Bucket::Map),
            DiskRead | PartitionCpu | NetSend | NetRecv | LocalCopy => {
                Some(Fig3Bucket::PartitionIo)
            }
            SortCpu | SortGpu => Some(Fig3Bucket::Sort),
            ReduceCpu | ReduceGpu => Some(Fig3Bucket::Reduce),
            Stitch | Other => None,
        }
    }

    /// True for activities the §6.3 bottleneck analysis counts as
    /// *communication* (everything that moves bytes rather than computes).
    pub fn is_communication(self) -> bool {
        use Activity::*;
        matches!(
            self,
            DiskRead | HostToDevice | DeviceToHost | NetSend | NetRecv | LocalCopy
        )
    }

    /// True for activities the §6.3 bottleneck analysis counts as
    /// *computation*.
    pub fn is_computation(self) -> bool {
        use Activity::*;
        matches!(
            self,
            Kernel | PartitionCpu | SortCpu | SortGpu | ReduceCpu | ReduceGpu
        )
    }

    pub fn label(self) -> &'static str {
        use Activity::*;
        match self {
            DiskRead => "disk-read",
            HostToDevice => "h2d",
            Kernel => "kernel",
            DeviceToHost => "d2h",
            PartitionCpu => "partition",
            NetSend => "net-send",
            NetRecv => "net-recv",
            LocalCopy => "local-copy",
            SortCpu => "sort-cpu",
            SortGpu => "sort-gpu",
            ReduceCpu => "reduce-cpu",
            ReduceGpu => "reduce-gpu",
            Stitch => "stitch",
            Other => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_activity_is_comm_xor_compute_or_excluded() {
        use Activity::*;
        let all = [
            DiskRead,
            HostToDevice,
            Kernel,
            DeviceToHost,
            PartitionCpu,
            NetSend,
            NetRecv,
            LocalCopy,
            SortCpu,
            SortGpu,
            ReduceCpu,
            ReduceGpu,
            Stitch,
            Other,
        ];
        for a in all {
            assert!(
                !(a.is_communication() && a.is_computation()),
                "{a:?} classified as both comm and compute"
            );
        }
    }

    #[test]
    fn bucket_mapping_matches_paper_grouping() {
        assert_eq!(Activity::Kernel.fig3_bucket(), Some(Fig3Bucket::Map));
        assert_eq!(Activity::HostToDevice.fig3_bucket(), Some(Fig3Bucket::Map));
        assert_eq!(
            Activity::NetSend.fig3_bucket(),
            Some(Fig3Bucket::PartitionIo)
        );
        assert_eq!(
            Activity::DiskRead.fig3_bucket(),
            Some(Fig3Bucket::PartitionIo)
        );
        assert_eq!(Activity::SortCpu.fig3_bucket(), Some(Fig3Bucket::Sort));
        assert_eq!(Activity::ReduceCpu.fig3_bucket(), Some(Fig3Bucket::Reduce));
        assert_eq!(Activity::Stitch.fig3_bucket(), None);
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(Fig3Bucket::PartitionIo.label(), "Partition + I/O");
        assert_eq!(Fig3Bucket::ALL.len(), 4);
    }
}
