//! Per-resource utilization and Gantt-style interval export for replayed
//! schedules — the raw material for timeline plots and utilization tables.

use crate::activity::Activity;
use crate::engine::Schedule;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// One service interval on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanttBar {
    pub resource: u32,
    pub activity: Activity,
    pub start: SimTime,
    pub finish: SimTime,
}

/// Utilization summary of one resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUse {
    pub resource: u32,
    pub busy: SimDuration,
    pub tasks: u64,
    /// busy / makespan, in [0, 1].
    pub utilization: f64,
}

/// All bars, sorted by (resource, start) — ready for plotting.
pub fn gantt_bars(trace: &Trace, schedule: &Schedule) -> Vec<GanttBar> {
    let mut bars: Vec<GanttBar> = trace
        .tasks()
        .iter()
        .zip(schedule.timings())
        .filter(|(spec, _)| !spec.duration.is_zero())
        .map(|(spec, t)| GanttBar {
            resource: spec.resource.0,
            activity: spec.activity,
            start: t.start,
            finish: t.finish,
        })
        .collect();
    bars.sort_by_key(|b| (b.resource, b.start));
    bars
}

/// Per-resource busy time and utilization.
pub fn resource_use(trace: &Trace, schedule: &Schedule) -> Vec<ResourceUse> {
    let makespan = schedule.makespan().as_secs_f64();
    let mut busy = vec![SimDuration::ZERO; trace.num_resources()];
    let mut tasks = vec![0u64; trace.num_resources()];
    for spec in trace.tasks() {
        busy[spec.resource.0 as usize] += spec.duration;
        tasks[spec.resource.0 as usize] += 1;
    }
    busy.iter()
        .zip(&tasks)
        .enumerate()
        .map(|(r, (&b, &n))| ResourceUse {
            resource: r as u32,
            busy: b,
            tasks: n,
            utilization: if makespan > 0.0 {
                (b.as_secs_f64() / makespan).min(1.0)
            } else {
                0.0
            },
        })
        .collect()
}

/// Render a coarse ASCII timeline (one row per resource, `width` columns).
pub fn ascii_timeline(trace: &Trace, schedule: &Schedule, width: usize) -> String {
    let makespan = schedule.makespan().nanos().max(1);
    let mut rows = vec![vec![b'.'; width]; trace.num_resources()];
    for (spec, t) in trace.tasks().iter().zip(schedule.timings()) {
        if spec.duration.is_zero() {
            continue;
        }
        let c = spec.activity.label().as_bytes()[0].to_ascii_uppercase();
        let lo = (t.start.nanos() as u128 * width as u128 / makespan as u128) as usize;
        let hi = (t.finish.nanos() as u128 * width as u128 / makespan as u128) as usize;
        for cell in &mut rows[spec.resource.0 as usize][lo..hi.max(lo + 1).min(width)] {
            *cell = c;
        }
    }
    rows.iter()
        .enumerate()
        .map(|(r, row)| format!("r{:02} |{}|", r, String::from_utf8_lossy(row)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::trace::Trace;

    fn sample() -> (Trace, Schedule) {
        let mut tr = Trace::new();
        let r0 = tr.add_resource();
        let r1 = tr.add_resource();
        let a = tr.task(Activity::Kernel, r0, SimDuration(10), vec![]);
        let b = tr.task(Activity::Kernel, r0, SimDuration(10), vec![]);
        tr.task(Activity::SortCpu, r1, SimDuration(5), vec![a, b]);
        let s = simulate(&tr);
        (tr, s)
    }

    #[test]
    fn bars_are_sorted_and_non_overlapping_per_resource() {
        let (tr, s) = sample();
        let bars = gantt_bars(&tr, &s);
        assert_eq!(bars.len(), 3);
        for w in bars.windows(2) {
            if w[0].resource == w[1].resource {
                assert!(w[0].finish <= w[1].start);
            }
        }
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let (tr, s) = sample();
        let use_ = resource_use(&tr, &s);
        // r0 busy 20 of 25; r1 busy 5 of 25.
        assert!((use_[0].utilization - 0.8).abs() < 1e-9);
        assert!((use_[1].utilization - 0.2).abs() < 1e-9);
        assert_eq!(use_[0].tasks, 2);
    }

    #[test]
    fn ascii_timeline_shapes() {
        let (tr, s) = sample();
        let art = ascii_timeline(&tr, &s, 25);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('K'));
        assert!(lines[1].contains('S'));
        // Sort happens in the last fifth of the timeline.
        let sort_pos = lines[1].find('S').unwrap();
        assert!(sort_pos > 20, "{art}");
    }

    #[test]
    fn empty_schedule() {
        let tr = Trace::new();
        let s = simulate(&tr);
        assert!(gantt_bars(&tr, &s).is_empty());
        assert!(resource_use(&tr, &s).is_empty());
    }
}
