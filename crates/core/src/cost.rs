//! CPU-side cost models and the [`CostBook`] bundling every model the trace
//! builder needs.
//!
//! GPU and interconnect models live with their hardware
//! ([`mgpu_gpu::DeviceProps`], [`mgpu_cluster::NetworkModel`]); this module
//! adds the host-CPU stages (partition / sort / reduce) at 2010 Nehalem-class
//! single-core rates.

use mgpu_cluster::ClusterSpec;
use mgpu_gpu::DeviceProps;
use mgpu_sim::{LinkModel, RateModel, SimDuration};

/// Host-CPU stage rates (one core per GPU process, per the quad-core node /
/// 4-GPU node pairing of the Accelerator Cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Partitioning: a modulo + a bucket append per pair.
    pub partition: RateModel,
    /// Counting sort: two linear passes per pair.
    pub sort: RateModel,
    /// Reduction: per-fragment compositing cost (includes the per-pixel
    /// depth sort the paper does on the CPU).
    pub reduce_per_item: RateModel,
    /// Fixed cost per reduced key (group setup, output write).
    pub reduce_group_overhead_s: f64,
}

impl CpuCostModel {
    /// 2010 Nehalem-class single-core estimates: ~180 M pairs/s streaming
    /// partition, ~80 M pairs/s counting sort, ~10 M fragments/s composite
    /// (allocation-heavy per-pixel depth sort + blend in the 2010 code),
    /// 60 ns per pixel group.
    pub fn nehalem_2010() -> CpuCostModel {
        CpuCostModel {
            partition: RateModel::new(20e-6, 180e6),
            sort: RateModel::new(30e-6, 80e6),
            reduce_per_item: RateModel::new(20e-6, 10e6),
            reduce_group_overhead_s: 60e-9,
        }
    }

    pub fn partition_time(&self, pairs: u64) -> SimDuration {
        self.partition.time(pairs)
    }

    pub fn sort_time(&self, pairs: u64) -> SimDuration {
        self.sort.time(pairs)
    }

    pub fn reduce_time(&self, items: u64, groups: u64) -> SimDuration {
        self.reduce_per_item.time(items)
            + SimDuration::from_secs_f64(self.reduce_group_overhead_s * groups as f64)
    }
}

/// GPU-side reduce model (the §3.1.2 ablation: "while the GPU would be very
/// good at compositing … it is actually quicker to do the compositing on the
/// CPU" at this scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuReduceModel {
    /// Composite rate once data is on the device. Much higher than the CPU's…
    pub reduce_per_item: RateModel,
    /// …but the data must get there and back, and each kernel launch pays
    /// overhead — which is exactly why the CPU wins at small fragment counts.
    pub launch_overhead_s: f64,
}

impl GpuReduceModel {
    /// The effective GPU compositing rate is only ~6× the CPU's: the
    /// per-pixel depth sort is branchy and the reductions are many and small,
    /// so SIMT utilization is poor — and the reduce wave pays a hefty fixed
    /// cost (upload, many kernel launches, readback). Crossover lands around
    /// 120 k fragments per reducer: above the paper's per-reducer loads,
    /// below "hundreds or thousands of GPUs" worth, matching §3.1.2.
    pub fn tesla_c1060() -> GpuReduceModel {
        GpuReduceModel {
            reduce_per_item: RateModel::new(0.0, 60e6),
            launch_overhead_s: 10e-3,
        }
    }

    pub fn reduce_time(&self, items: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.launch_overhead_s) + self.reduce_per_item.time(items)
    }
}

/// Every cost model the trace builder consults.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBook {
    pub device: DeviceProps,
    pub cpu: CpuCostModel,
    pub gpu_reduce: GpuReduceModel,
    pub disk: LinkModel,
}

impl CostBook {
    pub fn from_cluster(spec: &ClusterSpec) -> CostBook {
        CostBook {
            device: spec.device.clone(),
            cpu: CpuCostModel::nehalem_2010(),
            gpu_reduce: GpuReduceModel::tesla_c1060(),
            disk: spec.disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_reduce_charges_items_and_groups() {
        let m = CpuCostModel::nehalem_2010();
        let t1 = m.reduce_time(10_000_000, 0).as_secs_f64();
        assert!((t1 - 1.0).abs() < 1e-3);
        let t2 = m.reduce_time(0, 1_000_000).as_secs_f64();
        assert!((t2 - 0.06).abs() < 1e-3);
    }

    #[test]
    fn gpu_reduce_faster_per_item_but_pays_overhead() {
        let cpu = CpuCostModel::nehalem_2010();
        let gpu = GpuReduceModel::tesla_c1060();
        // Paper-scale per-reducer load (~75 k fragments): CPU wins — the
        // §3.1.2 empirical finding.
        let small = 75_000;
        assert!(cpu.reduce_time(small, 30_000) < gpu.reduce_time(small));
        // "Hundreds or thousands of GPUs" worth of fragments: GPU wins.
        let huge = 5_000_000;
        assert!(gpu.reduce_time(huge) < cpu.reduce_time(huge, 30_000));
    }

    #[test]
    fn cost_book_reflects_cluster() {
        let spec = ClusterSpec::accelerator_cluster(4);
        let book = CostBook::from_cluster(&spec);
        assert_eq!(book.device, spec.device);
        assert_eq!(book.disk, spec.disk);
    }
}
