//! # mgpu-mapreduce — the paper's multi-GPU MapReduce library
//!
//! A Rust reproduction of the specialized, streaming multi-GPU MapReduce
//! library of *"Multi-GPU Volume Rendering using MapReduce"* (Stuart et al.,
//! 2010). The four workflow stages — **Map** (GPU kernels over chunks),
//! **Partition** (dense-key routing to reducers), **Sort** (θ(n) counting
//! sort) and **Reduce** — run for real on host threads; every I/O and
//! compute operation is also recorded into a [`record::JobRecord`], from
//! which [`trace_build::build_trace`] reconstructs the run as a dependency
//! trace that `mgpu-sim` replays against the modeled 2010 cluster.
//!
//! The §3.1.1 restrictions the paper adopts for performance are first-class
//! here: 4-byte dense keys ([`types::Key`]), homogeneous POD values
//! ([`types::WireValue`]), mandatory per-thread emission with sentinel
//! placeholders ([`types::SENTINEL_KEY`]), per-pixel round-robin partitioning
//! ([`partition::RoundRobin`]), and in-GPU-memory map tasks (enforced by
//! `mgpu-gpu`'s VRAM allocator).
//!
//! Deliberate omissions, as in the paper: no fault tolerance, no advanced
//! scheduling, no distributed file system. Combining is supported but off by
//! default (§3.1: it "didn't increase performance").

#![forbid(unsafe_code)]

pub mod assign;
pub mod cost;
pub mod partition;
pub mod record;
pub mod runtime;
pub mod sort;
pub mod trace_build;
pub mod traits;
pub mod types;

pub use assign::Assignment;
pub use cost::{CostBook, CpuCostModel, GpuReduceModel};
pub use partition::{Checkerboard, Partitioner, RoundRobin, Striped, Tiled};
pub use record::{ChunkRecord, JobRecord, JobStats, MapperRecord, ReducerRecord, SendRecord};
pub use runtime::{run_job, JobConfig, JobOutput};
pub use sort::{counting_sort_groups, SortedGroups};
pub use trace_build::{build_trace, TraceOptions};
pub use traits::{Chunk, Combiner, FnCombiner, GpuMapper, MapOutput, Reducer};
pub use types::{pair_wire_bytes, Key, Pair, WireValue, SENTINEL_KEY};
