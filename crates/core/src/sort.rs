//! The θ(n) counting sort of §3.1.2: "a specialized counting sort … that runs
//! in θ(n) since the library knows the minimum and maximum keys for each
//! node, as well as the maximum number of keys".
//!
//! Keys are dense integers in `[0, key_space)`; the sort buckets pairs by key
//! in two passes (count, scatter) and is stable, so a deterministic input
//! order yields deterministic grouped output.

use crate::types::Key;

/// Pairs grouped by ascending key: `values[offsets[i]..offsets[i+1]]` are the
/// values of `keys[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedGroups<V> {
    pub keys: Vec<Key>,
    pub offsets: Vec<u32>,
    pub values: Vec<V>,
}

impl<V> SortedGroups<V> {
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    pub fn group(&self, i: usize) -> (Key, &[V]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.keys[i], &self.values[lo..hi])
    }

    pub fn iter(&self) -> impl Iterator<Item = (Key, &[V])> {
        (0..self.num_groups()).map(move |i| self.group(i))
    }

    pub fn total_values(&self) -> usize {
        self.values.len()
    }
}

/// Stable counting sort + group over structure-of-arrays emissions
/// (`in_keys[i]` pairs with `in_values[i]`): two passes over the pairs, one
/// over the key space. Panics if any key is outside `[0, key_space)` —
/// sentinels must be filtered during partitioning, *before* the sort (as in
/// the paper).
pub fn counting_sort_groups<V: Copy>(
    in_keys: &[Key],
    in_values: &[V],
    key_space: u32,
) -> SortedGroups<V> {
    assert_eq!(
        in_keys.len(),
        in_values.len(),
        "SoA key/value column lengths differ"
    );
    if in_keys.is_empty() {
        return SortedGroups {
            keys: Vec::new(),
            offsets: vec![0],
            values: Vec::new(),
        };
    }

    let mut counts = vec![0u32; key_space as usize + 1];
    for &k in in_keys {
        assert!(k < key_space, "key {k} outside dense key space {key_space}");
        counts[k as usize + 1] += 1;
    }
    // Prefix-sum into start offsets (index i holds start of key i).
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let starts = counts; // starts[k] = first slot of key k

    // Scatter values into place via a cursor copy of the starts.
    let mut values: Vec<V> = vec![in_values[0]; in_values.len()];
    let mut cursors = starts.clone();
    for (&k, &v) in in_keys.iter().zip(in_values) {
        let slot = cursors[k as usize];
        values[slot as usize] = v;
        cursors[k as usize] += 1;
    }

    // Compact non-empty keys and their offsets.
    let mut keys = Vec::new();
    let mut offsets = Vec::with_capacity(16);
    offsets.push(0u32);
    for k in 0..key_space as usize {
        let len = starts[k + 1] - starts[k];
        if len > 0 {
            keys.push(k as Key);
            offsets.push(starts[k + 1]);
        }
    }
    SortedGroups {
        keys,
        offsets,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_orders() {
        let keys = [3u32, 1, 3, 0, 1];
        let vals = ['a', 'b', 'c', 'd', 'e'];
        let g = counting_sort_groups(&keys, &vals, 4);
        assert_eq!(g.keys, vec![0, 1, 3]);
        assert_eq!(g.group(0), (0, &['d'][..]));
        // Stability: 'b' before 'e', 'a' before 'c'.
        assert_eq!(g.group(1), (1, &['b', 'e'][..]));
        assert_eq!(g.group(2), (3, &['a', 'c'][..]));
        assert_eq!(g.total_values(), 5);
    }

    #[test]
    fn empty_input() {
        let g = counting_sort_groups::<u32>(&[], &[], 100);
        assert_eq!(g.num_groups(), 0);
        assert_eq!(g.total_values(), 0);
    }

    #[test]
    fn single_key_space() {
        let g = counting_sort_groups(&[0u32, 0, 0], &[1u32, 2, 3], 1);
        assert_eq!(g.keys, vec![0]);
        assert_eq!(g.group(0).1, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside dense key space")]
    fn rejects_out_of_range_keys() {
        counting_sort_groups(&[5u32], &[()], 5);
    }

    #[test]
    fn matches_btreemap_reference() {
        use std::collections::BTreeMap;
        // Pseudo-random but deterministic input.
        let keys: Vec<u32> = (0..1000u64)
            .map(|i| ((i * 2654435761) % 97) as u32)
            .collect();
        let vals: Vec<u64> = (0..1000u64).collect();
        let g = counting_sort_groups(&keys, &vals, 97);
        let mut reference: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (&k, &v) in keys.iter().zip(&vals) {
            reference.entry(k).or_default().push(v);
        }
        assert_eq!(g.num_groups(), reference.len());
        for (i, (k, vs)) in reference.iter().enumerate() {
            let (gk, gvs) = g.group(i);
            assert_eq!(gk, *k);
            assert_eq!(gvs, vs.as_slice());
        }
    }
}
