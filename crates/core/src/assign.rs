//! Chunk→mapper assignment policies.
//!
//! The paper streams bricks to mappers without advanced scheduling (an
//! explicit non-goal); the default here is the same static round-robin its
//! figures imply. Alternatives change *which* GPU owns which brick — results
//! are invariant (tested), but locality and per-GPU load differ, which the
//! DES makes visible.

/// How chunks are distributed across mappers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// Chunk `i` → mapper `i mod M` (deterministic streaming round-robin,
    /// the paper's implied policy and our default).
    #[default]
    RoundRobin,
    /// Contiguous blocks: the first `ceil(N/M)` chunks to mapper 0, etc.
    /// Groups spatially-adjacent bricks on one GPU (depth-adjacent fragments
    /// become combinable, but load can skew toward dense regions).
    Blocked,
    /// Strided with a coprime stride, scattering hot regions across GPUs.
    Strided { stride: u32 },
}

impl Assignment {
    /// The mapper that owns chunk `index` out of `total` chunks on `mappers`
    /// GPUs.
    pub fn mapper_of(&self, index: usize, total: usize, mappers: u32) -> u32 {
        let m = mappers.max(1) as usize;
        match *self {
            Assignment::RoundRobin => (index % m) as u32,
            Assignment::Blocked => {
                let per = total.div_ceil(m).max(1);
                ((index / per).min(m - 1)) as u32
            }
            Assignment::Strided { stride } => {
                let s = stride.max(1) as usize;
                ((index * s) % m) as u32
            }
        }
    }

    /// The chunk indices owned by `mapper`, in processing order.
    pub fn chunks_for(&self, mapper: u32, total: usize, mappers: u32) -> Vec<usize> {
        (0..total)
            .filter(|&i| self.mapper_of(i, total, mappers) == mapper)
            .collect()
    }

    pub fn label(&self) -> &'static str {
        match self {
            Assignment::RoundRobin => "round-robin",
            Assignment::Blocked => "blocked",
            Assignment::Strided { .. } => "strided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage_is_exact(a: Assignment, total: usize, mappers: u32) {
        let mut seen = vec![0u32; total];
        for m in 0..mappers {
            for i in a.chunks_for(m, total, mappers) {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "{a:?} does not partition {total} chunks over {mappers} mappers"
        );
    }

    #[test]
    fn every_policy_partitions_chunks_exactly_once() {
        for total in [0usize, 1, 7, 16, 33] {
            for mappers in [1u32, 2, 5, 8] {
                coverage_is_exact(Assignment::RoundRobin, total, mappers);
                coverage_is_exact(Assignment::Blocked, total, mappers);
                coverage_is_exact(Assignment::Strided { stride: 3 }, total, mappers);
            }
        }
    }

    #[test]
    fn round_robin_balances_within_one() {
        let a = Assignment::RoundRobin;
        let counts: Vec<usize> = (0..4).map(|m| a.chunks_for(m, 10, 4).len()).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn blocked_keeps_contiguity() {
        let a = Assignment::Blocked;
        let chunks = a.chunks_for(0, 16, 4);
        assert_eq!(chunks, vec![0, 1, 2, 3]);
        let last = a.chunks_for(3, 16, 4);
        assert_eq!(last, vec![12, 13, 14, 15]);
    }

    #[test]
    fn blocked_handles_remainders() {
        // 10 chunks over 4 mappers: per = 3 → 3,3,3,1.
        let a = Assignment::Blocked;
        let counts: Vec<usize> = (0..4).map(|m| a.chunks_for(m, 10, 4).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts[0], 3);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn strided_scatters() {
        let a = Assignment::Strided { stride: 3 };
        // With 4 mappers and stride 3: 0→0, 1→3, 2→2, 3→1, 4→0…
        assert_eq!(a.mapper_of(0, 8, 4), 0);
        assert_eq!(a.mapper_of(1, 8, 4), 3);
        assert_eq!(a.mapper_of(2, 8, 4), 2);
        assert_eq!(a.mapper_of(4, 8, 4), 0);
    }
}
