//! Core types and the paper's §3.1.1 restrictions, encoded in the type
//! system where possible:
//!
//! * "Keys are always four-byte integers" → [`Key`] is `u32`;
//! * "If a key X exists, then all keys 0 ≤ X have a high probability of
//!   existing" → dense key spaces, declared up front via
//!   [`crate::runtime::JobConfig::key_space`], enabling the counting sort;
//! * "Emitted values are homogeneous in size" → [`WireValue::WIRE_BYTES`] is
//!   a compile-time constant;
//! * "Every GPU thread must emit a key-value pair. If the thread computes a
//!   useless key-value pair, the kernel emits a later-discarded place
//!   holder" → [`SENTINEL_KEY`].

/// A MapReduce key: a dense four-byte integer (for the renderer, the pixel
/// index `y·width + x`).
pub type Key = u32;

/// The placeholder key emitted by threads with nothing to contribute.
/// Discarded during partitioning, after the (mandatory) device→host copy.
pub const SENTINEL_KEY: Key = u32::MAX;

/// A value that can cross the simulated wire: fixed size, plain data.
///
/// `WIRE_BYTES` is the serialized footprint used for transfer-time
/// accounting (key + value for each emitted pair).
pub trait WireValue: Copy + Send + Sync + Default + 'static {
    const WIRE_BYTES: usize;
}

impl WireValue for u32 {
    const WIRE_BYTES: usize = 4;
}

impl WireValue for u64 {
    const WIRE_BYTES: usize = 8;
}

impl WireValue for f32 {
    const WIRE_BYTES: usize = 4;
}

impl WireValue for [f32; 4] {
    const WIRE_BYTES: usize = 16;
}

impl WireValue for () {
    const WIRE_BYTES: usize = 0;
}

/// Bytes on the wire for one emitted (key, value) pair.
pub const fn pair_wire_bytes<V: WireValue>() -> usize {
    4 + V::WIRE_BYTES
}

/// One emitted key–value pair.
pub type Pair<V> = (Key, V);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(pair_wire_bytes::<u32>(), 8);
        assert_eq!(pair_wire_bytes::<[f32; 4]>(), 20);
        assert_eq!(pair_wire_bytes::<()>(), 4);
    }

    #[test]
    fn sentinel_is_not_a_plausible_pixel() {
        // 512² image keys go to 262143; the sentinel is far outside any
        // realistic dense key space. (Read through a variable so the
        // comparison is a runtime check, not a constant assertion.)
        let sentinel: u64 = SENTINEL_KEY as u64;
        assert!(sentinel > 1 << 30);
    }
}
