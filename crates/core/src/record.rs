//! The job record: a complete, deterministic account of *what* a MapReduce
//! run did, sufficient for the DES to replay *when* it would have happened
//! on the modeled 2010 cluster.

use mgpu_gpu::LaunchStats;

/// One batch of pairs flushed from a mapper to a reducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRecord {
    /// Destination reducer index.
    pub reducer: u32,
    /// Pairs in the batch (post-combiner, sentinels already dropped).
    pub items: u64,
    /// Wire bytes of the batch.
    pub bytes: u64,
    /// The batch was flushed right after this chunk (index into the mapper's
    /// chunk sequence) finished partitioning.
    pub after_chunk: usize,
}

/// Everything one chunk did on its mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    pub chunk_id: usize,
    /// Bytes staged from disk (0 if host-resident).
    pub disk_bytes: u64,
    /// Bytes uploaded over PCIe for the kernel (brick texture).
    pub device_bytes: u64,
    /// Real execution statistics of the map kernel.
    pub launch: LaunchStats,
    /// Emitted slots (== kernel threads: every thread emits).
    pub emitted: u64,
    /// Pairs surviving sentinel discard.
    pub kept: u64,
    /// Wire bytes of the full emission buffer (the device→host copy moves
    /// all slots, sentinels included).
    pub emission_bytes: u64,
}

/// Everything one mapper (one GPU process) did, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapperRecord {
    pub chunks: Vec<ChunkRecord>,
    /// Batch flushes, in flush order (interleaved with chunks via
    /// `after_chunk`).
    pub sends: Vec<SendRecord>,
    /// Bytes of static device state uploaded at init (view matrix, TF LUT).
    pub init_bytes: u64,
}

/// Everything one reducer did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReducerRecord {
    /// Pairs received (== sorted).
    pub items: u64,
    /// Wire bytes received.
    pub bytes: u64,
    /// Number of distinct keys reduced.
    pub groups: u64,
}

/// The full run record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobRecord {
    pub mappers: Vec<MapperRecord>,
    pub reducers: Vec<ReducerRecord>,
}

/// Functional counters for invariant checks and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    pub chunks: u64,
    pub emitted: u64,
    pub sentinels: u64,
    pub kept: u64,
    pub combined_away: u64,
    pub batches: u64,
    pub batches_same_process: u64,
    pub batches_intra_node: u64,
    pub batches_inter_node: u64,
    pub wire_bytes_sent: u64,
    pub reduced_items: u64,
    pub reduced_groups: u64,
}

impl JobStats {
    /// Fragment conservation: everything emitted is either a sentinel,
    /// combined away, or reduced.
    pub fn conserved(&self) -> bool {
        self.emitted == self.sentinels + self.kept
            && self.kept == self.combined_away + self.reduced_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_check() {
        let s = JobStats {
            emitted: 100,
            sentinels: 40,
            kept: 60,
            combined_away: 10,
            reduced_items: 50,
            ..Default::default()
        };
        assert!(s.conserved());
        let broken = JobStats {
            reduced_items: 49,
            ..s
        };
        assert!(!broken.conserved());
    }
}
