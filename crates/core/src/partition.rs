//! Partitioning strategies: which reducer owns a key.
//!
//! The paper partitions "in a per-pixel round-robin fashion. This is,
//! empirically, the highest-performing method... A modulo is sufficient to
//! determine the reducer" (§3.1.1). The alternatives it weighed —
//! checkerboard, tiled, striped distributions (§6, direct-send options) —
//! are implemented too, so the `ablate_partition` bench can reproduce that
//! empirical claim: round-robin gives near-perfect per-reducer balance for
//! any screen-space-coherent fragment distribution, while coarser schemes
//! skew under partial screen coverage.

use crate::types::Key;

/// Maps a key to the reducer that owns it. Must be pure.
pub trait Partitioner: Send + Sync {
    fn reducer_of(&self, key: Key, reducers: u32) -> u32;

    fn name(&self) -> &'static str;
}

/// The paper's choice: `key mod R`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Partitioner for RoundRobin {
    #[inline]
    fn reducer_of(&self, key: Key, reducers: u32) -> u32 {
        key % reducers
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Contiguous horizontal stripes of `rows_per_stripe` image rows.
#[derive(Debug, Clone, Copy)]
pub struct Striped {
    pub width: u32,
    pub rows_per_stripe: u32,
}

impl Partitioner for Striped {
    #[inline]
    fn reducer_of(&self, key: Key, reducers: u32) -> u32 {
        let row = key / self.width;
        (row / self.rows_per_stripe) % reducers
    }

    fn name(&self) -> &'static str {
        "striped"
    }
}

/// Square tiles of `tile × tile` pixels, assigned round-robin by tile index.
#[derive(Debug, Clone, Copy)]
pub struct Tiled {
    pub width: u32,
    pub tile: u32,
}

impl Partitioner for Tiled {
    #[inline]
    fn reducer_of(&self, key: Key, reducers: u32) -> u32 {
        let x = key % self.width;
        let y = key / self.width;
        let tiles_x = self.width.div_ceil(self.tile);
        let t = (y / self.tile) * tiles_x + (x / self.tile);
        t % reducers
    }

    fn name(&self) -> &'static str {
        "tiled"
    }
}

/// Checkerboard over `cell × cell` pixel cells: alternating cells walk
/// through the reducer set diagonally.
#[derive(Debug, Clone, Copy)]
pub struct Checkerboard {
    pub width: u32,
    pub cell: u32,
}

impl Partitioner for Checkerboard {
    #[inline]
    fn reducer_of(&self, key: Key, reducers: u32) -> u32 {
        let x = (key % self.width) / self.cell;
        let y = (key / self.width) / self.cell;
        (x + y) % reducers
    }

    fn name(&self) -> &'static str {
        "checkerboard"
    }
}

/// Measure per-reducer load balance of a partitioner over a key set:
/// returns `max_load / mean_load` (1.0 = perfect).
pub fn imbalance<P: Partitioner + ?Sized>(
    partitioner: &P,
    keys: impl Iterator<Item = Key>,
    reducers: u32,
) -> f64 {
    let mut counts = vec![0u64; reducers as usize];
    let mut total = 0u64;
    for k in keys {
        counts[partitioner.reducer_of(k, reducers) as usize] += 1;
        total += 1;
    }
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / reducers as f64;
    let max = *counts.iter().max().unwrap() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_modulo() {
        let p = RoundRobin;
        assert_eq!(p.reducer_of(0, 8), 0);
        assert_eq!(p.reducer_of(13, 8), 5);
        assert_eq!(p.reducer_of(16, 8), 0);
    }

    #[test]
    fn all_partitioners_stay_in_range() {
        let width = 64;
        let parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RoundRobin),
            Box::new(Striped {
                width,
                rows_per_stripe: 4,
            }),
            Box::new(Tiled { width, tile: 16 }),
            Box::new(Checkerboard { width, cell: 8 }),
        ];
        for p in &parts {
            for r in [1u32, 3, 8, 32] {
                for key in 0..width * 64 {
                    assert!(p.reducer_of(key, r) < r, "{} escaped range", p.name());
                }
            }
        }
    }

    #[test]
    fn round_robin_perfectly_balanced_on_dense_keys() {
        let imb = imbalance(&RoundRobin, 0..262_144, 8);
        assert!((imb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_robin_beats_striped_under_partial_coverage() {
        // Fragments covering only the top quarter of a 512² image — the
        // realistic case when a brick projects to part of the screen.
        let width = 512u32;
        let keys = || (0..512u32 * 128).map(|k| k as Key);
        let rr = imbalance(&RoundRobin, keys(), 8);
        let st = imbalance(
            &Striped {
                width,
                rows_per_stripe: 64,
            },
            keys(),
            8,
        );
        assert!(rr < 1.01, "round-robin imbalance {rr}");
        assert!(st > 2.0, "striped should skew badly, got {st}");
    }

    #[test]
    fn tiled_and_checkerboard_balance_on_full_coverage() {
        let width = 512u32;
        let keys = || 0..width * width;
        let t = imbalance(&Tiled { width, tile: 64 }, keys(), 4);
        let c = imbalance(&Checkerboard { width, cell: 64 }, keys(), 4);
        assert!(t < 1.01, "tiled {t}");
        assert!(c < 1.01, "checkerboard {c}");
    }

    #[test]
    fn single_reducer_takes_everything() {
        for p in [&RoundRobin as &dyn Partitioner] {
            for key in [0u32, 7, 1 << 20] {
                assert_eq!(p.reducer_of(key, 1), 0);
            }
        }
    }
}
