//! The user-facing MapReduce abstractions — the paper's "objects with virtual
//! functions used as callbacks", as Rust traits.

use mgpu_cluster::GpuId;
use mgpu_gpu::LaunchStats;

use crate::types::{Key, Pair, WireValue};

/// A unit of map work — for the renderer, one brick of the volume.
///
/// "A Chunk represents a collection of work to be mapped, in our case, it is
/// a brick of a volume. Each Chunk requests a certain amount of GPU memory
/// to hold its volume data." (§3.1.2)
pub trait Chunk: Send + Sync {
    /// Stable identifier (brick id).
    fn id(&self) -> usize;

    /// Bytes uploaded to the device before the kernel runs.
    fn device_bytes(&self) -> u64;

    /// Bytes staged from disk for this chunk (0 when resident in host RAM —
    /// the paper's Figure-3 runs assume residency; out-of-core runs do not).
    fn disk_bytes(&self) -> u64;
}

/// Everything a map kernel execution produces: the homogeneous per-thread
/// emissions (including sentinel placeholders) and the launch statistics the
/// device cost model charges time from.
///
/// Emissions are structure-of-arrays — `keys[i]` and `values[i]` describe the
/// same GPU thread — so a batched kernel launch
/// ([`mgpu_gpu::kernel::launch_blocks`]) hands its output buffers over whole,
/// with no per-thread tuple re-materialization.
#[derive(Debug, Clone)]
pub struct MapOutput<V> {
    /// One key per GPU thread, in block-major thread order. Threads with
    /// nothing to contribute emit `SENTINEL_KEY`.
    pub keys: Vec<Key>,
    /// The value emitted by the thread that wrote `keys[i]`.
    pub values: Vec<V>,
    pub stats: LaunchStats,
}

impl<V> MapOutput<V> {
    /// Build from tuple-form emissions (migration helper for scalar mappers).
    pub fn from_pairs(pairs: Vec<Pair<V>>, stats: LaunchStats) -> MapOutput<V> {
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            keys.push(k);
            values.push(v);
        }
        MapOutput {
            keys,
            values,
            stats,
        }
    }

    /// Emissions (threads), including sentinel placeholders.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.keys.len(), self.values.len());
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate emissions as `(key, &value)` lanes.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &V)> {
        self.keys.iter().copied().zip(self.values.iter())
    }
}

/// The Mapper: executes the (real) map kernel for each chunk.
///
/// "Mappers execute a ray-casting kernel on each Chunk. Each Mapper has an
/// initialization function that allocates static data on the GPU (e.g. view
/// matrix)." (§3.1.2)
pub trait GpuMapper<C: Chunk>: Send + Sync {
    type Value: WireValue;

    /// Called once per GPU before any chunk is mapped (static allocations).
    /// Returns the bytes of static device state (view matrices, transfer
    /// function LUT) uploaded during initialization.
    fn init(&self, _gpu: GpuId) -> u64 {
        0
    }

    /// Execute the map kernel against `chunk` on `gpu`.
    fn map_chunk(&self, gpu: GpuId, chunk: &C) -> MapOutput<Self::Value>;
}

/// The Reducer: folds all values of one key into one output.
///
/// For the renderer this is per-pixel compositing: "All ray fragments for a
/// given pixel are ascending-depth sorted, composited, and blended against
/// the background color." (§3.2)
pub trait Reducer: Send + Sync {
    type Value: WireValue;
    type Out: Send;

    /// `values` arrive in deterministic (mapper, emission) order; the
    /// reducer may reorder them freely (compositing depth-sorts).
    fn reduce(&self, key: Key, values: &mut Vec<Self::Value>) -> Self::Out;
}

/// Optional mapper-side partial reduction ("combine"). The paper *omitted*
/// this stage — "it didn't increase performance for our volume renderer"
/// (§3.1) — but the library supports it so the ablation bench can reproduce
/// that finding.
pub trait Combiner<V: WireValue>: Send + Sync {
    /// Combine values sharing `key` into (usually fewer) values, in place.
    fn combine(&self, key: Key, values: &mut Vec<V>);
}

/// A combiner for associative value merging (e.g. word-count sums).
pub struct FnCombiner<V, F>
where
    F: Fn(Key, &mut Vec<V>) + Send + Sync,
{
    f: F,
    _marker: std::marker::PhantomData<fn(V)>,
}

impl<V, F> FnCombiner<V, F>
where
    F: Fn(Key, &mut Vec<V>) + Send + Sync,
{
    pub fn new(f: F) -> Self {
        FnCombiner {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V: WireValue, F> Combiner<V> for FnCombiner<V, F>
where
    F: Fn(Key, &mut Vec<V>) + Send + Sync,
{
    fn combine(&self, key: Key, values: &mut Vec<V>) {
        (self.f)(key, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_combiner_sums() {
        let c = FnCombiner::new(|_k, vs: &mut Vec<u32>| {
            let s: u32 = vs.iter().sum();
            vs.clear();
            vs.push(s);
        });
        let mut vals = vec![1u32, 2, 3];
        c.combine(0, &mut vals);
        assert_eq!(vals, vec![6]);
    }
}
