//! Builds the DES trace for a completed job: every disk read, PCIe copy,
//! kernel, partition pass, network message, sort and reduce becomes a task
//! with dependencies, bound to the hardware resource that serves it.
//!
//! The dependency structure encodes the paper's pipeline semantics:
//!
//! * per mapper, the stream `… → H2D(c) → Kernel(c) → D2H(c) → H2D(c+1) → …`
//!   is **serialized on the GPU** because CUDA 3.0 forced synchronous copies
//!   into 3-D textures (§3.1.2 "we were forced to use synchronous memory
//!   copies") — the `async_upload` option relaxes exactly that, modeling the
//!   paper's proposed future work;
//! * disk prefetch runs ahead of the GPU (the library's streaming interface
//!   hides I/O behind compute);
//! * partition runs on the host core concurrently with the next chunk's GPU
//!   work; batch sends overlap everything downstream;
//! * every reducer's sort starts only when **all** its batches arrived
//!   ("Once all Mappers have finished and all data has been routed to the
//!   proper Reducer, a Sort is performed"), then reduce follows.

use mgpu_cluster::{route, ClusterSpec, ResourceMap, Route};
use mgpu_sim::{Activity, SimDuration, TaskId, Trace};

use crate::cost::CostBook;
use crate::record::JobRecord;

/// Trace-level options (ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOptions {
    /// Model asynchronous texture uploads (paper future work §7): uploads
    /// stop serializing against kernels on the GPU queue.
    pub async_upload: bool,
    /// Run the reduce phase on the GPU instead of the CPU (§3.1.2 ablation).
    pub reduce_on_gpu: bool,
}

/// Build the complete trace for `record` on `spec` hardware.
pub fn build_trace(
    record: &JobRecord,
    spec: &ClusterSpec,
    book: &CostBook,
    opts: &TraceOptions,
) -> Trace {
    let mut tr = Trace::new();
    let rm = ResourceMap::build(spec, &mut tr);
    let num_reducers = record.reducers.len();

    // Arrival task per (reducer, batch) — the reducer's sort depends on all.
    let mut arrivals: Vec<Vec<TaskId>> = vec![Vec::new(); num_reducers];
    // End-of-stream: a reducer cannot know its input is complete until every
    // mapper has finished partitioning its last chunk ("Once all Mappers
    // have finished and all data has been routed ... a Sort is performed").
    let mut end_of_stream: Vec<TaskId> = Vec::with_capacity(record.mappers.len());

    for (m, mapper) in record.mappers.iter().enumerate() {
        let gpu = mgpu_cluster::GpuId(m as u32);
        let gpu_r = rm.gpu_r(gpu);
        let pcie_r = rm.pcie_r(gpu);
        let core_r = rm.core_r(gpu);
        let disk_r = rm.disk_r(spec, gpu);
        let nic_out = rm.nic_out_r(spec, gpu);

        // Static init upload (view matrix, transfer-function LUT).
        let init_task = if mapper.init_bytes > 0 {
            Some(tr.comm_task(
                Activity::HostToDevice,
                pcie_r,
                book.device.h2d_time(mapper.init_bytes),
                SimDuration::ZERO,
                mapper.init_bytes,
                vec![],
            ))
        } else {
            None
        };

        let mut prev_disk: Option<TaskId> = None;
        let mut prev_gpu_op: Option<TaskId> = init_task;
        let mut partition_tasks: Vec<TaskId> = Vec::with_capacity(mapper.chunks.len());

        for chunk in &mapper.chunks {
            // Disk prefetch: serialized per node-disk, ahead of the GPU.
            let disk_task = if chunk.disk_bytes > 0 {
                let deps = prev_disk.into_iter().collect();
                let t = tr.comm_task(
                    Activity::DiskRead,
                    disk_r,
                    book.disk.time(chunk.disk_bytes),
                    SimDuration::ZERO,
                    chunk.disk_bytes,
                    deps,
                );
                prev_disk = Some(t);
                Some(t)
            } else {
                None
            };

            // H2D upload. Synchronous 3-D-texture copies serialize with the
            // GPU queue unless async_upload is on.
            let mut h2d_deps: Vec<TaskId> = disk_task.into_iter().collect();
            if !opts.async_upload {
                h2d_deps.extend(prev_gpu_op);
            } else if let Some(init) = init_task {
                h2d_deps.push(init);
            }
            let h2d = tr.comm_task(
                Activity::HostToDevice,
                pcie_r,
                book.device.h2d_time(chunk.device_bytes),
                SimDuration::ZERO,
                chunk.device_bytes,
                h2d_deps,
            );

            // The map kernel itself.
            let mut kernel_deps = vec![h2d];
            if opts.async_upload {
                kernel_deps.extend(prev_gpu_op);
            }
            let kernel = tr.task(
                Activity::Kernel,
                gpu_r,
                book.device.kernel.time(&chunk.launch),
                kernel_deps,
            );

            // Full emission buffer readback (sentinels included: every
            // thread emitted).
            let d2h = tr.comm_task(
                Activity::DeviceToHost,
                pcie_r,
                book.device.d2h_time(chunk.emission_bytes),
                SimDuration::ZERO,
                chunk.emission_bytes,
                vec![kernel],
            );
            prev_gpu_op = Some(d2h);

            // CPU partition of this chunk's emissions.
            let part = tr.task(
                Activity::PartitionCpu,
                core_r,
                book.cpu.partition_time(chunk.emitted),
                vec![d2h],
            );
            partition_tasks.push(part);
        }

        if let Some(&last) = partition_tasks.last() {
            end_of_stream.push(last);
        }

        // Batch sends, each gated on the partition pass that filled it.
        for send in &mapper.sends {
            let dep = partition_tasks
                .get(send.after_chunk)
                .copied()
                .into_iter()
                .collect::<Vec<_>>();
            let dst_gpu = mgpu_cluster::GpuId(send.reducer);
            let arrival = match route(spec, gpu, dst_gpu) {
                Route::SameProcess => {
                    // No copy: the reducer sees the batch when partitioning
                    // is done.
                    match dep.first() {
                        Some(&t) => t,
                        None => continue,
                    }
                }
                Route::IntraNode => tr.comm_task(
                    Activity::LocalCopy,
                    core_r,
                    spec.network.intra_node_time(send.bytes),
                    SimDuration::ZERO,
                    send.bytes,
                    dep,
                ),
                Route::InterNode => {
                    let s = tr.comm_task(
                        Activity::NetSend,
                        nic_out,
                        spec.network.send_time(send.bytes),
                        spec.network.wire_latency(),
                        send.bytes,
                        dep,
                    );
                    tr.comm_task(
                        Activity::NetRecv,
                        rm.nic_in_r(spec, dst_gpu),
                        spec.network.recv_time(send.bytes),
                        SimDuration::ZERO,
                        send.bytes,
                        vec![s],
                    )
                }
            };
            arrivals[send.reducer as usize].push(arrival);
        }
    }

    // Reducers: sort barrier (all arrivals + all mappers' end-of-stream),
    // then reduce.
    for (r, red) in record.reducers.iter().enumerate() {
        let gpu = mgpu_cluster::GpuId(r as u32);
        let core_r = rm.core_r(gpu);
        let mut deps = std::mem::take(&mut arrivals[r]);
        deps.extend_from_slice(&end_of_stream);
        let sort = tr.task(
            Activity::SortCpu,
            core_r,
            book.cpu.sort_time(red.items),
            deps,
        );
        if opts.reduce_on_gpu {
            // Upload fragments, composite on the device, read back pixels.
            let bytes_up = red.bytes;
            let up = tr.comm_task(
                Activity::HostToDevice,
                rm.pcie_r(gpu),
                book.device.h2d_time(bytes_up),
                SimDuration::ZERO,
                bytes_up,
                vec![sort],
            );
            let reduce = tr.task(
                Activity::ReduceGpu,
                rm.gpu_r(gpu),
                book.gpu_reduce.reduce_time(red.items),
                vec![up],
            );
            let bytes_down = red.groups * 16; // final RGBA per pixel
            tr.comm_task(
                Activity::DeviceToHost,
                rm.pcie_r(gpu),
                book.device.d2h_time(bytes_down),
                SimDuration::ZERO,
                bytes_down,
                vec![reduce],
            );
        } else {
            tr.task(
                Activity::ReduceCpu,
                core_r,
                book.cpu.reduce_time(red.items, red.groups),
                vec![sort],
            );
        }
    }

    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ChunkRecord, MapperRecord, ReducerRecord, SendRecord};
    use mgpu_gpu::LaunchStats;
    use mgpu_sim::{account, simulate};

    fn tiny_record(mappers: usize, reducers: usize, chunks_per_mapper: usize) -> JobRecord {
        let mut record = JobRecord::default();
        for m in 0..mappers {
            let mut mr = MapperRecord {
                init_bytes: 1024,
                ..Default::default()
            };
            for c in 0..chunks_per_mapper {
                mr.chunks.push(ChunkRecord {
                    chunk_id: m * chunks_per_mapper + c,
                    disk_bytes: 0,
                    device_bytes: 1 << 20,
                    launch: LaunchStats {
                        threads: 65536,
                        blocks: 256,
                        warps: 2048,
                        total_samples: 4_000_000,
                        simt_samples: 5_000_000,
                    },
                    emitted: 65536,
                    kept: 30000,
                    emission_bytes: 65536 * 24,
                });
                for r in 0..reducers {
                    mr.sends.push(SendRecord {
                        reducer: r as u32,
                        items: 30000 / reducers as u64,
                        bytes: (30000 / reducers as u64) * 24,
                        after_chunk: c,
                    });
                }
            }
            record.mappers.push(mr);
        }
        for _ in 0..reducers {
            record.reducers.push(ReducerRecord {
                items: (mappers * chunks_per_mapper * 30000 / reducers) as u64,
                bytes: (mappers * chunks_per_mapper * 30000 / reducers) as u64 * 24,
                groups: 32768 / reducers as u64,
            });
        }
        record
    }

    fn run(record: &JobRecord, gpus: u32, opts: &TraceOptions) -> mgpu_sim::RunAccounting {
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let book = CostBook::from_cluster(&spec);
        let tr = build_trace(record, &spec, &book, opts);
        let sched = simulate(&tr);
        account(&tr, &sched)
    }

    #[test]
    fn phases_all_present_and_ordered() {
        let record = tiny_record(4, 4, 2);
        let acc = run(&record, 4, &TraceOptions::default());
        assert!(!acc.breakdown.map.is_zero());
        assert!(!acc.breakdown.sort.is_zero() || !acc.breakdown.reduce.is_zero());
        assert_eq!(acc.breakdown.total(), acc.makespan);
        assert!(!acc.kernel_demand.is_zero());
    }

    #[test]
    fn async_upload_is_never_slower() {
        let record = tiny_record(4, 4, 4);
        let sync = run(&record, 4, &TraceOptions::default());
        let async_ = run(
            &record,
            4,
            &TraceOptions {
                async_upload: true,
                ..Default::default()
            },
        );
        assert!(async_.makespan <= sync.makespan);
    }

    #[test]
    fn gpu_reduce_slower_at_paper_scale() {
        let record = tiny_record(8, 8, 2);
        let cpu = run(&record, 8, &TraceOptions::default());
        let gpu = run(
            &record,
            8,
            &TraceOptions {
                reduce_on_gpu: true,
                ..Default::default()
            },
        );
        // The paper found CPU compositing quicker at this scale.
        assert!(gpu.makespan >= cpu.makespan);
    }

    #[test]
    fn cross_node_traffic_uses_nics() {
        // 8 GPUs = 2 nodes: some sends must be inter-node.
        let record = tiny_record(8, 8, 1);
        let acc = run(&record, 8, &TraceOptions::default());
        assert!(acc.totals(Activity::NetSend).tasks > 0);
        assert!(acc.totals(Activity::NetRecv).tasks > 0);
        // 4 GPUs = 1 node: no NIC traffic at all.
        let record1 = tiny_record(4, 4, 1);
        let acc1 = run(&record1, 4, &TraceOptions::default());
        assert_eq!(acc1.totals(Activity::NetSend).tasks, 0);
        assert!(acc1.totals(Activity::LocalCopy).tasks > 0);
    }

    #[test]
    fn disk_reads_appear_when_not_resident() {
        let mut record = tiny_record(2, 2, 2);
        for m in &mut record.mappers {
            for c in &mut m.chunks {
                c.disk_bytes = 1 << 20;
            }
        }
        let acc = run(&record, 2, &TraceOptions::default());
        assert_eq!(acc.totals(Activity::DiskRead).tasks, 4);
        // ~20 ms per 1 MiB read (the paper's anchor).
        let per_read = acc.totals(Activity::DiskRead).busy.as_millis_f64() / 4.0;
        assert!((per_read - 20.0).abs() < 2.0, "{per_read} ms");
    }

    #[test]
    fn deterministic_rebuild() {
        let record = tiny_record(4, 4, 3);
        let spec = ClusterSpec::accelerator_cluster(4);
        let book = CostBook::from_cluster(&spec);
        let opts = TraceOptions::default();
        let t1 = build_trace(&record, &spec, &book, &opts);
        let t2 = build_trace(&record, &spec, &book, &opts);
        let s1 = simulate(&t1);
        let s2 = simulate(&t2);
        assert_eq!(s1.makespan(), s2.makespan());
        assert_eq!(t1.len(), t2.len());
    }
}
