//! End-to-end tests of the MapReduce runtime on a synthetic, non-rendering
//! job: a histogram over noisy measurements. Exercises paths the renderer
//! does not: combiners that actually combine, single-item chunks, more GPUs
//! than chunks, zero-emission chunks.

use mgpu_cluster::{ClusterSpec, GpuId};
use mgpu_gpu::LaunchStats;
use mgpu_mapreduce::{
    build_trace, run_job, Chunk, CostBook, FnCombiner, GpuMapper, JobConfig, MapOutput, Reducer,
    RoundRobin, TraceOptions, SENTINEL_KEY,
};
use mgpu_sim::{account, simulate};

/// A batch of raw measurements in [0, 64).
struct Samples {
    id: usize,
    values: Vec<u8>,
}

impl Chunk for Samples {
    fn id(&self) -> usize {
        self.id
    }
    fn device_bytes(&self) -> u64 {
        self.values.len() as u64
    }
    fn disk_bytes(&self) -> u64 {
        0
    }
}

/// Maps each measurement to (bucket, 1); odd slots emit sentinels to mimic
/// the every-thread-emits padding rule.
struct HistMapper;

impl GpuMapper<Samples> for HistMapper {
    type Value = u32;

    fn map_chunk(&self, _gpu: GpuId, chunk: &Samples) -> MapOutput<u32> {
        let mut pairs = Vec::with_capacity(chunk.values.len() * 2);
        for &v in &chunk.values {
            pairs.push((v as u32, 1u32));
            pairs.push((SENTINEL_KEY, 0)); // padding slot
        }
        MapOutput::from_pairs(
            pairs,
            LaunchStats {
                threads: (chunk.values.len() * 2) as u64,
                total_samples: chunk.values.len() as u64,
                simt_samples: (chunk.values.len() * 2) as u64,
                blocks: 1,
                warps: (chunk.values.len() as u64 * 2).div_ceil(32),
            },
        )
    }
}

struct CountReducer;

impl Reducer for CountReducer {
    type Value = u32;
    type Out = u64;
    fn reduce(&self, _key: u32, values: &mut Vec<u32>) -> u64 {
        values.iter().map(|&v| v as u64).sum()
    }
}

fn make_chunks(n_chunks: usize, per_chunk: usize) -> Vec<Samples> {
    let mut state = 0xDEADBEEFu64;
    (0..n_chunks)
        .map(|id| {
            let values = (0..per_chunk)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) % 64) as u8
                })
                .collect();
            Samples { id, values }
        })
        .collect()
}

fn reference_histogram(chunks: &[Samples]) -> Vec<u64> {
    let mut hist = vec![0u64; 64];
    for c in chunks {
        for &v in &c.values {
            hist[v as usize] += 1;
        }
    }
    hist
}

fn run(gpus: u32, chunks: &[Samples], combine: bool) -> mgpu_mapreduce::JobOutput<u64> {
    let spec = ClusterSpec::accelerator_cluster(gpus);
    let config = JobConfig::new(gpus, 64);
    let combiner = FnCombiner::new(|_k, vs: &mut Vec<u32>| {
        let s: u32 = vs.iter().sum();
        vs.clear();
        vs.push(s);
    });
    run_job(
        chunks,
        &HistMapper,
        &CountReducer,
        &RoundRobin,
        combine.then_some(&combiner as &dyn mgpu_mapreduce::Combiner<u32>),
        &spec,
        &config,
    )
}

#[test]
fn histogram_matches_reference_for_many_gpu_counts() {
    let chunks = make_chunks(12, 500);
    let expect = reference_histogram(&chunks);
    for gpus in [1u32, 2, 3, 5, 8, 16] {
        let out = run(gpus, &chunks, false);
        for (k, count) in out.iter() {
            assert_eq!(*count, expect[k as usize], "bucket {k} at {gpus} GPUs");
        }
        assert_eq!(out.len(), expect.iter().filter(|&&c| c > 0).count());
        assert!(out.stats.conserved());
        // Half the emissions were padding sentinels.
        assert_eq!(out.stats.sentinels, out.stats.kept);
    }
}

#[test]
fn combiner_preserves_results_and_cuts_traffic() {
    let chunks = make_chunks(8, 2000);
    let plain = run(4, &chunks, false);
    let combined = run(4, &chunks, true);
    assert_eq!(plain.keys, combined.keys);
    assert_eq!(plain.outs, combined.outs);
    assert!(combined.stats.combined_away > 0);
    assert!(combined.stats.wire_bytes_sent < plain.stats.wire_bytes_sent / 10);
}

#[test]
fn more_gpus_than_chunks_leaves_idle_mappers() {
    let chunks = make_chunks(3, 100);
    let out = run(8, &chunks, false);
    let expect = reference_histogram(&chunks);
    for (k, count) in out.iter() {
        assert_eq!(*count, expect[k as usize]);
    }
    // 5 mappers had nothing to do; their records must be empty, not absent.
    assert_eq!(out.record.mappers.len(), 8);
    let idle = out
        .record
        .mappers
        .iter()
        .filter(|m| m.chunks.is_empty())
        .count();
    assert_eq!(idle, 5);
}

#[test]
fn empty_job_produces_empty_output() {
    let chunks: Vec<Samples> = Vec::new();
    let out = run(4, &chunks, false);
    assert!(out.is_empty());
    assert_eq!(out.stats.emitted, 0);
    // The trace still replays cleanly (reducers sort/reduce nothing).
    let spec = ClusterSpec::accelerator_cluster(4);
    let book = CostBook::from_cluster(&spec);
    let tr = build_trace(&out.record, &spec, &book, &TraceOptions::default());
    let acc = account(&tr, &simulate(&tr));
    assert!(acc.makespan.as_secs_f64() < 0.01);
}

#[test]
fn chunk_with_only_sentinels_is_harmless() {
    struct NullMapper;
    impl GpuMapper<Samples> for NullMapper {
        type Value = u32;
        fn map_chunk(&self, _gpu: GpuId, chunk: &Samples) -> MapOutput<u32> {
            MapOutput::from_pairs(
                vec![(SENTINEL_KEY, 0); chunk.values.len()],
                LaunchStats::default(),
            )
        }
    }
    let chunks = make_chunks(4, 64);
    let spec = ClusterSpec::accelerator_cluster(2);
    let config = JobConfig::new(2, 64);
    let out = run_job(
        &chunks,
        &NullMapper,
        &CountReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );
    assert!(out.is_empty());
    assert_eq!(out.stats.kept, 0);
    assert_eq!(out.stats.sentinels, 4 * 64);
}

#[test]
fn tiny_batches_create_many_sends_but_same_result() {
    let chunks = make_chunks(6, 1000);
    let expect = reference_histogram(&chunks);
    let spec = ClusterSpec::accelerator_cluster(4);
    let mut config = JobConfig::new(4, 64);
    config.batch_bytes = 1; // flush after every chunk
    let out = run_job(
        &chunks,
        &HistMapper,
        &CountReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );
    for (k, count) in out.iter() {
        assert_eq!(*count, expect[k as usize]);
    }
    // At least one send per (chunk, reducer) with data.
    assert!(out.stats.batches >= 6);
}

#[test]
fn trace_replay_is_consistent_with_record() {
    let chunks = make_chunks(8, 512);
    let out = run(4, &chunks, false);
    let spec = ClusterSpec::accelerator_cluster(4);
    let book = CostBook::from_cluster(&spec);
    let tr = build_trace(&out.record, &spec, &book, &TraceOptions::default());
    let acc = account(&tr, &simulate(&tr));
    // Kernel busy time equals the per-chunk model sum.
    let expected_kernel: f64 = out
        .record
        .mappers
        .iter()
        .flat_map(|m| &m.chunks)
        .map(|c| book.device.kernel.time(&c.launch).as_secs_f64())
        .sum();
    assert!((acc.kernel_demand.as_secs_f64() - expected_kernel).abs() < 1e-9);
    // Every send in the record shows up as wire bytes in the accounting.
    let intra = acc.totals(mgpu_sim::Activity::LocalCopy).bytes;
    let inter = acc.totals(mgpu_sim::Activity::NetSend).bytes;
    let recorded: u64 = out
        .record
        .mappers
        .iter()
        .enumerate()
        .flat_map(|(m, mr)| {
            mr.sends
                .iter()
                .filter(move |s| s.reducer != m as u32)
                .map(|s| s.bytes)
        })
        .sum();
    assert_eq!(intra + inter, recorded);
}

/// `run_job` must reject a malformed config up front with a descriptive
/// message, not fail somewhere downstream in the pipeline.
#[test]
#[should_panic(expected = "invalid JobConfig: batch_bytes must be > 0")]
fn run_job_rejects_zero_batch_bytes_at_entry() {
    let chunks = make_chunks(2, 10);
    let spec = ClusterSpec::accelerator_cluster(2);
    let mut config = JobConfig::new(2, 64);
    config.batch_bytes = 0;
    run_job(
        &chunks,
        &HistMapper,
        &CountReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );
}

#[test]
#[should_panic(expected = "invalid JobConfig: channel_capacity must be > 0")]
fn run_job_rejects_zero_channel_capacity_at_entry() {
    let chunks = make_chunks(2, 10);
    let spec = ClusterSpec::accelerator_cluster(2);
    let mut config = JobConfig::new(2, 64);
    config.channel_capacity = 0;
    run_job(
        &chunks,
        &HistMapper,
        &CountReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );
}

#[test]
#[should_panic(expected = "invalid JobConfig: gpus must be >= 1")]
fn run_job_rejects_zero_gpus_at_entry() {
    let chunks = make_chunks(2, 10);
    // The spec assertion would also fire, but config validation comes first.
    let spec = ClusterSpec::accelerator_cluster(1);
    let config = JobConfig::new(0, 64);
    run_job(
        &chunks,
        &HistMapper,
        &CountReducer,
        &RoundRobin,
        None,
        &spec,
        &config,
    );
}
