//! Property tests for brick geometry, clamped materialization and the
//! brick store.

use proptest::prelude::*;
use std::sync::Arc;

use mgpu_voldata::{BrickGrid, BrickPolicy, BrickStore, Volume};

fn arb_dims() -> impl Strategy<Value = [u32; 3]> {
    (2u32..40, 2u32..40, 2u32..40).prop_map(|(x, y, z)| [x, y, z])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bricks_partition_the_volume(
        dims in arb_dims(),
        min_bricks in 1u32..30,
        max_vox in 8u64..5000,
    ) {
        let grid = BrickGrid::subdivide(dims, &BrickPolicy { min_bricks, max_brick_voxels: max_vox });
        // Total voxels conserved.
        let total: u64 = grid.bricks().map(|b| b.voxels()).sum();
        prop_assert_eq!(total, dims[0] as u64 * dims[1] as u64 * dims[2] as u64);
        // Per-axis: origins tile each axis without gaps.
        for b in grid.bricks() {
            for (a, dim) in dims.iter().enumerate() {
                prop_assert!(b.origin[a] + b.size[a] <= *dim);
                prop_assert!(b.size[a] >= 1);
            }
        }
        // VRAM constraint honored unless unsatisfiable (single voxel bricks).
        if grid.max_brick_voxels() > max_vox {
            prop_assert!(grid.bricks().any(|b| b.size.contains(&1)));
        }
    }

    #[test]
    fn brick_ids_round_trip_through_coords(
        dims in arb_dims(),
        min_bricks in 1u32..20,
    ) {
        let grid = BrickGrid::subdivide(dims, &BrickPolicy { min_bricks, max_brick_voxels: u64::MAX });
        for id in 0..grid.brick_count() {
            let c = grid.coords(id);
            let back = (c[2] * grid.counts[1] + c[1]) * grid.counts[0] + c[0];
            prop_assert_eq!(back as usize, id);
        }
    }

    #[test]
    fn clamped_materialization_matches_pointwise_clamp(
        dims in (2u32..8, 2u32..8, 2u32..8).prop_map(|(x, y, z)| [x, y, z]),
        origin in (-3i64..8, -3i64..8, -3i64..8).prop_map(|(x, y, z)| [x, y, z]),
        size in (1usize..6, 1usize..6, 1usize..6).prop_map(|(x, y, z)| [x, y, z]),
        seed in 0u64..1000,
    ) {
        let n = (dims[0] * dims[1] * dims[2]) as usize;
        let data: Vec<f32> = (0..n).map(|i| ((i as u64 * 37 + seed) % 101) as f32).collect();
        let vol = Volume::in_memory("p", dims, data.clone());
        let out = vol.materialize_clamped(origin, size);
        for z in 0..size[2] {
            for y in 0..size[1] {
                for x in 0..size[0] {
                    let cx = (origin[0] + x as i64).clamp(0, dims[0] as i64 - 1) as usize;
                    let cy = (origin[1] + y as i64).clamp(0, dims[1] as i64 - 1) as usize;
                    let cz = (origin[2] + z as i64).clamp(0, dims[2] as i64 - 1) as usize;
                    let expect = data[cx + dims[0] as usize * (cy + dims[1] as usize * cz)];
                    let got = out[x + size[0] * (y + size[1] * z)];
                    prop_assert_eq!(got, expect, "at ({},{},{})", x, y, z);
                }
            }
        }
    }

    #[test]
    fn store_ghosts_agree_between_neighbours(
        seed in 0u64..500,
        min_bricks in 2u32..12,
    ) {
        let dims = [12u32, 12, 12];
        let n = (dims[0] * dims[1] * dims[2]) as usize;
        let data: Vec<f32> = (0..n).map(|i| ((i as u64).wrapping_mul(seed | 1) % 255) as f32).collect();
        let vol = Volume::in_memory("p", dims, data);
        let grid = BrickGrid::subdivide(dims, &BrickPolicy { min_bricks, max_brick_voxels: u64::MAX });
        let store = Arc::new(BrickStore::new(vol.clone(), grid, 1, u64::MAX));
        // Every brick's stored voxels must equal a direct clamped read.
        for id in 0..store.grid().brick_count() {
            let b = store.get(id);
            let expect = vol.materialize_clamped(b.store_origin, b.store_dims);
            prop_assert_eq!(&*b.voxels, &expect, "brick {}", id);
        }
    }

    #[test]
    fn store_budget_is_respected_after_every_access(
        budget_bricks in 1u64..5,
        accesses in prop::collection::vec(0usize..8, 1..40),
    ) {
        let dims = [8u32, 8, 8];
        let vol = Volume::in_memory("p", dims, vec![0.5; 512]);
        let grid = BrickGrid::subdivide(dims, &BrickPolicy { min_bricks: 8, max_brick_voxels: u64::MAX });
        // Brick with ghost = 6³ × 4 B = 864 B.
        let store = BrickStore::new(vol, grid, 1, budget_bricks * 864);
        for &id in &accesses {
            let _ = store.get(id);
            prop_assert!(
                store.cached_bytes() <= budget_bricks.max(1) * 864,
                "cache over budget: {}",
                store.cached_bytes()
            );
        }
    }
}
