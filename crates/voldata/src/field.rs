//! Scalar fields: continuous functions over the unit cube that procedural
//! volumes are sampled from.

/// A continuous scalar field over normalized volume coordinates `[0,1]³`.
///
/// Implementations must be pure (same input → same output) so that brick
/// materialization is deterministic and order-independent.
pub trait ScalarField: Send + Sync {
    /// Sample the field; callers pass voxel-center coordinates. Outputs
    /// should be in `[0, 1]` (the transfer functions assume this domain).
    fn sample(&self, x: f32, y: f32, z: f32) -> f32;
}

impl<F> ScalarField for F
where
    F: Fn(f32, f32, f32) -> f32 + Send + Sync,
{
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        self(x, y, z)
    }
}

/// A constant field (useful in tests).
pub struct Constant(pub f32);

impl ScalarField for Constant {
    fn sample(&self, _x: f32, _y: f32, _z: f32) -> f32 {
        self.0
    }
}

/// A linear ramp along one axis (useful for interpolation tests: trilinear
/// sampling reconstructs it exactly).
pub struct AxisRamp {
    pub axis: usize,
}

impl ScalarField for AxisRamp {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        [x, y, z][self.axis]
    }
}

/// Distance-from-center sphere field: 1 inside radius, smooth falloff band.
pub struct SphereShell {
    pub center: [f32; 3],
    pub radius: f32,
    pub width: f32,
}

impl ScalarField for SphereShell {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let dx = x - self.center[0];
        let dy = y - self.center[1];
        let dz = z - self.center[2];
        let r = (dx * dx + dy * dy + dz * dz).sqrt();
        let d = (r - self.radius).abs();
        (1.0 - d / self.width).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_field() {
        let f = |x: f32, _y: f32, _z: f32| x * 0.5;
        assert_eq!(f.sample(0.5, 0.0, 0.0), 0.25);
    }

    #[test]
    fn constant_and_ramp() {
        assert_eq!(Constant(0.7).sample(0.1, 0.2, 0.3), 0.7);
        assert_eq!(AxisRamp { axis: 2 }.sample(0.1, 0.2, 0.3), 0.3);
    }

    #[test]
    fn sphere_shell_peaks_on_surface() {
        let s = SphereShell {
            center: [0.5, 0.5, 0.5],
            radius: 0.3,
            width: 0.05,
        };
        assert!((s.sample(0.8, 0.5, 0.5) - 1.0).abs() < 1e-6);
        assert_eq!(s.sample(0.5, 0.5, 0.5), 0.0); // deep inside, far from shell
    }
}
