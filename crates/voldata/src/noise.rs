//! Deterministic value noise and fractal Brownian motion for procedural
//! volume synthesis.
//!
//! The paper's datasets (Skull, Supernova, Plume) are not redistributable;
//! the procedural stand-ins built on this module have the same resolutions
//! and qualitatively similar structure. Everything here is seeded and pure —
//! two processes with the same seed produce bit-identical volumes.

/// A fast integer hash (SplitMix64 finalizer) turning a lattice point and a
/// seed into well-mixed bits.
#[inline]
pub fn hash3(ix: i64, iy: i64, iz: i64, seed: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [ix as u64, iy as u64, iz as u64] {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    h
}

/// Uniform value in [0, 1) at a lattice point.
#[inline]
pub fn lattice(ix: i64, iy: i64, iz: i64, seed: u64) -> f32 {
    // Take the top 24 bits for an exact f32 in [0,1).
    ((hash3(ix, iy, iz, seed) >> 40) as f32) * (1.0 / 16_777_216.0)
}

/// Quintic smoothstep (C² continuous), the classic Perlin fade curve.
#[inline]
fn fade(t: f32) -> f32 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Trilinearly interpolated value noise in [0, 1).
///
/// Coordinates are in lattice units: features are ~1 unit across.
pub fn value_noise(x: f32, y: f32, z: f32, seed: u64) -> f32 {
    let fx = x.floor();
    let fy = y.floor();
    let fz = z.floor();
    let ix = fx as i64;
    let iy = fy as i64;
    let iz = fz as i64;
    let tx = fade(x - fx);
    let ty = fade(y - fy);
    let tz = fade(z - fz);

    let c000 = lattice(ix, iy, iz, seed);
    let c100 = lattice(ix + 1, iy, iz, seed);
    let c010 = lattice(ix, iy + 1, iz, seed);
    let c110 = lattice(ix + 1, iy + 1, iz, seed);
    let c001 = lattice(ix, iy, iz + 1, seed);
    let c101 = lattice(ix + 1, iy, iz + 1, seed);
    let c011 = lattice(ix, iy + 1, iz + 1, seed);
    let c111 = lattice(ix + 1, iy + 1, iz + 1, seed);

    let x00 = lerp(c000, c100, tx);
    let x10 = lerp(c010, c110, tx);
    let x01 = lerp(c001, c101, tx);
    let x11 = lerp(c011, c111, tx);
    let y0 = lerp(x00, x10, ty);
    let y1 = lerp(x01, x11, ty);
    lerp(y0, y1, tz)
}

/// Fractal Brownian motion: `octaves` layers of value noise, each `lacunarity`
/// times finer and `gain` times weaker. Output normalized to [0, 1).
pub fn fbm(x: f32, y: f32, z: f32, octaves: u32, lacunarity: f32, gain: f32, seed: u64) -> f32 {
    let mut sum = 0.0f32;
    let mut amp = 1.0f32;
    let mut norm = 0.0f32;
    let mut fx = x;
    let mut fy = y;
    let mut fz = z;
    for o in 0..octaves {
        sum += amp * value_noise(fx, fy, fz, seed.wrapping_add(o as u64 * 0x9E3779B9));
        norm += amp;
        amp *= gain;
        fx *= lacunarity;
        fy *= lacunarity;
        fz *= lacunarity;
    }
    if norm > 0.0 {
        sum / norm
    } else {
        0.0
    }
}

/// Turbulence: fBm over |2n−1|, giving billowy ridged structure (used for the
/// supernova shock shell).
pub fn turbulence(
    x: f32,
    y: f32,
    z: f32,
    octaves: u32,
    lacunarity: f32,
    gain: f32,
    seed: u64,
) -> f32 {
    let mut sum = 0.0f32;
    let mut amp = 1.0f32;
    let mut norm = 0.0f32;
    let mut fx = x;
    let mut fy = y;
    let mut fz = z;
    for o in 0..octaves {
        let n = value_noise(fx, fy, fz, seed.wrapping_add(o as u64 * 0x517C_C1B7));
        sum += amp * (2.0 * n - 1.0).abs();
        norm += amp;
        amp *= gain;
        fx *= lacunarity;
        fy *= lacunarity;
        fz *= lacunarity;
    }
    if norm > 0.0 {
        sum / norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_values_in_unit_interval() {
        for i in -50i64..50 {
            let v = lattice(i, i * 3, -i, 42);
            assert!((0.0..1.0).contains(&v), "lattice out of range: {v}");
        }
    }

    #[test]
    fn hash_is_seed_sensitive() {
        assert_ne!(hash3(1, 2, 3, 1), hash3(1, 2, 3, 2));
        assert_ne!(hash3(1, 2, 3, 1), hash3(3, 2, 1, 1));
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        for (ix, iy, iz) in [(0i64, 0i64, 0i64), (5, -3, 2), (100, 7, -9)] {
            let expect = lattice(ix, iy, iz, 7);
            let got = value_noise(ix as f32, iy as f32, iz as f32, 7);
            assert!(
                (expect - got).abs() < 1e-6,
                "noise at lattice point should equal lattice value"
            );
        }
    }

    #[test]
    fn value_noise_is_continuous() {
        // Sample along a line crossing a lattice boundary; steps must be tiny.
        let mut prev = value_noise(0.95, 0.5, 0.5, 9);
        let mut x = 0.95f32;
        while x < 1.05 {
            x += 0.001;
            let v = value_noise(x, 0.5, 0.5, 9);
            assert!((v - prev).abs() < 0.02, "discontinuity at x={x}");
            prev = v;
        }
    }

    #[test]
    fn fbm_in_unit_interval_and_deterministic() {
        for p in 0..100 {
            let x = p as f32 * 0.37;
            let a = fbm(x, 1.3, -2.1, 4, 2.0, 0.5, 11);
            let b = fbm(x, 1.3, -2.1, 4, 2.0, 0.5, 11);
            assert_eq!(a, b);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn turbulence_in_unit_interval() {
        for p in 0..100 {
            let v = turbulence(p as f32 * 0.21, 0.5, 9.1, 4, 2.0, 0.5, 3);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_octaves_is_zero() {
        assert_eq!(fbm(1.0, 2.0, 3.0, 0, 2.0, 0.5, 1), 0.0);
        assert_eq!(turbulence(1.0, 2.0, 3.0, 0, 2.0, 0.5, 1), 0.0);
    }
}
