//! Volume downsampling and mip pyramids.
//!
//! The paper's related work leans on multiresolution renderers (Gao/Wang's
//! parallel multiresolution framework, LOD exploration); this module supplies
//! the data side: 2× box-filter downsampling and full pyramids, computed
//! brick-wise so large volumes never need to be resident.

use crate::volume::{Volume, VolumeMeta, VolumeSource};

/// Halve each dimension (rounding up) with a 2×2×2 box filter; boundary
/// voxels average only the in-bounds samples.
pub fn downsample(volume: &Volume) -> Volume {
    let d = volume.dims();
    let nd = [
        d[0].div_ceil(2).max(1),
        d[1].div_ceil(2).max(1),
        d[2].div_ceil(2).max(1),
    ];
    let mut out = vec![0f32; nd[0] as usize * nd[1] as usize * nd[2] as usize];

    // Stream pairs of source slabs.
    let sx = d[0] as usize;
    let sy = d[1] as usize;
    let mut slab = vec![0f32; sx * sy * 2];
    for nz in 0..nd[2] {
        let z0 = nz * 2;
        let dz = if z0 + 1 < d[2] { 2usize } else { 1 };
        volume.read_region([0, 0, z0], [sx, sy, dz], &mut slab[..sx * sy * dz]);
        for ny in 0..nd[1] as usize {
            for nx in 0..nd[0] as usize {
                let mut sum = 0f32;
                let mut n = 0u32;
                for oz in 0..dz {
                    for oy in 0..2usize {
                        let y = ny * 2 + oy;
                        if y >= sy {
                            continue;
                        }
                        for ox in 0..2usize {
                            let x = nx * 2 + ox;
                            if x >= sx {
                                continue;
                            }
                            sum += slab[(oz * sy + y) * sx + x];
                            n += 1;
                        }
                    }
                }
                out[(nz as usize * nd[1] as usize + ny) * nd[0] as usize + nx] = sum / n as f32;
            }
        }
    }

    Volume {
        meta: VolumeMeta {
            name: format!("{}-mip", volume.meta.name),
            dims: nd,
            seed: volume.meta.seed,
            content: crate::volume::data_fingerprint(&out),
        },
        source: VolumeSource::InMemory(std::sync::Arc::new(out)),
    }
}

/// A full mip pyramid: level 0 is the input, each further level is a 2×
/// downsample, ending at a single-digit-voxel level.
pub struct MipPyramid {
    pub levels: Vec<Volume>,
}

impl MipPyramid {
    pub fn build(volume: &Volume) -> MipPyramid {
        let mut levels = vec![volume.clone()];
        loop {
            let last = levels.last().unwrap();
            let d = last.dims();
            if d.iter().all(|&x| x <= 4) {
                break;
            }
            levels.push(downsample(last));
        }
        MipPyramid { levels }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Pick the coarsest level whose voxel count still meets `min_voxels` —
    /// the LOD selector a budgeted renderer would use.
    pub fn level_for_budget(&self, min_voxels: u64) -> &Volume {
        for lvl in self.levels.iter().rev() {
            if lvl.meta.voxel_count() >= min_voxels {
                return lvl;
            }
        }
        &self.levels[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use crate::field::Constant;
    use std::sync::Arc;

    #[test]
    fn constant_volume_stays_constant() {
        let v = Volume::procedural("c", [8, 8, 8], 0, Arc::new(Constant(0.37)));
        let m = downsample(&v);
        assert_eq!(m.dims(), [4, 4, 4]);
        for &x in m.materialize_full().iter() {
            assert!((x - 0.37).abs() < 1e-6);
        }
    }

    #[test]
    fn downsample_averages_blocks() {
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = Volume::in_memory("m", [2, 2, 2], data);
        let m = downsample(&v);
        assert_eq!(m.dims(), [1, 1, 1]);
        assert!((m.materialize_full()[0] - 3.5).abs() < 1e-6); // mean of 0..7
    }

    #[test]
    fn odd_dimensions_round_up() {
        let v = Volume::in_memory("m", [3, 5, 1], vec![1.0; 15]);
        let m = downsample(&v);
        assert_eq!(m.dims(), [2, 3, 1]);
        for &x in m.materialize_full().iter() {
            assert!((x - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_is_preserved_for_even_dims() {
        let v = Dataset::Supernova.volume(16);
        let full = v.materialize_full();
        let mean: f64 = full.iter().map(|&x| x as f64).sum::<f64>() / full.len() as f64;
        let m = downsample(&v);
        let mfull = m.materialize_full();
        let mmean: f64 = mfull.iter().map(|&x| x as f64).sum::<f64>() / mfull.len() as f64;
        assert!((mean - mmean).abs() < 1e-4, "{mean} vs {mmean}");
    }

    #[test]
    fn pyramid_terminates_and_orders_levels() {
        let v = Dataset::Skull.volume(32);
        let p = MipPyramid::build(&v);
        assert!(p.num_levels() >= 4);
        for w in p.levels.windows(2) {
            assert!(w[1].meta.voxel_count() < w[0].meta.voxel_count());
        }
        let coarsest = p.levels.last().unwrap().dims();
        assert!(coarsest.iter().all(|&d| d <= 4));
    }

    #[test]
    fn budget_selector_picks_coarsest_sufficient_level() {
        let v = Dataset::Skull.volume(32);
        let p = MipPyramid::build(&v);
        let lvl = p.level_for_budget(1000);
        assert!(lvl.meta.voxel_count() >= 1000);
        // The next coarser level (if any) must be under budget.
        let idx = p
            .levels
            .iter()
            .position(|l| l.meta.voxel_count() == lvl.meta.voxel_count())
            .unwrap();
        if idx + 1 < p.levels.len() {
            assert!(p.levels[idx + 1].meta.voxel_count() < 1000);
        }
    }
}
