//! # mgpu-voldata — volumes, datasets and the out-of-core brick store
//!
//! Data substrate for the reproduction of *"Multi-GPU Volume Rendering using
//! MapReduce"* (Stuart et al., 2010):
//!
//! * [`noise`] — seeded value noise / fBm / turbulence;
//! * [`field`] — continuous scalar fields over the unit cube;
//! * [`datasets`] — procedural stand-ins for the paper's Skull, Supernova and
//!   Plume volumes at the paper's resolutions (128³…1024³, 512×512×2048);
//! * [`volume`] — volume metadata + sources (procedural / raw file /
//!   in-memory) with clamped region materialization;
//! * [`io`] — the raw `MGVOL001` on-disk format with strided region reads;
//! * [`brick`] — brick-grid geometry under VRAM/GPU-count policies;
//! * [`brickstore`] — LRU-cached on-demand brick materialization with ghost
//!   layers (the out-of-core path);
//! * [`mipmap`] — 2× downsampling and mip pyramids (multiresolution LOD);
//! * [`stats`] — streaming volume statistics.

#![forbid(unsafe_code)]

pub mod brick;
pub mod brickstore;
pub mod datasets;
pub mod field;
pub mod io;
pub mod mipmap;
pub mod noise;
pub mod stats;
pub mod volume;

pub use brick::{BrickGrid, BrickInfo, BrickPolicy};
pub use brickstore::{BrickData, BrickStore, StoreSnapshot};
pub use datasets::Dataset;
pub use field::ScalarField;
pub use mipmap::{downsample, MipPyramid};
pub use stats::VolumeStats;
pub use volume::{Volume, VolumeMeta, VolumeSource};
