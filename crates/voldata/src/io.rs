//! Raw volume file I/O.
//!
//! Format `MGVOL001`: an 8-byte magic, three little-endian `u32` dimensions,
//! then `x·y·z` little-endian `f32` samples, x varying fastest. Dead simple on
//! purpose — the paper treats volume files as pre-bricked raw data and is
//! explicit that its library is "hard-disk agnostic".

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

pub const MAGIC: &[u8; 8] = b"MGVOL001";
const HEADER_BYTES: u64 = 8 + 12;

/// Write a full volume to `path`.
pub fn write_volume(path: &Path, dims: [u32; 3], data: &[f32]) -> io::Result<()> {
    assert_eq!(
        data.len() as u64,
        dims[0] as u64 * dims[1] as u64 * dims[2] as u64,
        "data length does not match dims"
    );
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    for d in dims {
        w.write_all(&d.to_le_bytes())?;
    }
    // Write in slabs to bound the temporary byte buffer.
    for chunk in data.chunks(1 << 20) {
        let mut buf = Vec::with_capacity(chunk.len() * 4);
        for v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Read and validate the header, returning the dimensions.
pub fn read_header(path: &Path) -> io::Result<[u32; 3]> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic in {path:?}"),
        ));
    }
    let mut dims = [0u32; 3];
    for d in &mut dims {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *d = u32::from_le_bytes(b);
    }
    Ok(dims)
}

/// Read the full volume.
pub fn read_volume(path: &Path) -> io::Result<([u32; 3], Vec<f32>)> {
    let dims = read_header(path)?;
    let n = dims[0] as usize * dims[1] as usize * dims[2] as usize;
    let mut out = vec![0f32; n];
    read_region(
        path,
        dims,
        [0, 0, 0],
        [dims[0] as usize, dims[1] as usize, dims[2] as usize],
        &mut out,
    )?;
    Ok((dims, out))
}

/// Read an in-bounds region with strided row reads (this is the actual
/// out-of-core brick-load path — each (y,z) row of the region is one
/// positioned read; no seeks, no buffer churn).
pub fn read_region(
    path: &Path,
    dims: [u32; 3],
    origin: [u32; 3],
    size: [usize; 3],
    out: &mut [f32],
) -> io::Result<()> {
    assert_eq!(out.len(), size[0] * size[1] * size[2]);
    let f = File::open(path)?;
    let (dx, dy) = (dims[0] as u64, dims[1] as u64);
    let row_bytes = size[0] * 4;
    let mut buf = vec![0u8; row_bytes];
    for z in 0..size[2] {
        for y in 0..size[1] {
            let voxel_off = (origin[2] as u64 + z as u64) * dx * dy
                + (origin[1] as u64 + y as u64) * dx
                + origin[0] as u64;
            read_exact_at(&f, &mut buf, HEADER_BYTES + voxel_off * 4)?;
            let row = (z * size[1] + y) * size[0];
            for x in 0..size[0] {
                out[row + x] = f32::from_le_bytes(buf[x * 4..x * 4 + 4].try_into().unwrap());
            }
        }
    }
    Ok(())
}

#[cfg(unix)]
fn read_exact_at(f: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(f: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = f;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mgpu_voldata_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_full_volume() {
        let path = tmp("rt.vol");
        let dims = [5u32, 3, 2];
        let data: Vec<f32> = (0..30).map(|i| i as f32 * 0.25).collect();
        write_volume(&path, dims, &data).unwrap();
        let (rd, rdata) = read_volume(&path).unwrap();
        assert_eq!(rd, dims);
        assert_eq!(rdata, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn region_read_matches_memory_slice() {
        let path = tmp("region.vol");
        let dims = [8u32, 8, 8];
        let data: Vec<f32> = (0..512).map(|i| (i * 7 % 101) as f32).collect();
        write_volume(&path, dims, &data).unwrap();

        let mut out = vec![0f32; 3 * 2 * 4];
        read_region(&path, dims, [2, 5, 1], [3, 2, 4], &mut out).unwrap();
        for z in 0..4usize {
            for y in 0..2usize {
                for x in 0..3usize {
                    let src = (2 + x) + 8 * ((5 + y) + 8 * (1 + z));
                    assert_eq!(out[(z * 2 + y) * 3 + x], data[src]);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad.vol");
        std::fs::write(&path, b"NOTAVOLUME______").unwrap();
        assert!(read_header(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_read() {
        let path = tmp("hdr.vol");
        write_volume(&path, [2, 2, 2], &[0.0; 8]).unwrap();
        assert_eq!(read_header(&path).unwrap(), [2, 2, 2]);
        std::fs::remove_file(&path).ok();
    }
}
