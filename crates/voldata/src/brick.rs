//! Brick-grid geometry: how a volume is cut into bricks.
//!
//! The paper bricks volumes so that (a) any single brick fits in GPU memory
//! and (b) the brick count stays "close (roughly within a factor of four) to
//! the number of GPUs" (§6). [`BrickPolicy`] encodes both constraints; the
//! grid produced always tiles the volume exactly once, with no overlap.

/// Constraints on the brick decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickPolicy {
    /// Aim for at least this many bricks (typically 1–4 × the GPU count, so
    /// every GPU has work and the stream has depth).
    pub min_bricks: u32,
    /// No brick may exceed this many voxels (VRAM constraint: the paper
    /// requires "any single map task must fit in the main memory of the
    /// GPU").
    pub max_brick_voxels: u64,
}

impl BrickPolicy {
    /// The paper's configuration: two bricks per GPU (its 1024³/8-GPU example
    /// runs 2 bricks per GPU), capped by a per-brick VRAM budget.
    pub fn for_gpus(gpus: u32, max_brick_voxels: u64) -> BrickPolicy {
        BrickPolicy {
            min_bricks: gpus.max(1) * 2,
            max_brick_voxels,
        }
    }
}

impl Default for BrickPolicy {
    fn default() -> Self {
        BrickPolicy {
            min_bricks: 1,
            // 256³ voxels = 64 Mi voxels = 256 MiB of f32: comfortably inside
            // a C1060's 4 GiB alongside working buffers.
            max_brick_voxels: 256 * 256 * 256,
        }
    }
}

/// A brick's place in the volume (ghost layers are added at materialization
/// time and are not part of the geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickInfo {
    pub id: usize,
    pub origin: [u32; 3],
    pub size: [u32; 3],
}

impl BrickInfo {
    pub fn voxels(&self) -> u64 {
        self.size[0] as u64 * self.size[1] as u64 * self.size[2] as u64
    }

    pub fn bytes(&self) -> u64 {
        self.voxels() * 4
    }
}

/// An axis-aligned decomposition of a volume into `counts[0]·counts[1]·counts[2]`
/// bricks, split as evenly as integer arithmetic allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrickGrid {
    pub vol_dims: [u32; 3],
    pub counts: [u32; 3],
}

impl BrickGrid {
    /// Decompose `dims` under `policy`: repeatedly halve the axis with the
    /// largest per-brick extent until both constraints hold.
    pub fn subdivide(dims: [u32; 3], policy: &BrickPolicy) -> BrickGrid {
        let mut counts = [1u32; 3];
        let brick_extent =
            |counts: &[u32; 3], a: usize| -> u64 { dims[a].div_ceil(counts[a]) as u64 };
        let brick_voxels =
            |counts: &[u32; 3]| -> u64 { (0..3).map(|a| brick_extent(counts, a)).product() };
        let total = |counts: &[u32; 3]| -> u64 { counts.iter().map(|&c| c as u64).product() };

        while total(&counts) < policy.min_bricks as u64
            || brick_voxels(&counts) > policy.max_brick_voxels
        {
            // Split the axis whose bricks are currently longest; ties go to
            // the later axis (z), matching slab-friendly layouts.
            let mut best = 0usize;
            for a in 1..3 {
                if brick_extent(&counts, a) >= brick_extent(&counts, best) {
                    best = a;
                }
            }
            if brick_extent(&counts, best) <= 1 {
                break; // cannot split further: single-voxel bricks
            }
            counts[best] *= 2;
            // Never create more bricks along an axis than it has voxels.
            counts[best] = counts[best].min(dims[best]);
        }

        BrickGrid {
            vol_dims: dims,
            counts,
        }
    }

    pub fn brick_count(&self) -> usize {
        (self.counts[0] * self.counts[1] * self.counts[2]) as usize
    }

    /// The (bx, by, bz) lattice coordinate of brick `id`.
    pub fn coords(&self, id: usize) -> [u32; 3] {
        let id = id as u32;
        let bx = id % self.counts[0];
        let by = (id / self.counts[0]) % self.counts[1];
        let bz = id / (self.counts[0] * self.counts[1]);
        assert!(bz < self.counts[2], "brick id out of range");
        [bx, by, bz]
    }

    /// Geometry of brick `id`. Bricks partition each axis at
    /// `floor(i · dim / count)` so sizes differ by at most one voxel.
    pub fn brick(&self, id: usize) -> BrickInfo {
        let c = self.coords(id);
        let mut origin = [0u32; 3];
        let mut size = [0u32; 3];
        for a in 0..3 {
            let lo = (c[a] as u64 * self.vol_dims[a] as u64 / self.counts[a] as u64) as u32;
            let hi = ((c[a] as u64 + 1) * self.vol_dims[a] as u64 / self.counts[a] as u64) as u32;
            origin[a] = lo;
            size[a] = hi - lo;
        }
        BrickInfo { id, origin, size }
    }

    pub fn bricks(&self) -> impl Iterator<Item = BrickInfo> + '_ {
        (0..self.brick_count()).map(|i| self.brick(i))
    }

    /// Largest brick in voxels (what VRAM must accommodate).
    pub fn max_brick_voxels(&self) -> u64 {
        self.bricks().map(|b| b.voxels()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_brick_when_unconstrained() {
        let g = BrickGrid::subdivide(
            [64, 64, 64],
            &BrickPolicy {
                min_bricks: 1,
                max_brick_voxels: u64::MAX,
            },
        );
        assert_eq!(g.brick_count(), 1);
        let b = g.brick(0);
        assert_eq!(b.origin, [0, 0, 0]);
        assert_eq!(b.size, [64, 64, 64]);
    }

    #[test]
    fn respects_min_bricks() {
        let g = BrickGrid::subdivide([128, 128, 128], &BrickPolicy::for_gpus(8, u64::MAX));
        assert!(g.brick_count() >= 16);
        // Stays within a factor of ~4 of the request (paper §6).
        assert!(g.brick_count() <= 64);
    }

    #[test]
    fn respects_vram_cap() {
        let g = BrickGrid::subdivide(
            [1024, 1024, 1024],
            &BrickPolicy {
                min_bricks: 1,
                max_brick_voxels: 256 * 256 * 256,
            },
        );
        assert!(g.max_brick_voxels() <= 256 * 256 * 256);
        assert_eq!(g.brick_count(), 64);
    }

    #[test]
    fn bricks_tile_volume_exactly_once() {
        for dims in [[10u32, 7, 13], [64, 64, 64], [33, 65, 17]] {
            let g = BrickGrid::subdivide(
                dims,
                &BrickPolicy {
                    min_bricks: 11,
                    max_brick_voxels: 500,
                },
            );
            let mut covered = vec![0u8; dims[0] as usize * dims[1] as usize * dims[2] as usize];
            for b in g.bricks() {
                for z in 0..b.size[2] {
                    for y in 0..b.size[1] {
                        for x in 0..b.size[0] {
                            let gx = b.origin[0] + x;
                            let gy = b.origin[1] + y;
                            let gz = b.origin[2] + z;
                            let idx = (gx as usize)
                                + dims[0] as usize * (gy as usize + dims[1] as usize * gz as usize);
                            covered[idx] += 1;
                        }
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "bricks must tile exactly once for dims {dims:?}"
            );
        }
    }

    #[test]
    fn anisotropic_volume_splits_longest_axis_first() {
        // Plume-shaped: 1×1×4 aspect. First splits should all be along z.
        let g = BrickGrid::subdivide(
            [512, 512, 2048],
            &BrickPolicy {
                min_bricks: 4,
                max_brick_voxels: u64::MAX,
            },
        );
        assert_eq!(g.counts, [1, 1, 4]);
    }

    #[test]
    fn tiny_volume_cannot_oversplit() {
        let g = BrickGrid::subdivide(
            [2, 2, 2],
            &BrickPolicy {
                min_bricks: 1000,
                max_brick_voxels: u64::MAX,
            },
        );
        assert_eq!(g.brick_count(), 8); // 2×2×2 single-voxel bricks, no further
    }

    #[test]
    fn brick_sizes_near_even() {
        let g = BrickGrid::subdivide(
            [100, 100, 100],
            &BrickPolicy {
                min_bricks: 27,
                max_brick_voxels: u64::MAX,
            },
        );
        for b in g.bricks() {
            for a in 0..3 {
                let per = 100 / g.counts[a];
                assert!(b.size[a] == per || b.size[a] == per + 1);
            }
        }
    }
}
