//! Streaming volume statistics (computed brick-wise so arbitrarily large
//! volumes never need to be resident).

use crate::brick::{BrickGrid, BrickPolicy};
use crate::volume::Volume;

/// Summary statistics over all voxels of a volume.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeStats {
    pub min: f32,
    pub max: f32,
    pub mean: f64,
    pub stddev: f64,
    /// Histogram over [0, 1] with `histogram.len()` equal-width bins; values
    /// outside the range clamp into the end bins.
    pub histogram: Vec<u64>,
    pub voxels: u64,
}

impl VolumeStats {
    /// Compute statistics with a `bins`-bucket histogram, streaming one brick
    /// at a time.
    pub fn compute(volume: &Volume, bins: usize) -> VolumeStats {
        assert!(bins >= 1);
        let grid = BrickGrid::subdivide(volume.dims(), &BrickPolicy::default());
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        let mut histogram = vec![0u64; bins];
        let mut voxels = 0u64;

        for b in grid.bricks() {
            let size = [b.size[0] as usize, b.size[1] as usize, b.size[2] as usize];
            let mut data = vec![0f32; size[0] * size[1] * size[2]];
            volume.read_region(b.origin, size, &mut data);
            for &v in &data {
                min = min.min(v);
                max = max.max(v);
                sum += v as f64;
                sum_sq += (v as f64) * (v as f64);
                let bin = ((v * bins as f32) as usize).min(bins - 1);
                histogram[bin] += 1;
            }
            voxels += data.len() as u64;
        }

        let n = voxels.max(1) as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        VolumeStats {
            min: if voxels == 0 { 0.0 } else { min },
            max: if voxels == 0 { 0.0 } else { max },
            mean,
            stddev: var.sqrt(),
            histogram,
            voxels,
        }
    }

    /// Fraction of voxels strictly below `threshold`.
    pub fn fraction_below(&self, threshold: f32) -> f64 {
        let bins = self.histogram.len();
        let cut = ((threshold * bins as f32) as usize).min(bins);
        let below: u64 = self.histogram[..cut].iter().sum();
        below as f64 / self.voxels.max(1) as f64
    }

    /// Fraction of voxels at or above `threshold`.
    pub fn fraction_above(&self, threshold: f32) -> f64 {
        1.0 - self.fraction_below(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Constant;
    use std::sync::Arc;

    #[test]
    fn constant_volume_stats() {
        let v = Volume::procedural("c", [8, 8, 8], 0, Arc::new(Constant(0.5)));
        let s = VolumeStats::compute(&v, 10);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.5);
        assert!((s.mean - 0.5).abs() < 1e-9);
        assert!(s.stddev < 1e-9);
        assert_eq!(s.voxels, 512);
        assert_eq!(s.histogram[5], 512);
    }

    #[test]
    fn histogram_sums_to_voxels() {
        let v = crate::datasets::Dataset::Skull.volume(16);
        let s = VolumeStats::compute(&v, 32);
        assert_eq!(s.histogram.iter().sum::<u64>(), s.voxels);
        assert_eq!(s.voxels, 16 * 16 * 16);
    }

    #[test]
    fn fractions_are_complementary() {
        let v = crate::datasets::Dataset::Supernova.volume(16);
        let s = VolumeStats::compute(&v, 64);
        let below = s.fraction_below(0.25);
        let above = s.fraction_above(0.25);
        assert!((below + above - 1.0).abs() < 1e-12);
    }
}
