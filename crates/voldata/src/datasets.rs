//! Procedural stand-ins for the paper's three datasets.
//!
//! The paper evaluates on **Skull** (CT head), **Supernova** (astrophysics
//! simulation) and **Plume** (512×512×2048 buoyant plume). Those files are
//! not redistributable, so we synthesize fields with the same resolutions and
//! qualitatively similar density structure: a hard shell with cavities and
//! soft interior (Skull), a turbulent spherical shock with filamentary core
//! (Supernova), and a rising, widening column (Plume). Rendering cost is
//! governed by resolution, ray coverage and opacity distribution, all of
//! which these preserve; only the pictures' subject differs.

use std::sync::Arc;

use crate::field::ScalarField;
use crate::noise::{fbm, turbulence, value_noise};
use crate::volume::Volume;

/// The paper's three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Skull,
    Supernova,
    Plume,
}

impl Dataset {
    pub const ALL: [Dataset; 3] = [Dataset::Skull, Dataset::Supernova, Dataset::Plume];

    pub fn name(self) -> &'static str {
        match self {
            Dataset::Skull => "skull",
            Dataset::Supernova => "supernova",
            Dataset::Plume => "plume",
        }
    }

    /// Inverse of [`Dataset::name`] — how a wire protocol resolves a dataset
    /// reference back to the procedural volume on the receiving side.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Default seed per dataset (stable across the whole reproduction).
    pub fn seed(self) -> u64 {
        match self {
            Dataset::Skull => 0x5C11,
            Dataset::Supernova => 0x50BA,
            Dataset::Plume => 0x9127,
        }
    }

    /// Volume dimensions for a given base size: cubes for Skull/Supernova
    /// (the paper uses 128³…1024³), a 1:1:4 column for Plume (512×512×2048).
    pub fn dims(self, base: u32) -> [u32; 3] {
        match self {
            Dataset::Skull | Dataset::Supernova => [base, base, base],
            Dataset::Plume => [base, base, base * 4],
        }
    }

    pub fn field(self) -> Arc<dyn ScalarField> {
        let seed = self.seed();
        match self {
            Dataset::Skull => Arc::new(SkullField { seed }),
            Dataset::Supernova => Arc::new(SupernovaField { seed }),
            Dataset::Plume => Arc::new(PlumeField { seed }),
        }
    }

    /// Build the procedural volume at `base` resolution.
    pub fn volume(self, base: u32) -> Volume {
        Volume::procedural(self.name(), self.dims(base), self.seed(), self.field())
    }
}

#[inline]
fn smooth_band(x: f32, center: f32, width: f32) -> f32 {
    let d = (x - center).abs() / width;
    if d >= 1.0 {
        0.0
    } else {
        let t = 1.0 - d;
        t * t * (3.0 - 2.0 * t)
    }
}

#[inline]
fn clamp01(v: f32) -> f32 {
    v.clamp(0.0, 1.0)
}

/// CT-head stand-in: hard cranial shell with eye-socket cavities, soft brain
/// interior, faint skin layer.
struct SkullField {
    seed: u64,
}

impl ScalarField for SkullField {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        // Head-shaped ellipsoid: slightly narrow in x, tall in z.
        let px = (x - 0.5) / 0.88;
        let py = (y - 0.5) / 0.95;
        let pz = (z - 0.52) / 1.02;
        let r = (px * px + py * py + pz * pz).sqrt();

        // Lumpy cranial radius.
        let lump = value_noise(x * 9.0, y * 9.0, z * 9.0, self.seed) - 0.5;
        let shell_r = 0.335 + 0.02 * lump;

        // Bone: a hard, bright shell.
        let mut v = 0.92 * smooth_band(r, shell_r, 0.035);

        // Eye sockets carve two notches out of the front of the shell.
        for sx in [-1.0f32, 1.0] {
            let ex = px - sx * 0.14;
            let ey = py + 0.30;
            let ez = pz - 0.05;
            let er = (ex * ex + ey * ey + ez * ez).sqrt();
            if er < 0.09 {
                let t = 1.0 - er / 0.09;
                v *= 1.0 - t * t;
            }
        }

        // Brain: mid-density convoluted interior.
        if r < shell_r - 0.03 {
            let folds = fbm(
                x * 14.0,
                y * 14.0,
                z * 14.0,
                3,
                2.1,
                0.5,
                self.seed ^ 0xB4A1,
            );
            v = v.max(0.30 + 0.18 * folds);
        }

        // Skin: faint thin layer outside the bone.
        v = v.max(0.12 * smooth_band(r, 0.40, 0.015));

        clamp01(v)
    }
}

/// Core-collapse supernova stand-in: turbulent spherical shock shell with
/// filamentary ejecta inside and a small hot core.
struct SupernovaField {
    seed: u64,
}

impl ScalarField for SupernovaField {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let px = x - 0.5;
        let py = y - 0.5;
        let pz = z - 0.5;
        let r = (px * px + py * py + pz * pz).sqrt();
        if r > 0.48 {
            return 0.0;
        }

        // Direction-dependent shock radius: the blast wave is aspherical.
        let wob = turbulence(x * 5.0, y * 5.0, z * 5.0, 3, 2.0, 0.5, self.seed);
        let shock_r = 0.36 + 0.05 * (wob - 0.5);

        let mut v = 0.85 * smooth_band(r, shock_r, 0.045);

        // Filamentary ejecta fill the interior, fading towards the shock.
        if r < shock_r {
            let fil = turbulence(x * 11.0, y * 11.0, z * 11.0, 3, 2.2, 0.55, self.seed ^ 0xE);
            let radial = 1.0 - (r / shock_r);
            v = v.max(clamp01(0.65 * fil * (0.35 + 0.65 * radial)));
        }

        // Hot compact core.
        if r < 0.06 {
            let t = 1.0 - r / 0.06;
            v = v.max(0.95 * t * t);
        }

        clamp01(v)
    }
}

/// Buoyant-plume stand-in: a rising column that widens, sways and turns
/// turbulent with height (tall axis = z, matching 512×512×2048).
struct PlumeField {
    seed: u64,
}

impl ScalarField for PlumeField {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let h = z; // height fraction along the tall axis

        // The plume axis drifts with height (noise-driven sway, no trig).
        let sway_x = 0.18 * (value_noise(h * 4.0, 0.31, 7.7, self.seed) - 0.5) * h;
        let sway_y = 0.18 * (value_noise(9.2, h * 4.0, 1.3, self.seed ^ 0x77) - 0.5) * h;
        let dx = x - (0.5 + sway_x);
        let dy = y - (0.5 + sway_y);
        let d = (dx * dx + dy * dy).sqrt();

        // Column radius grows with height; density thins as it rises.
        let radius = 0.055 + 0.22 * h;
        let core = (-3.0 * (d / radius) * (d / radius)).exp();

        // Turbulent mixing intensifies with height.
        let turb = fbm(x * 7.0, y * 7.0, z * 21.0, 3, 2.0, 0.5, self.seed ^ 0xF00D);
        let mixed = core * (0.55 + 0.45 * turb) * (1.0 - 0.55 * h);

        // Hot source pool at the base.
        let base = if h < 0.04 && d < 0.12 {
            (1.0 - h / 0.04) * (1.0 - d / 0.12) * 0.9
        } else {
            0.0
        };

        clamp01((1.35 * mixed).max(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::VolumeStats;

    #[test]
    fn dims_match_paper() {
        assert_eq!(Dataset::Skull.dims(1024), [1024, 1024, 1024]);
        assert_eq!(Dataset::Plume.dims(512), [512, 512, 2048]);
    }

    #[test]
    fn volumes_are_deterministic() {
        let a = Dataset::Supernova.volume(16).materialize_full();
        let b = Dataset::Supernova.volume(16).materialize_full();
        assert_eq!(a, b);
    }

    #[test]
    fn fields_stay_in_unit_range_and_are_nontrivial() {
        for ds in Dataset::ALL {
            let v = ds.volume(32);
            let stats = VolumeStats::compute(&v, 64);
            assert!(stats.min >= 0.0, "{ds:?} has negative samples");
            assert!(stats.max <= 1.0, "{ds:?} exceeds 1.0");
            assert!(
                stats.max - stats.min > 0.3,
                "{ds:?} looks degenerate: {stats:?}"
            );
            // Plenty of empty space (rays must be able to terminate early)…
            assert!(stats.fraction_below(0.05) > 0.2, "{ds:?}: {stats:?}");
            // …but also real structure.
            assert!(stats.fraction_above(0.3) > 0.005, "{ds:?}: {stats:?}");
        }
    }

    #[test]
    fn skull_has_bright_shell() {
        let v = Dataset::Skull.volume(64);
        let stats = VolumeStats::compute(&v, 16);
        assert!(stats.max > 0.8, "no bone-density voxels: {stats:?}");
    }

    #[test]
    fn plume_density_concentrated_near_axis() {
        let f = Dataset::Plume.field();
        // Near the axis at low height: dense. Far corner: empty.
        assert!(f.sample(0.5, 0.5, 0.1) > 0.3);
        assert!(f.sample(0.05, 0.05, 0.5) < 0.05);
    }

    #[test]
    fn supernova_empty_outside_blast() {
        let f = Dataset::Supernova.field();
        assert_eq!(f.sample(0.01, 0.01, 0.01), 0.0);
        // Somewhere on the shock shell radius there is material.
        let mut found = false;
        for i in 0..64 {
            let t = i as f32 / 63.0;
            if f.sample(0.5 + 0.36 * t, 0.5, 0.5) > 0.4 {
                found = true;
            }
        }
        assert!(found, "no shock shell material found");
    }
}
