//! Volumes: metadata plus a voxel source (procedural field, raw file, or an
//! in-memory array), with clamped region materialization for ghost layers.

use std::path::PathBuf;
use std::sync::Arc;

use crate::field::ScalarField;
use crate::io;

/// Metadata describing a scalar volume of `f32` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeMeta {
    pub name: String,
    /// Voxel dimensions, x/y/z. x varies fastest in memory.
    pub dims: [u32; 3],
    /// Seed used for procedural generation (recorded for provenance).
    pub seed: u64,
    /// Cheap content fingerprint: hashes the voxel data (in-memory sources)
    /// or a deterministic probe of the field (procedural sources), so two
    /// volumes that agree on `(name, dims, seed)` but hold different voxels
    /// still compare (and hash) unequal. Callers that wrap the same content
    /// in a different source (e.g. baking a procedural volume to a file)
    /// clone the meta, keeping the fingerprint.
    pub content: u64,
}

impl VolumeMeta {
    pub fn voxel_count(&self) -> u64 {
        self.dims[0] as u64 * self.dims[1] as u64 * self.dims[2] as u64
    }

    /// Bytes of the full volume at 4 bytes per sample (the paper's volumes
    /// all use four-byte floating-point samples).
    pub fn bytes(&self) -> u64 {
        self.voxel_count() * 4
    }

    pub fn label(&self) -> String {
        let [x, y, z] = self.dims;
        if x == y && y == z {
            format!("{}-{}^3", self.name, x)
        } else {
            format!("{}-{}x{}x{}", self.name, x, y, z)
        }
    }
}

/// Where voxels come from.
#[derive(Clone)]
pub enum VolumeSource {
    /// Sampled on demand from a continuous field at voxel centers.
    Procedural(Arc<dyn ScalarField>),
    /// Read on demand from a raw volume file (see [`crate::io`]).
    File(PathBuf),
    /// Fully resident (tests, small volumes).
    InMemory(Arc<Vec<f32>>),
}

impl std::fmt::Debug for VolumeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeSource::Procedural(_) => write!(f, "Procedural"),
            VolumeSource::File(p) => write!(f, "File({})", p.display()),
            VolumeSource::InMemory(v) => write!(f, "InMemory({} voxels)", v.len()),
        }
    }
}

/// The FNV-1a offset basis: seed [`fnv1a`] chains with this.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over arbitrary bytes, seeded with a running hash — stable across
/// runs and platforms. This is the one hash used wherever stability
/// matters: content fingerprints here, rendezvous shard routing in
/// `mgpu-serve`. Chain calls by feeding one call's result as the next
/// call's `hash`.
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Content fingerprint of fully resident voxel data.
pub(crate) fn data_fingerprint(data: &[f32]) -> u64 {
    let mut h = fnv1a(&(data.len() as u64).to_le_bytes(), FNV_OFFSET);
    for v in data {
        h = fnv1a(&v.to_bits().to_le_bytes(), h);
    }
    h
}

/// Content fingerprint of a procedural field: probe it at a fixed set of
/// seed-derived quasi-random points. Cheap (32 samples) yet sensitive to the
/// field itself, so two fields registered under the same `(name, dims,
/// seed)` still fingerprint apart with overwhelming probability.
fn field_fingerprint(field: &dyn ScalarField, seed: u64) -> u64 {
    let mut h = fnv1a(&seed.to_le_bytes(), FNV_OFFSET);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next_unit = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f32 / (1u64 << 53) as f32
    };
    for _ in 0..32 {
        let (x, y, z) = (next_unit(), next_unit(), next_unit());
        h = fnv1a(&field.sample(x, y, z).to_bits().to_le_bytes(), h);
    }
    h
}

/// A scalar volume: metadata + voxel source.
#[derive(Debug, Clone)]
pub struct Volume {
    pub meta: VolumeMeta,
    pub source: VolumeSource,
}

impl Volume {
    pub fn procedural(
        name: impl Into<String>,
        dims: [u32; 3],
        seed: u64,
        field: Arc<dyn ScalarField>,
    ) -> Volume {
        let content = field_fingerprint(field.as_ref(), seed);
        Volume {
            meta: VolumeMeta {
                name: name.into(),
                dims,
                seed,
                content,
            },
            source: VolumeSource::Procedural(field),
        }
    }

    pub fn in_memory(name: impl Into<String>, dims: [u32; 3], data: Vec<f32>) -> Volume {
        let meta = VolumeMeta {
            name: name.into(),
            dims,
            seed: 0,
            content: data_fingerprint(&data),
        };
        assert_eq!(
            data.len() as u64,
            meta.voxel_count(),
            "voxel data does not match dims"
        );
        Volume {
            meta,
            source: VolumeSource::InMemory(Arc::new(data)),
        }
    }

    pub fn dims(&self) -> [u32; 3] {
        self.meta.dims
    }

    /// Read an **in-bounds** region into `out` (x-fastest layout).
    pub fn read_region(&self, origin: [u32; 3], size: [usize; 3], out: &mut [f32]) {
        let d = self.meta.dims;
        assert!(
            origin[0] as usize + size[0] <= d[0] as usize
                && origin[1] as usize + size[1] <= d[1] as usize
                && origin[2] as usize + size[2] <= d[2] as usize,
            "region out of bounds: origin {origin:?} size {size:?} dims {d:?}"
        );
        assert_eq!(out.len(), size[0] * size[1] * size[2]);

        match &self.source {
            VolumeSource::Procedural(field) => {
                materialize_procedural(field.as_ref(), d, origin, size, out);
            }
            VolumeSource::File(path) => {
                io::read_region(path, d, origin, size, out)
                    .unwrap_or_else(|e| panic!("reading region from {path:?}: {e}"));
            }
            VolumeSource::InMemory(data) => {
                let (dx, dy) = (d[0] as usize, d[1] as usize);
                for z in 0..size[2] {
                    for y in 0..size[1] {
                        let src_row = (origin[2] as usize + z) * dx * dy
                            + (origin[1] as usize + y) * dx
                            + origin[0] as usize;
                        let dst_row = (z * size[1] + y) * size[0];
                        out[dst_row..dst_row + size[0]]
                            .copy_from_slice(&data[src_row..src_row + size[0]]);
                    }
                }
            }
        }
    }

    /// Materialize a region that may extend past the volume (negative or
    /// too-large coordinates), replicating edge voxels — the same clamping a
    /// CUDA 3-D texture in clamp-address mode performs. This is what gives
    /// bricks their ghost layers.
    pub fn materialize_clamped(&self, origin: [i64; 3], size: [usize; 3]) -> Vec<f32> {
        let d = self.meta.dims;
        // In-bounds core that actually needs reading.
        let lo = [0usize, 1, 2].map(|a| origin[a].clamp(0, d[a] as i64 - 1) as u32);
        let hi = [0usize, 1, 2].map(|a| (origin[a] + size[a] as i64).clamp(1, d[a] as i64) as u32);
        let core_size = [0usize, 1, 2].map(|a| (hi[a].max(lo[a] + 1) - lo[a]) as usize);
        let mut core = vec![0f32; core_size[0] * core_size[1] * core_size[2]];
        self.read_region(lo, core_size, &mut core);

        // Map every output voxel to its clamped coordinate inside the core.
        let mut idx = [Vec::new(), Vec::new(), Vec::new()];
        for a in 0..3 {
            idx[a] = (0..size[a])
                .map(|i| {
                    let g = (origin[a] + i as i64).clamp(0, d[a] as i64 - 1) as u32;
                    (g - lo[a]) as usize
                })
                .collect();
        }

        let mut out = vec![0f32; size[0] * size[1] * size[2]];
        let (cx, cy) = (core_size[0], core_size[1]);
        for z in 0..size[2] {
            let zc = idx[2][z] * cx * cy;
            for y in 0..size[1] {
                let yc = zc + idx[1][y] * cx;
                let row = (z * size[1] + y) * size[0];
                for x in 0..size[0] {
                    out[row + x] = core[yc + idx[0][x]];
                }
            }
        }
        out
    }

    /// Materialize the entire volume (small volumes and tests only).
    pub fn materialize_full(&self) -> Vec<f32> {
        let d = self.meta.dims;
        let size = [d[0] as usize, d[1] as usize, d[2] as usize];
        let mut out = vec![0f32; size[0] * size[1] * size[2]];
        self.read_region([0, 0, 0], size, &mut out);
        out
    }

    /// Voxel value at integer coordinates (clamped); for tests and point
    /// probes, not bulk access.
    pub fn voxel(&self, x: i64, y: i64, z: i64) -> f32 {
        self.materialize_clamped([x, y, z], [1, 1, 1])[0]
    }
}

/// Sample a field at voxel centers over a region, splitting z-slabs across
/// threads for large regions.
fn materialize_procedural(
    field: &dyn ScalarField,
    dims: [u32; 3],
    origin: [u32; 3],
    size: [usize; 3],
    out: &mut [f32],
) {
    let inv = [
        1.0 / dims[0] as f32,
        1.0 / dims[1] as f32,
        1.0 / dims[2] as f32,
    ];
    let fill_slab = |z_lo: usize, z_hi: usize, slab: &mut [f32]| {
        for (zi, z) in (z_lo..z_hi).enumerate() {
            let wz = (origin[2] as f32 + z as f32 + 0.5) * inv[2];
            for y in 0..size[1] {
                let wy = (origin[1] as f32 + y as f32 + 0.5) * inv[1];
                let row = (zi * size[1] + y) * size[0];
                for x in 0..size[0] {
                    let wx = (origin[0] as f32 + x as f32 + 0.5) * inv[0];
                    slab[row + x] = field.sample(wx, wy, wz);
                }
            }
        }
    };

    let total = size[0] * size[1] * size[2];
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if total < (1 << 18) || threads < 2 || size[2] < 2 {
        fill_slab(0, size[2], out);
        return;
    }

    let slab_voxels = size[0] * size[1];
    let chunk_z = size[2].div_ceil(threads);
    std::thread::scope(|scope| {
        for (ti, chunk) in out.chunks_mut(chunk_z * slab_voxels).enumerate() {
            let z_lo = ti * chunk_z;
            let z_hi = (z_lo + chunk.len() / slab_voxels).min(size[2]);
            scope.spawn(move || fill_slab(z_lo, z_hi, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::AxisRamp;

    fn ramp_volume(dims: [u32; 3]) -> Volume {
        Volume::procedural("ramp", dims, 0, Arc::new(AxisRamp { axis: 0 }))
    }

    #[test]
    fn meta_math() {
        let m = VolumeMeta {
            name: "v".into(),
            dims: [64, 64, 64],
            seed: 0,
            content: 0,
        };
        assert_eq!(m.voxel_count(), 262_144);
        assert_eq!(m.bytes(), 1_048_576); // the paper's 1 MiB 64³ brick
        assert_eq!(m.label(), "v-64^3");
    }

    #[test]
    fn procedural_samples_at_voxel_centers() {
        let v = ramp_volume([8, 4, 4]);
        let full = v.materialize_full();
        // x=0 center is 0.5/8; x=7 center is 7.5/8.
        assert!((full[0] - 0.0625).abs() < 1e-6);
        assert!((full[7] - 0.9375).abs() < 1e-6);
    }

    #[test]
    fn in_memory_region_read() {
        let dims = [4u32, 3, 2];
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let v = Volume::in_memory("m", dims, data);
        let mut out = vec![0f32; 2 * 2];
        v.read_region([1, 1, 1], [2, 2, 1], &mut out);
        // index = x + 4*(y + 3*z): (1,1,1)=17, (2,1,1)=18, (1,2,1)=21, (2,2,1)=22
        assert_eq!(out, vec![17.0, 18.0, 21.0, 22.0]);
    }

    #[test]
    fn clamped_region_replicates_edges() {
        let dims = [2u32, 2, 2];
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = Volume::in_memory("m", dims, data);
        // One-voxel ghost all around a 2³ volume = 4³ output.
        let out = v.materialize_clamped([-1, -1, -1], [4, 4, 4]);
        assert_eq!(out.len(), 64);
        // Corner ghost voxel replicates voxel (0,0,0) = 0.
        assert_eq!(out[0], 0.0);
        // Far corner replicates voxel (1,1,1) = 7.
        assert_eq!(out[63], 7.0);
        // Interior voxel (1,1,1) of output = volume voxel (0,0,0).
        assert_eq!(out[1 + 4 * (1 + 4)], 0.0);
        // Output (2,2,2) = volume voxel (1,1,1) = 7.
        assert_eq!(out[2 + 4 * (2 + 4 * 2)], 7.0);
    }

    #[test]
    fn clamped_equals_unclamped_inside() {
        let v = ramp_volume([16, 16, 16]);
        let a = v.materialize_clamped([4, 5, 6], [3, 3, 3]);
        let mut b = vec![0f32; 27];
        v.read_region([4, 5, 6], [3, 3, 3], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_serial_materialization_agree() {
        // Big enough to trigger the threaded path.
        let v = ramp_volume([128, 64, 64]);
        let par = v.materialize_full();
        let mut ser = vec![0f32; par.len()];
        // Force serial by materializing slab-by-slab.
        for z in 0..64 {
            let mut slab = vec![0f32; 128 * 64];
            v.read_region([0, 0, z], [128, 64, 1], &mut slab);
            ser[(z as usize) * 128 * 64..(z as usize + 1) * 128 * 64].copy_from_slice(&slab);
        }
        assert_eq!(par, ser);
    }

    #[test]
    fn voxel_probe() {
        let dims = [4u32, 4, 4];
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let v = Volume::in_memory("m", dims, data);
        assert_eq!(v.voxel(1, 2, 3), (1 + 4 * (2 + 4 * 3)) as f32);
        // Clamped outside.
        assert_eq!(v.voxel(-5, 0, 0), 0.0);
        assert_eq!(v.voxel(9, 3, 3), 63.0);
    }

    #[test]
    fn content_fingerprint_separates_same_meta_volumes() {
        let dims = [4u32, 4, 4];
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut b = a.clone();
        b[40] += 1.0; // one differing voxel
        let va = Volume::in_memory("twin", dims, a.clone());
        let vb = Volume::in_memory("twin", dims, b);
        assert_eq!(va.meta.name, vb.meta.name);
        assert_eq!(va.meta.dims, vb.meta.dims);
        assert_eq!(va.meta.seed, vb.meta.seed);
        assert_ne!(va.meta.content, vb.meta.content, "voxels differ");
        assert_ne!(va.meta, vb.meta);
        // Identical content reproduces the identical fingerprint.
        let va2 = Volume::in_memory("twin", dims, a);
        assert_eq!(va.meta, va2.meta);
    }

    #[test]
    fn content_fingerprint_separates_procedural_fields() {
        let x = Volume::procedural("f", [8, 8, 8], 7, Arc::new(AxisRamp { axis: 0 }));
        let y = Volume::procedural("f", [8, 8, 8], 7, Arc::new(AxisRamp { axis: 1 }));
        assert_ne!(x.meta.content, y.meta.content, "fields differ");
        // Deterministic: the same field + seed always fingerprints the same.
        let x2 = Volume::procedural("f", [8, 8, 8], 7, Arc::new(AxisRamp { axis: 0 }));
        assert_eq!(x.meta.content, x2.meta.content);
    }

    #[test]
    #[should_panic(expected = "region out of bounds")]
    fn read_region_rejects_oob() {
        let v = ramp_volume([8, 8, 8]);
        let mut out = vec![0f32; 8];
        v.read_region([6, 0, 0], [8, 1, 1], &mut out);
    }
}
