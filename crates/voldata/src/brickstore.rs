//! The out-of-core brick store: materializes bricks (with ghost layers) on
//! demand and caches them under a host-memory budget with LRU eviction.
//!
//! This is the data side of the paper's out-of-core story: "the library
//! allows for out-of-core algorithms (including rendering)" — bricks stream
//! through host memory; the whole volume never has to be resident.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::brick::{BrickGrid, BrickInfo};
use crate::volume::Volume;

/// A materialized brick: voxels including `ghost` extra layers on every side
/// (clamped at volume borders), so trilinear sampling at brick boundaries
/// reproduces the global volume exactly.
#[derive(Debug)]
pub struct BrickData {
    pub info: BrickInfo,
    /// Ghost layers on each side.
    pub ghost: u32,
    /// Origin of the stored array in (possibly negative) volume coordinates.
    pub store_origin: [i64; 3],
    /// Dimensions of the stored array (= size + 2·ghost).
    pub store_dims: [usize; 3],
    /// Shared so a device texture can reference the same allocation.
    pub voxels: std::sync::Arc<Vec<f32>>,
}

impl BrickData {
    pub fn bytes(&self) -> u64 {
        (self.voxels.len() * 4) as u64
    }
}

/// Cache statistics (monotonic counters).
#[derive(Debug, Default)]
pub struct StoreStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub bytes_materialized: AtomicU64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_materialized: u64,
}

impl StoreSnapshot {
    /// Counter deltas since an `earlier` snapshot of the same store —
    /// attributes staging work to one frame when a store is shared across
    /// frames (the render service's batching path).
    pub fn since(&self, earlier: &StoreSnapshot) -> StoreSnapshot {
        StoreSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_materialized: self
                .bytes_materialized
                .saturating_sub(earlier.bytes_materialized),
        }
    }
}

struct CacheInner {
    entries: HashMap<usize, (Arc<BrickData>, u64)>,
    bytes: u64,
    tick: u64,
}

/// Thread-safe brick cache over a volume + brick grid.
pub struct BrickStore {
    volume: Volume,
    grid: BrickGrid,
    ghost: u32,
    budget_bytes: u64,
    inner: Mutex<CacheInner>,
    stats: StoreStats,
}

impl BrickStore {
    /// `budget_bytes` bounds cached voxel data; a single brick larger than the
    /// budget is still materialized (and evicted as soon as another arrives).
    pub fn new(volume: Volume, grid: BrickGrid, ghost: u32, budget_bytes: u64) -> BrickStore {
        assert_eq!(
            volume.dims(),
            grid.vol_dims,
            "grid does not match volume dims"
        );
        BrickStore {
            volume,
            grid,
            ghost,
            budget_bytes,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            stats: StoreStats::default(),
        }
    }

    pub fn grid(&self) -> &BrickGrid {
        &self.grid
    }

    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    pub fn ghost(&self) -> u32 {
        self.ghost
    }

    /// Fetch brick `id`, materializing if absent. The returned `Arc` stays
    /// valid even if the entry is evicted afterwards.
    pub fn get(&self, id: usize) -> Arc<BrickData> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((data, last)) = inner.entries.get_mut(&id) {
                *last = tick;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(data);
            }
        }
        // Materialize outside the lock: concurrent misses may duplicate work
        // but never block each other on voxel synthesis.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(self.materialize(id));
        self.stats
            .bytes_materialized
            .fetch_add(data.bytes(), Ordering::Relaxed);

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = data.bytes();
        let evicted = inner
            .entries
            .insert(id, (Arc::clone(&data), tick))
            .map(|(old, _)| old.bytes());
        inner.bytes += bytes;
        if let Some(old) = evicted {
            inner.bytes -= old; // racing miss: replaced a twin entry
        }
        // Evict least-recently-used entries until within budget (never the
        // entry just inserted).
        while inner.bytes > self.budget_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != id)
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let (old, _) = inner.entries.remove(&k).unwrap();
                    inner.bytes -= old.bytes();
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        data
    }

    /// Drop all cached bricks (keeps statistics).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.bytes = 0;
    }

    pub fn cached_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes_materialized: self.stats.bytes_materialized.load(Ordering::Relaxed),
        }
    }

    fn materialize(&self, id: usize) -> BrickData {
        let info = self.grid.brick(id);
        let g = self.ghost as i64;
        let store_origin = [
            info.origin[0] as i64 - g,
            info.origin[1] as i64 - g,
            info.origin[2] as i64 - g,
        ];
        let store_dims = [
            info.size[0] as usize + 2 * self.ghost as usize,
            info.size[1] as usize + 2 * self.ghost as usize,
            info.size[2] as usize + 2 * self.ghost as usize,
        ];
        let voxels = std::sync::Arc::new(self.volume.materialize_clamped(store_origin, store_dims));
        BrickData {
            info,
            ghost: self.ghost,
            store_origin,
            store_dims,
            voxels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brick::BrickPolicy;
    use crate::field::AxisRamp;
    use std::sync::Arc as StdArc;

    fn store(budget: u64) -> BrickStore {
        let v = Volume::procedural("ramp", [16, 16, 16], 0, StdArc::new(AxisRamp { axis: 0 }));
        let grid = BrickGrid::subdivide(
            [16, 16, 16],
            &BrickPolicy {
                min_bricks: 8,
                max_brick_voxels: u64::MAX,
            },
        );
        BrickStore::new(v, grid, 1, budget)
    }

    #[test]
    fn ghost_layers_match_neighbours() {
        let s = store(u64::MAX);
        // Brick 0 is at origin; its +x ghost layer must equal brick 1's first
        // interior layer of voxels.
        let b0 = s.get(0);
        let b1 = s.get(1);
        assert_eq!(b0.info.origin, [0, 0, 0]);
        assert_eq!(b1.info.origin, [8, 0, 0]);
        let d0 = b0.store_dims;
        // Ghost voxel at store x = size+ghost (global x = 8) in brick 0…
        let x_ghost = b0.info.size[0] as usize + 1; // ghost=1 shifts by one
                                                    // …equals brick 1's first interior voxel (store x = 1, global x = 8).
        for z in 1..d0[2] - 1 {
            for y in 1..d0[1] - 1 {
                let v0 = b0.voxels[(z * d0[1] + y) * d0[0] + x_ghost];
                let v1 = b1.voxels[(z * b1.store_dims[1] + y) * b1.store_dims[0] + 1];
                assert_eq!(v0, v1, "ghost mismatch at y={y} z={z}");
            }
        }
    }

    #[test]
    fn snapshot_since_subtracts_counters() {
        let s = store(u64::MAX);
        s.get(0);
        let before = s.snapshot();
        s.get(0);
        s.get(1);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.since(&delta), StoreSnapshot::default());
    }

    #[test]
    fn hits_and_misses_count() {
        let s = store(u64::MAX);
        s.get(3);
        s.get(3);
        s.get(4);
        let snap = s.snapshot();
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.hits, 1);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Each brick: (8+2)³ voxels × 4 B = 4000 B. Budget of 2.5 bricks.
        let s = store(10_000);
        s.get(0);
        s.get(1);
        s.get(2); // evicts brick 0 (LRU)
        assert!(s.cached_bytes() <= 10_000);
        let before = s.snapshot();
        assert!(before.evictions >= 1);
        // Brick 0 must re-materialize.
        s.get(0);
        assert_eq!(s.snapshot().misses, before.misses + 1);
    }

    #[test]
    fn evicted_arc_stays_valid() {
        let s = store(5_000); // barely one brick
        let b0 = s.get(0);
        let _b1 = s.get(1); // evicts brick 0 from cache
        assert_eq!(b0.info.id, 0);
        assert!(!b0.voxels.is_empty()); // still readable
    }

    #[test]
    fn touching_keeps_entries_warm() {
        let s = store(10_000);
        s.get(0);
        s.get(1);
        s.get(0); // brick 0 now most recent; 1 is the LRU victim
        s.get(2);
        let inner_has = |id: usize| s.inner.lock().entries.contains_key(&id);
        assert!(inner_has(0));
        assert!(inner_has(2));
        assert!(!inner_has(1));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let s = StdArc::new(store(8_000));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = StdArc::clone(&s);
                scope.spawn(move || {
                    for i in 0..32 {
                        let id = (i + t) % s.grid().brick_count();
                        let b = s.get(id);
                        assert_eq!(b.info.id, id);
                    }
                });
            }
        });
        assert!(s.cached_bytes() <= 8_000 || s.inner.lock().entries.len() == 1);
    }
}
