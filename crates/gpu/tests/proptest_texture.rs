//! Property tests for the software texture unit and the kernel executor.

use proptest::prelude::*;

use mgpu_gpu::{launch, Kernel, LaunchConfig, Texture3D, ThreadCtx};

fn arb_texture() -> impl Strategy<Value = Texture3D> {
    (2usize..6, 2usize..6, 2usize..6).prop_flat_map(|(x, y, z)| {
        prop::collection::vec(0f32..1.0, x * y * z)
            .prop_map(move |data| Texture3D::new([x, y, z], data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trilinear_sample_is_a_convex_combination(
        tex in arb_texture(),
        px in -2f32..8.0,
        py in -2f32..8.0,
        pz in -2f32..8.0,
    ) {
        // A trilinear sample can never leave the [min, max] of the texels.
        let d = tex.dims();
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for z in 0..d[2] as i64 {
            for y in 0..d[1] as i64 {
                for x in 0..d[0] as i64 {
                    let v = tex.fetch(x, y, z);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        let s = tex.sample(px, py, pz);
        prop_assert!(s >= lo - 1e-5 && s <= hi + 1e-5, "{s} outside [{lo},{hi}]");
    }

    #[test]
    fn clamp_addressing_matches_edge_texels(
        tex in arb_texture(),
        along in 0usize..3,
        frac in 0f32..1.0,
    ) {
        // Far outside along one axis, the sample must equal a sample taken
        // exactly at the clamped edge plane.
        let d = tex.dims();
        let inside = [
            0.5 + frac * (d[0] as f32 - 1.0),
            0.5 + frac * (d[1] as f32 - 1.0),
            0.5 + frac * (d[2] as f32 - 1.0),
        ];
        let mut far = inside;
        far[along] = 1.0e4;
        let mut edge = inside;
        edge[along] = d[along] as f32 - 0.5;
        let a = tex.sample(far[0], far[1], far[2]);
        let b = tex.sample(edge[0], edge[1], edge[2]);
        prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn launch_output_position_encodes_thread_identity(
        gx in 1u32..5, gy in 1u32..5, bx in 1u32..9, by in 1u32..9,
        workers in 1usize..5,
    ) {
        struct Ident;
        impl Kernel for Ident {
            type Out = (u32, u32, u32, u32);
            fn thread(&self, ctx: &mut ThreadCtx) -> Self::Out {
                (ctx.block.0, ctx.block.1, ctx.thread.0, ctx.thread.1)
            }
        }
        let config = LaunchConfig { grid: (gx, gy), block: (bx, by) };
        let out = launch(&Ident, config, workers);
        prop_assert_eq!(out.outputs.len(), config.total_threads());
        let tpb = config.threads_per_block();
        for (i, &(cbx, cby, ctx_, cty)) in out.outputs.iter().enumerate() {
            let block_id = i / tpb;
            let tid = i % tpb;
            prop_assert_eq!(cbx, (block_id as u32) % gx);
            prop_assert_eq!(cby, (block_id as u32) / gx);
            prop_assert_eq!(ctx_, (tid as u32) % bx);
            prop_assert_eq!(cty, (tid as u32) / bx);
        }
    }

    #[test]
    fn warp_charging_bounds_total_samples(
        tallies in prop::collection::vec(0u64..100, 32..96),
    ) {
        use std::sync::Mutex;
        struct Tally {
            values: Mutex<Vec<u64>>,
        }
        impl Kernel for Tally {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                let mut v = self.values.lock().unwrap();
                let n = v.pop().unwrap_or(0);
                ctx.tally(n);
                0
            }
        }
        let n = tallies.len() as u32;
        let kernel = Tally { values: Mutex::new(tallies.clone()) };
        let out = launch(
            &kernel,
            LaunchConfig { grid: (1, 1), block: (n, 1) },
            1,
        );
        let total: u64 = tallies.iter().sum();
        prop_assert_eq!(out.stats.total_samples, total);
        // SIMT charge is at least the total and at most 32× it.
        prop_assert!(out.stats.simt_samples >= total);
        prop_assert!(out.stats.simt_samples <= total * 32 + 32 * 100);
    }
}
