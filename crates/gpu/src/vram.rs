//! VRAM accounting for the simulated device.
//!
//! The paper's first restriction (§3.1.1) is that "any single map task must
//! be able to fit in the main memory of the GPU" — this allocator is what
//! enforces it in the reproduction. It tracks bytes, not addresses: placement
//! does not affect timing, but capacity does.

use std::collections::HashMap;

/// Opaque handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Error returned when an allocation exceeds free VRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    pub requested: u64,
    pub free: u64,
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} free of {}",
            self.requested, self.free, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Byte-accurate VRAM allocator.
#[derive(Debug)]
pub struct VramAllocator {
    capacity: u64,
    used: u64,
    peak: u64,
    next_id: u64,
    live: HashMap<AllocId, u64>,
}

impl VramAllocator {
    pub fn new(capacity: u64) -> VramAllocator {
        VramAllocator {
            capacity,
            used: 0,
            peak: 0,
            next_id: 0,
            live: HashMap::new(),
        }
    }

    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId, OutOfMemory> {
        if bytes > self.capacity - self.used {
            return Err(OutOfMemory {
                requested: bytes,
                free: self.capacity - self.used,
                capacity: self.capacity,
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, bytes);
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(id)
    }

    /// Free an allocation; panics on double-free (a real bug in the caller).
    pub fn free(&mut self, id: AllocId) {
        let bytes = self
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("double free of {id:?}"));
        self.used -= bytes;
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// High-water mark across the allocator's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut v = VramAllocator::new(1000);
        let a = v.alloc(400).unwrap();
        let b = v.alloc(600).unwrap();
        assert_eq!(v.used(), 1000);
        assert_eq!(v.free_bytes(), 0);
        v.free(a);
        assert_eq!(v.used(), 600);
        v.free(b);
        assert_eq!(v.used(), 0);
        assert_eq!(v.peak(), 1000);
    }

    #[test]
    fn oom_reports_sizes() {
        let mut v = VramAllocator::new(100);
        v.alloc(80).unwrap();
        let err = v.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.free, 20);
        assert_eq!(err.capacity, 100);
    }

    #[test]
    fn failed_alloc_changes_nothing() {
        let mut v = VramAllocator::new(100);
        let _ = v.alloc(80).unwrap();
        let _ = v.alloc(30);
        assert_eq!(v.used(), 80);
        assert_eq!(v.live_allocations(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut v = VramAllocator::new(100);
        let a = v.alloc(10).unwrap();
        v.free(a);
        v.free(a);
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut v = VramAllocator::new(10);
        let a = v.alloc(0).unwrap();
        v.free(a);
        assert_eq!(v.used(), 0);
    }
}
