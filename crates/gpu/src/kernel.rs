//! CUDA-style kernel execution: a 2-D grid of 2-D blocks, real per-thread
//! computation on host threads, and SIMT warp statistics for the cost model.
//!
//! The paper launches its ray caster as "a 2D grid of 2D blocks; each block
//! is 16×16, and the grid is made to match the size of the sub-image onto
//! which the current chunk projects". The executor reproduces those index
//! semantics exactly and additionally tallies per-thread sample counts so
//! the device cost model can charge either flat throughput or
//! divergence-aware (warp-max) time.

/// Threads per warp (NVIDIA Tesla-era SIMT width).
pub const WARP_SIZE: usize = 32;

/// A 2-D launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: (u32, u32),
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// The paper's configuration: 16×16 blocks covering (with padding) a
    /// `width × height` sub-image.
    pub fn cover(width: u32, height: u32) -> LaunchConfig {
        LaunchConfig {
            grid: (width.div_ceil(16).max(1), height.div_ceil(16).max(1)),
            block: (16, 16),
        }
    }

    pub fn threads_per_block(&self) -> usize {
        (self.block.0 * self.block.1) as usize
    }

    pub fn blocks(&self) -> usize {
        (self.grid.0 * self.grid.1) as usize
    }

    pub fn total_threads(&self) -> usize {
        self.blocks() * self.threads_per_block()
    }
}

/// Per-thread execution context handed to the kernel body.
#[derive(Debug)]
pub struct ThreadCtx {
    pub block: (u32, u32),
    pub thread: (u32, u32),
    /// Global coordinates: `block * blockDim + thread`.
    pub global: (u32, u32),
    samples: u64,
}

impl ThreadCtx {
    /// Record `n` texture samples / work units for the cost model.
    #[inline]
    pub fn tally(&mut self, n: u64) {
        self.samples += n;
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// A device kernel. `Out` is the homogeneous per-thread emission — the
/// paper's restriction that "emitted values are homogeneous in size" and
/// "every GPU thread must emit a key-value pair" is encoded right here in
/// the signature: every thread returns exactly one `Out`.
pub trait Kernel: Sync {
    type Out: Send;

    fn thread(&self, ctx: &mut ThreadCtx) -> Self::Out;
}

/// Execution statistics used by the kernel cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaunchStats {
    pub threads: u64,
    pub blocks: u64,
    pub warps: u64,
    /// Total per-thread tallied samples.
    pub total_samples: u64,
    /// SIMT-charged samples: `Σ_warps WARP_SIZE · max(lane samples)` — what a
    /// lockstep machine pays under divergence.
    pub simt_samples: u64,
}

impl LaunchStats {
    /// ≥ 1; how much lockstep execution inflates the sample count.
    pub fn divergence_factor(&self) -> f64 {
        if self.total_samples == 0 {
            return 1.0;
        }
        self.simt_samples as f64 / self.total_samples as f64
    }

    pub fn merge(&mut self, other: &LaunchStats) {
        self.threads += other.threads;
        self.blocks += other.blocks;
        self.warps += other.warps;
        self.total_samples += other.total_samples;
        self.simt_samples += other.simt_samples;
    }
}

/// Result of a launch: outputs in block-major order (block id, then thread
/// row-major within the block) plus statistics.
#[derive(Debug)]
pub struct LaunchOutput<Out> {
    pub outputs: Vec<Out>,
    pub stats: LaunchStats,
}

/// Execute `kernel` over `config`, using up to `parallelism` host threads
/// (block-level parallelism, matching how blocks map to SMs).
pub fn launch<K: Kernel>(
    kernel: &K,
    config: LaunchConfig,
    parallelism: usize,
) -> LaunchOutput<K::Out>
where
    K::Out: Default + Clone,
{
    let tpb = config.threads_per_block();
    let blocks = config.blocks();
    let mut outputs: Vec<K::Out> = vec![K::Out::default(); blocks * tpb];

    let run_block = |block_id: usize, out_slice: &mut [K::Out]| -> LaunchStats {
        let bx = (block_id as u32) % config.grid.0;
        let by = (block_id as u32) / config.grid.0;
        let mut warp_max = 0u64;
        let mut lane = 0usize;
        let mut stats = LaunchStats {
            threads: tpb as u64,
            blocks: 1,
            ..LaunchStats::default()
        };
        for ty in 0..config.block.1 {
            for tx in 0..config.block.0 {
                let mut ctx = ThreadCtx {
                    block: (bx, by),
                    thread: (tx, ty),
                    global: (bx * config.block.0 + tx, by * config.block.1 + ty),
                    samples: 0,
                };
                let out = kernel.thread(&mut ctx);
                out_slice[(ty * config.block.0 + tx) as usize] = out;
                stats.total_samples += ctx.samples;
                warp_max = warp_max.max(ctx.samples);
                lane += 1;
                if lane == WARP_SIZE {
                    stats.warps += 1;
                    stats.simt_samples += warp_max * WARP_SIZE as u64;
                    warp_max = 0;
                    lane = 0;
                }
            }
        }
        if lane > 0 {
            // Partial trailing warp still occupies all lanes in SIMT.
            stats.warps += 1;
            stats.simt_samples += warp_max * WARP_SIZE as u64;
        }
        stats
    };

    let workers = parallelism.max(1).min(blocks.max(1));
    if workers <= 1 || blocks <= 1 {
        let mut stats = LaunchStats::default();
        for (block_id, chunk) in outputs.chunks_mut(tpb).enumerate() {
            stats.merge(&run_block(block_id, chunk));
        }
        return LaunchOutput { outputs, stats };
    }

    let blocks_per_worker = blocks.div_ceil(workers);
    let mut worker_stats: Vec<LaunchStats> = vec![LaunchStats::default(); workers];
    std::thread::scope(|scope| {
        for ((wi, chunk), wstats) in outputs
            .chunks_mut(blocks_per_worker * tpb)
            .enumerate()
            .zip(worker_stats.iter_mut())
        {
            let run_block = &run_block;
            scope.spawn(move || {
                let first_block = wi * blocks_per_worker;
                for (i, block_out) in chunk.chunks_mut(tpb).enumerate() {
                    wstats.merge(&run_block(first_block + i, block_out));
                }
            });
        }
    });

    let mut stats = LaunchStats::default();
    for w in &worker_stats {
        stats.merge(w);
    }
    LaunchOutput { outputs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits its own global coordinates and tallies `global.0` samples.
    struct ProbeKernel;

    impl Kernel for ProbeKernel {
        type Out = (u32, u32);

        fn thread(&self, ctx: &mut ThreadCtx) -> (u32, u32) {
            ctx.tally(ctx.global.0 as u64);
            ctx.global
        }
    }

    #[test]
    fn cover_pads_to_block_multiples() {
        let c = LaunchConfig::cover(100, 33);
        assert_eq!(c.grid, (7, 3));
        assert_eq!(c.total_threads(), 7 * 3 * 256);
        // Degenerate sub-image still launches one block.
        assert_eq!(LaunchConfig::cover(0, 0).grid, (1, 1));
    }

    #[test]
    fn outputs_are_block_major_and_complete() {
        let c = LaunchConfig {
            grid: (2, 2),
            block: (4, 2),
        };
        let out = launch(&ProbeKernel, c, 1);
        assert_eq!(out.outputs.len(), 32);
        // Block 0 thread (0,0) is global (0,0).
        assert_eq!(out.outputs[0], (0, 0));
        // Block 1 is grid-x=1: its thread (0,0) is global (4,0).
        assert_eq!(out.outputs[8], (4, 0));
        // Block 2 is grid-y=1: its thread (1,1) is global (1,3).
        assert_eq!(out.outputs[16 + 5], (1, 3));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let c = LaunchConfig::cover(64, 64);
        let a = launch(&ProbeKernel, c, 1);
        let b = launch(&ProbeKernel, c, 4);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn stats_count_threads_and_samples() {
        let c = LaunchConfig {
            grid: (1, 1),
            block: (16, 16),
        };
        let out = launch(&ProbeKernel, c, 1);
        assert_eq!(out.stats.threads, 256);
        assert_eq!(out.stats.blocks, 1);
        assert_eq!(out.stats.warps, 8);
        // Σ global.0 over the block: each row sums 0..15 = 120; 16 rows.
        assert_eq!(out.stats.total_samples, 120 * 16);
    }

    #[test]
    fn divergence_inflates_simt_samples() {
        // One thread per warp does 100 samples, the rest do none.
        struct Spike;
        impl Kernel for Spike {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                if ctx.global.0.is_multiple_of(32) {
                    ctx.tally(100);
                }
                0
            }
        }
        let c = LaunchConfig {
            grid: (2, 1),
            block: (32, 1),
        };
        let out = launch(&Spike, c, 1);
        assert_eq!(out.stats.total_samples, 200);
        assert_eq!(out.stats.simt_samples, 2 * 100 * 32);
        assert!((out.stats.divergence_factor() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_work_has_no_divergence_penalty() {
        struct Uniform;
        impl Kernel for Uniform {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                ctx.tally(7);
                0
            }
        }
        let out = launch(
            &Uniform,
            LaunchConfig {
                grid: (4, 4),
                block: (8, 4),
            },
            2,
        );
        assert_eq!(out.stats.divergence_factor(), 1.0);
    }

    #[test]
    fn partial_warp_charged_fully() {
        struct One;
        impl Kernel for One {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                ctx.tally(1);
                0
            }
        }
        // 8-thread block = one partial warp, still charged 32 lanes.
        let out = launch(
            &One,
            LaunchConfig {
                grid: (1, 1),
                block: (8, 1),
            },
            1,
        );
        assert_eq!(out.stats.total_samples, 8);
        assert_eq!(out.stats.simt_samples, 32);
    }
}
