//! CUDA-style kernel execution: a 2-D grid of 2-D blocks, real per-thread
//! computation on host threads, and SIMT warp statistics for the cost model.
//!
//! The paper launches its ray caster as "a 2D grid of 2D blocks; each block
//! is 16×16, and the grid is made to match the size of the sub-image onto
//! which the current chunk projects". The executor reproduces those index
//! semantics exactly and additionally tallies per-thread sample counts so
//! the device cost model can charge either flat throughput or
//! divergence-aware (warp-max) time.
//!
//! Two execution models share one launch machinery:
//!
//! - **Scalar** ([`Kernel`] + [`launch`]): one virtual call per thread,
//!   returning one `Out` per thread. Simple to write, pays per-thread
//!   dispatch and tuple materialization on the hot path.
//! - **Batched** ([`BlockKernel`] + [`launch_blocks`]): one call per *block*,
//!   writing keys, values and per-thread sample tallies into caller-provided
//!   structure-of-arrays slices ([`BlockOut`]). This lets a kernel hoist
//!   per-block/per-row invariants out of the pixel loop and is the fast path
//!   for the ray caster. Any scalar kernel emitting `(K, V)` runs unchanged
//!   under the batched API via the [`Scalar`] compat adapter, with
//!   bit-identical outputs and statistics.
//!
//! Both paths charge SIMT warp statistics through the same internal
//! accumulator (`WarpAccum`), so the cost model cannot tell them apart.

/// Threads per warp (NVIDIA Tesla-era SIMT width).
pub const WARP_SIZE: usize = 32;

/// A 2-D launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: (u32, u32),
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// The paper's configuration: 16×16 blocks covering (with padding) a
    /// `width × height` sub-image.
    pub fn cover(width: u32, height: u32) -> LaunchConfig {
        LaunchConfig {
            grid: (width.div_ceil(16).max(1), height.div_ceil(16).max(1)),
            block: (16, 16),
        }
    }

    pub fn threads_per_block(&self) -> usize {
        (self.block.0 * self.block.1) as usize
    }

    pub fn blocks(&self) -> usize {
        (self.grid.0 * self.grid.1) as usize
    }

    pub fn total_threads(&self) -> usize {
        self.blocks() * self.threads_per_block()
    }
}

/// Per-thread execution context handed to the kernel body.
#[derive(Debug)]
pub struct ThreadCtx {
    pub block: (u32, u32),
    pub thread: (u32, u32),
    /// Global coordinates: `block * blockDim + thread`.
    pub global: (u32, u32),
    samples: u64,
}

impl ThreadCtx {
    /// Record `n` texture samples / work units for the cost model.
    #[inline]
    pub fn tally(&mut self, n: u64) {
        self.samples += n;
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// A device kernel. `Out` is the homogeneous per-thread emission — the
/// paper's restriction that "emitted values are homogeneous in size" and
/// "every GPU thread must emit a key-value pair" is encoded right here in
/// the signature: every thread returns exactly one `Out`.
pub trait Kernel: Sync {
    type Out: Send;

    fn thread(&self, ctx: &mut ThreadCtx) -> Self::Out;
}

/// Execution statistics used by the kernel cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaunchStats {
    pub threads: u64,
    pub blocks: u64,
    pub warps: u64,
    /// Total per-thread tallied samples.
    pub total_samples: u64,
    /// SIMT-charged samples: `Σ_warps WARP_SIZE · max(lane samples)` — what a
    /// lockstep machine pays under divergence.
    pub simt_samples: u64,
}

impl LaunchStats {
    /// ≥ 1; how much lockstep execution inflates the sample count.
    pub fn divergence_factor(&self) -> f64 {
        if self.total_samples == 0 {
            return 1.0;
        }
        self.simt_samples as f64 / self.total_samples as f64
    }

    pub fn merge(&mut self, other: &LaunchStats) {
        self.threads += other.threads;
        self.blocks += other.blocks;
        self.warps += other.warps;
        self.total_samples += other.total_samples;
        self.simt_samples += other.simt_samples;
    }
}

/// Incremental SIMT warp accounting, shared by the scalar and batched launch
/// paths so both charge divergence identically: lanes fill 32-wide warps in
/// thread order, each warp costs `WARP_SIZE · max(lane samples)`, and a
/// partial trailing warp still occupies all lanes.
#[derive(Default)]
struct WarpAccum {
    warp_max: u64,
    lane: usize,
    warps: u64,
    simt_samples: u64,
}

impl WarpAccum {
    #[inline]
    fn lane(&mut self, samples: u64) {
        self.warp_max = self.warp_max.max(samples);
        self.lane += 1;
        if self.lane == WARP_SIZE {
            self.warps += 1;
            self.simt_samples += self.warp_max * WARP_SIZE as u64;
            self.warp_max = 0;
            self.lane = 0;
        }
    }

    fn finish(mut self, stats: &mut LaunchStats) {
        if self.lane > 0 {
            self.warps += 1;
            self.simt_samples += self.warp_max * WARP_SIZE as u64;
        }
        stats.warps += self.warps;
        stats.simt_samples += self.simt_samples;
    }
}

/// Result of a launch: outputs in block-major order (block id, then thread
/// row-major within the block) plus statistics.
#[derive(Debug)]
pub struct LaunchOutput<Out> {
    pub outputs: Vec<Out>,
    pub stats: LaunchStats,
}

/// Execute `kernel` over `config`, using up to `parallelism` host threads
/// (block-level parallelism, matching how blocks map to SMs).
pub fn launch<K: Kernel>(
    kernel: &K,
    config: LaunchConfig,
    parallelism: usize,
) -> LaunchOutput<K::Out>
where
    K::Out: Default + Clone,
{
    let tpb = config.threads_per_block();
    let blocks = config.blocks();
    let mut outputs: Vec<K::Out> = vec![K::Out::default(); blocks * tpb];

    let run_block = |block_id: usize, out_slice: &mut [K::Out]| -> LaunchStats {
        let bx = (block_id as u32) % config.grid.0;
        let by = (block_id as u32) / config.grid.0;
        let mut acc = WarpAccum::default();
        let mut stats = LaunchStats {
            threads: tpb as u64,
            blocks: 1,
            ..LaunchStats::default()
        };
        for ty in 0..config.block.1 {
            for tx in 0..config.block.0 {
                let mut ctx = ThreadCtx {
                    block: (bx, by),
                    thread: (tx, ty),
                    global: (bx * config.block.0 + tx, by * config.block.1 + ty),
                    samples: 0,
                };
                let out = kernel.thread(&mut ctx);
                out_slice[(ty * config.block.0 + tx) as usize] = out;
                stats.total_samples += ctx.samples;
                acc.lane(ctx.samples);
            }
        }
        acc.finish(&mut stats);
        stats
    };

    let workers = parallelism.max(1).min(blocks.max(1));
    if workers <= 1 || blocks <= 1 {
        let mut stats = LaunchStats::default();
        for (block_id, chunk) in outputs.chunks_mut(tpb).enumerate() {
            stats.merge(&run_block(block_id, chunk));
        }
        return LaunchOutput { outputs, stats };
    }

    let blocks_per_worker = blocks.div_ceil(workers);
    let mut worker_stats: Vec<LaunchStats> = vec![LaunchStats::default(); workers];
    std::thread::scope(|scope| {
        for ((wi, chunk), wstats) in outputs
            .chunks_mut(blocks_per_worker * tpb)
            .enumerate()
            .zip(worker_stats.iter_mut())
        {
            let run_block = &run_block;
            scope.spawn(move || {
                let first_block = wi * blocks_per_worker;
                for (i, block_out) in chunk.chunks_mut(tpb).enumerate() {
                    wstats.merge(&run_block(first_block + i, block_out));
                }
            });
        }
    });

    let mut stats = LaunchStats::default();
    for w in &worker_stats {
        stats.merge(w);
    }
    LaunchOutput { outputs, stats }
}

/// Per-block context for a [`BlockKernel`]: which block is running and the
/// block dimensions, from which the kernel derives thread coordinates.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx {
    /// Block coordinates within the grid.
    pub block: (u32, u32),
    /// Block dimensions (`blockDim`).
    pub dim: (u32, u32),
}

impl BlockCtx {
    /// Global coordinates of thread `(tx, ty)` in this block:
    /// `block * blockDim + thread`.
    #[inline]
    pub fn global(&self, tx: u32, ty: u32) -> (u32, u32) {
        (
            self.block.0 * self.dim.0 + tx,
            self.block.1 * self.dim.1 + ty,
        )
    }

    /// Flat output index of thread `(tx, ty)` (row-major within the block).
    #[inline]
    pub fn index(&self, tx: u32, ty: u32) -> usize {
        (ty * self.dim.0 + tx) as usize
    }
}

/// Caller-provided structure-of-arrays output for one block: one key, one
/// value and one sample tally per thread, row-major within the block. Every
/// slice is exactly `threads_per_block` long and pre-initialized to
/// `Default`/zero, so a kernel only has to write the lanes it has something
/// to say about.
pub struct BlockOut<'a, K, V> {
    pub keys: &'a mut [K],
    pub values: &'a mut [V],
    /// Per-thread work tallies — the batched equivalent of
    /// [`ThreadCtx::tally`]; these feed the same SIMT warp accounting.
    pub samples: &'a mut [u64],
}

/// A batched device kernel: one call per block, writing into
/// structure-of-arrays output slices instead of returning per-thread tuples.
///
/// This is the fast path — a kernel can hoist per-block and per-row
/// invariants out of the inner loop and keep reusable scratch across the
/// block. The homogeneous-emission restriction still holds: every thread
/// owns exactly one `(key, value, samples)` lane in [`BlockOut`].
///
/// Scalar [`Kernel`]s emitting `(K, V)` run unchanged under this API via the
/// [`Scalar`] adapter.
pub trait BlockKernel: Sync {
    type Key: Send + Copy + Default;
    type Value: Send + Copy + Default;

    fn run_block(&self, ctx: &BlockCtx, out: BlockOut<'_, Self::Key, Self::Value>);
}

/// Result of [`launch_blocks`]: structure-of-arrays outputs in block-major
/// order (block id, then thread row-major within the block) plus statistics.
/// `keys[i]`, `values[i]` and `samples[i]` describe the same thread.
#[derive(Debug)]
pub struct BlockOutput<K, V> {
    pub keys: Vec<K>,
    pub values: Vec<V>,
    /// Per-thread sample tallies, same order as `keys`/`values`.
    pub samples: Vec<u64>,
    pub stats: LaunchStats,
}

/// Execute a [`BlockKernel`] over `config`, using up to `parallelism` host
/// threads (block-level parallelism, matching how blocks map to SMs).
///
/// Identical chunking, output order and SIMT accounting as [`launch`]: for
/// any scalar kernel `k`, `launch_blocks(&Scalar(k), ..)` produces the same
/// outputs and the same [`LaunchStats`] as `launch(&k, ..)`.
pub fn launch_blocks<B: BlockKernel>(
    kernel: &B,
    config: LaunchConfig,
    parallelism: usize,
) -> BlockOutput<B::Key, B::Value> {
    let tpb = config.threads_per_block();
    let blocks = config.blocks();
    let total = blocks * tpb;
    let mut keys = vec![B::Key::default(); total];
    let mut values = vec![B::Value::default(); total];
    let mut samples = vec![0u64; total];

    let run_block = |block_id: usize,
                     keys: &mut [B::Key],
                     values: &mut [B::Value],
                     samples: &mut [u64]|
     -> LaunchStats {
        let ctx = BlockCtx {
            block: (
                (block_id as u32) % config.grid.0,
                (block_id as u32) / config.grid.0,
            ),
            dim: config.block,
        };
        kernel.run_block(
            &ctx,
            BlockOut {
                keys,
                values,
                samples,
            },
        );
        let mut stats = LaunchStats {
            threads: tpb as u64,
            blocks: 1,
            ..LaunchStats::default()
        };
        let mut acc = WarpAccum::default();
        for &s in samples.iter() {
            stats.total_samples += s;
            acc.lane(s);
        }
        acc.finish(&mut stats);
        stats
    };

    let workers = parallelism.max(1).min(blocks.max(1));
    if workers <= 1 || blocks <= 1 {
        let mut stats = LaunchStats::default();
        for block_id in 0..blocks {
            let lo = block_id * tpb;
            stats.merge(&run_block(
                block_id,
                &mut keys[lo..lo + tpb],
                &mut values[lo..lo + tpb],
                &mut samples[lo..lo + tpb],
            ));
        }
        return BlockOutput {
            keys,
            values,
            samples,
            stats,
        };
    }

    let blocks_per_worker = blocks.div_ceil(workers);
    let per_worker = blocks_per_worker * tpb;
    let mut worker_stats: Vec<LaunchStats> = vec![LaunchStats::default(); workers];
    std::thread::scope(|scope| {
        for ((((wi, kc), vc), sc), wstats) in keys
            .chunks_mut(per_worker)
            .enumerate()
            .zip(values.chunks_mut(per_worker))
            .zip(samples.chunks_mut(per_worker))
            .zip(worker_stats.iter_mut())
        {
            let run_block = &run_block;
            scope.spawn(move || {
                let first_block = wi * blocks_per_worker;
                for (i, ((kb, vb), sb)) in kc
                    .chunks_mut(tpb)
                    .zip(vc.chunks_mut(tpb))
                    .zip(sc.chunks_mut(tpb))
                    .enumerate()
                {
                    wstats.merge(&run_block(first_block + i, kb, vb, sb));
                }
            });
        }
    });

    let mut stats = LaunchStats::default();
    for w in &worker_stats {
        stats.merge(w);
    }
    BlockOutput {
        keys,
        values,
        samples,
        stats,
    }
}

/// Compatibility adapter: runs a scalar [`Kernel`] emitting `(K, V)` pairs
/// under the batched [`BlockKernel`] API, thread by thread.
///
/// `launch_blocks(&Scalar(k), config, p)` is bit-identical (outputs and
/// statistics) to `launch(&k, config, p)` — this is the migration path for
/// kernels that have not been rewritten for block execution.
pub struct Scalar<T>(pub T);

impl<T, K, V> BlockKernel for Scalar<T>
where
    T: Kernel<Out = (K, V)>,
    K: Send + Copy + Default,
    V: Send + Copy + Default,
{
    type Key = K;
    type Value = V;

    fn run_block(&self, ctx: &BlockCtx, out: BlockOut<'_, K, V>) {
        for ty in 0..ctx.dim.1 {
            for tx in 0..ctx.dim.0 {
                let mut tctx = ThreadCtx {
                    block: ctx.block,
                    thread: (tx, ty),
                    global: ctx.global(tx, ty),
                    samples: 0,
                };
                let (k, v) = self.0.thread(&mut tctx);
                let i = ctx.index(tx, ty);
                out.keys[i] = k;
                out.values[i] = v;
                out.samples[i] = tctx.samples;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits its own global coordinates and tallies `global.0` samples.
    struct ProbeKernel;

    impl Kernel for ProbeKernel {
        type Out = (u32, u32);

        fn thread(&self, ctx: &mut ThreadCtx) -> (u32, u32) {
            ctx.tally(ctx.global.0 as u64);
            ctx.global
        }
    }

    #[test]
    fn cover_pads_to_block_multiples() {
        let c = LaunchConfig::cover(100, 33);
        assert_eq!(c.grid, (7, 3));
        assert_eq!(c.total_threads(), 7 * 3 * 256);
        // Degenerate sub-image still launches one block.
        assert_eq!(LaunchConfig::cover(0, 0).grid, (1, 1));
    }

    #[test]
    fn outputs_are_block_major_and_complete() {
        let c = LaunchConfig {
            grid: (2, 2),
            block: (4, 2),
        };
        let out = launch(&ProbeKernel, c, 1);
        assert_eq!(out.outputs.len(), 32);
        // Block 0 thread (0,0) is global (0,0).
        assert_eq!(out.outputs[0], (0, 0));
        // Block 1 is grid-x=1: its thread (0,0) is global (4,0).
        assert_eq!(out.outputs[8], (4, 0));
        // Block 2 is grid-y=1: its thread (1,1) is global (1,3).
        assert_eq!(out.outputs[16 + 5], (1, 3));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let c = LaunchConfig::cover(64, 64);
        let a = launch(&ProbeKernel, c, 1);
        let b = launch(&ProbeKernel, c, 4);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn stats_count_threads_and_samples() {
        let c = LaunchConfig {
            grid: (1, 1),
            block: (16, 16),
        };
        let out = launch(&ProbeKernel, c, 1);
        assert_eq!(out.stats.threads, 256);
        assert_eq!(out.stats.blocks, 1);
        assert_eq!(out.stats.warps, 8);
        // Σ global.0 over the block: each row sums 0..15 = 120; 16 rows.
        assert_eq!(out.stats.total_samples, 120 * 16);
    }

    #[test]
    fn divergence_inflates_simt_samples() {
        // One thread per warp does 100 samples, the rest do none.
        struct Spike;
        impl Kernel for Spike {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                if ctx.global.0.is_multiple_of(32) {
                    ctx.tally(100);
                }
                0
            }
        }
        let c = LaunchConfig {
            grid: (2, 1),
            block: (32, 1),
        };
        let out = launch(&Spike, c, 1);
        assert_eq!(out.stats.total_samples, 200);
        assert_eq!(out.stats.simt_samples, 2 * 100 * 32);
        assert!((out.stats.divergence_factor() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_work_has_no_divergence_penalty() {
        struct Uniform;
        impl Kernel for Uniform {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                ctx.tally(7);
                0
            }
        }
        let out = launch(
            &Uniform,
            LaunchConfig {
                grid: (4, 4),
                block: (8, 4),
            },
            2,
        );
        assert_eq!(out.stats.divergence_factor(), 1.0);
    }

    #[test]
    fn partial_warp_charged_fully() {
        struct One;
        impl Kernel for One {
            type Out = u8;
            fn thread(&self, ctx: &mut ThreadCtx) -> u8 {
                ctx.tally(1);
                0
            }
        }
        // 8-thread block = one partial warp, still charged 32 lanes.
        let out = launch(
            &One,
            LaunchConfig {
                grid: (1, 1),
                block: (8, 1),
            },
            1,
        );
        assert_eq!(out.stats.total_samples, 8);
        assert_eq!(out.stats.simt_samples, 32);
    }

    /// A scalar-only kernel (no BlockKernel impl anywhere) must keep working
    /// through `launch` AND run bit-identically under `launch_blocks` via the
    /// `Scalar` compat adapter.
    #[test]
    fn scalar_only_kernel_launches_via_compat_adapter() {
        struct Legacy;
        impl Kernel for Legacy {
            type Out = (u32, u64);
            fn thread(&self, ctx: &mut ThreadCtx) -> (u32, u64) {
                // Uneven tallies so warp accounting is exercised.
                ctx.tally((ctx.global.0 as u64 * 7 + ctx.global.1 as u64) % 13);
                (
                    ctx.global.1 * 1000 + ctx.global.0,
                    (ctx.block.0 + ctx.block.1) as u64,
                )
            }
        }
        let c = LaunchConfig::cover(40, 17);
        let scalar = launch(&Legacy, c, 1);
        let batched = launch_blocks(&Scalar(Legacy), c, 1);
        assert_eq!(batched.keys.len(), scalar.outputs.len());
        for (i, (k, v)) in scalar.outputs.iter().enumerate() {
            assert_eq!(batched.keys[i], *k);
            assert_eq!(batched.values[i], *v);
        }
        assert_eq!(batched.stats, scalar.stats);
    }

    #[test]
    fn launch_blocks_serial_and_parallel_agree() {
        let c = LaunchConfig::cover(64, 48);
        let a = launch_blocks(&Scalar(ProbeKernel), c, 1);
        let b = launch_blocks(&Scalar(ProbeKernel), c, 4);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.values, b.values);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn direct_block_kernel_matches_scalar_equivalent() {
        /// Block-wise rewrite of `ProbeKernel`: same emissions, written SoA.
        struct BlockProbe;
        impl BlockKernel for BlockProbe {
            type Key = u32;
            type Value = u32;
            fn run_block(&self, ctx: &BlockCtx, out: BlockOut<'_, u32, u32>) {
                for ty in 0..ctx.dim.1 {
                    for tx in 0..ctx.dim.0 {
                        let g = ctx.global(tx, ty);
                        let i = ctx.index(tx, ty);
                        out.keys[i] = g.0;
                        out.values[i] = g.1;
                        out.samples[i] = g.0 as u64;
                    }
                }
            }
        }
        let c = LaunchConfig::cover(100, 33);
        let reference = launch(&ProbeKernel, c, 1);
        for parallelism in [1, 3] {
            let got = launch_blocks(&BlockProbe, c, parallelism);
            for (i, (k, v)) in reference.outputs.iter().enumerate() {
                assert_eq!((got.keys[i], got.values[i]), (*k, *v));
            }
            assert_eq!(got.stats, reference.stats);
        }
    }

    #[test]
    fn batched_divergence_accounting_matches_scalar() {
        // Spike pattern through the compat adapter: SIMT charging must be
        // identical to the scalar path (warp max over 32 thread-order lanes,
        // partial trailing warp charged fully).
        struct Spiky;
        impl Kernel for Spiky {
            type Out = (u32, u8);
            fn thread(&self, ctx: &mut ThreadCtx) -> (u32, u8) {
                if ctx.global.0.is_multiple_of(32) {
                    ctx.tally(100);
                }
                (ctx.global.0, 0)
            }
        }
        let c = LaunchConfig {
            grid: (2, 1),
            block: (40, 1), // 40 threads: one full warp + one partial
        };
        let scalar = launch(&Spiky, c, 1);
        let batched = launch_blocks(&Scalar(Spiky), c, 1);
        assert_eq!(batched.stats, scalar.stats);
        assert_eq!(batched.stats.warps, 4);
    }
}
