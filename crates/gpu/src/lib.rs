//! # mgpu-gpu — the software GPU
//!
//! A CUDA-class device model for the reproduction: real computation, modeled
//! time. Kernels written against [`kernel::Kernel`] execute for real on host
//! threads with CUDA grid/block/thread index semantics; [`texture::Texture3D`]
//! reproduces `tex3D` trilinear filtering with clamp addressing;
//! [`vram::VramAllocator`] enforces the paper's "map task must fit in GPU
//! memory" restriction; and [`device::KernelCostModel`] converts launch
//! statistics (including SIMT warp divergence) into simulated time on a
//! Tesla C1060-class part.

pub mod device;
pub mod kernel;
pub mod texture;
pub mod vram;

pub use device::{Device, DeviceProps, KernelCostModel, KernelTimingMode};
pub use kernel::{launch, Kernel, LaunchConfig, LaunchOutput, LaunchStats, ThreadCtx, WARP_SIZE};
pub use texture::{Texture1D, Texture3D};
pub use vram::{AllocId, OutOfMemory, VramAllocator};
