//! # mgpu-gpu — the software GPU
//!
//! A CUDA-class device model for the reproduction: real computation, modeled
//! time. Kernels execute for real on host threads with CUDA grid/block/thread
//! index semantics, in one of two execution models: scalar per-thread
//! dispatch ([`kernel::Kernel`] + [`kernel::launch`]) or batched per-block
//! execution into structure-of-arrays buffers ([`kernel::BlockKernel`] +
//! [`kernel::launch_blocks`], the hot path — scalar kernels ride along via
//! the [`kernel::Scalar`] adapter). [`texture::Texture3D`] reproduces `tex3D`
//! trilinear filtering with clamp addressing (with [`texture::Sampler3D`] as
//! the resolved inner-loop view); [`vram::VramAllocator`] enforces the
//! paper's "map task must fit in GPU memory" restriction; and
//! [`device::KernelCostModel`] converts launch statistics (including SIMT
//! warp divergence) into simulated time on a Tesla C1060-class part.

pub mod device;
pub mod kernel;
pub mod texture;
pub mod vram;

pub use device::{Device, DeviceProps, KernelCostModel, KernelTimingMode};
pub use kernel::{
    launch, launch_blocks, BlockCtx, BlockKernel, BlockOut, BlockOutput, Kernel, LaunchConfig,
    LaunchOutput, LaunchStats, Scalar, ThreadCtx, WARP_SIZE,
};
pub use texture::{Sampler1D, Sampler3D, Texture1D, Texture3D};
pub use vram::{AllocId, OutOfMemory, VramAllocator};
