//! Device properties and timing models for the simulated GPU.
//!
//! The preset is a Tesla C1060-class part — the paper's cluster uses Tesla
//! S1070 units ("a Tesla C1090 with four logical GPUs each" in the text),
//! which present four C1060-class devices: 4 GiB GDDR3 at ~102 GB/s behind a
//! PCIe gen-2 link, CUDA 3.0 era.

use mgpu_sim::{LinkModel, SimDuration};
use parking_lot::Mutex;

use crate::kernel::LaunchStats;
use crate::vram::{AllocId, OutOfMemory, VramAllocator};

/// How kernel time is charged from launch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTimingMode {
    /// `overhead + total_samples / rate` — texture-throughput bound, the
    /// default calibration target.
    FlatThroughput,
    /// `overhead + simt_samples / rate` — charges warp-divergence, for the
    /// ablation of the divergence-aware model.
    WarpAccurate,
}

/// Kernel cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostModel {
    pub launch_overhead_s: f64,
    /// Sustained trilinear-sample throughput (samples per second).
    pub samples_per_s: f64,
    pub mode: KernelTimingMode,
}

impl KernelCostModel {
    pub fn time(&self, stats: &LaunchStats) -> SimDuration {
        let samples = match self.mode {
            KernelTimingMode::FlatThroughput => stats.total_samples,
            KernelTimingMode::WarpAccurate => stats.simt_samples,
        };
        SimDuration::from_secs_f64(self.launch_overhead_s + samples as f64 / self.samples_per_s)
    }
}

/// Static properties of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    pub name: &'static str,
    pub vram_bytes: u64,
    /// Device memory bandwidth (reporting / speed-of-light analyses).
    pub mem_bytes_per_s: f64,
    /// The PCIe link between host and device.
    pub pcie: LinkModel,
    pub kernel: KernelCostModel,
}

impl DeviceProps {
    /// Tesla C1060-class preset.
    ///
    /// Calibration anchors (see DESIGN.md):
    /// * PCIe: 1 MiB brick H2D < 0.2 ms (§3) → 15 µs + 6 GiB/s;
    /// * kernel: ~30 M effective trilinear samples/s — tuned so a 1024³
    ///   render on 8 GPUs spends ≈ 0.5 s per GPU in ray casting (the §6.3
    ///   503 ms anchor) and 128³ peaks near the paper's ~2.5 FPS;
    /// * VRAM 4 GiB, 102 GB/s GDDR3.
    pub fn tesla_c1060() -> DeviceProps {
        DeviceProps {
            name: "Tesla C1060 (simulated)",
            vram_bytes: 4 << 30,
            mem_bytes_per_s: 102.0e9,
            pcie: LinkModel::new(15e-6, 6.0 * (1u64 << 30) as f64),
            kernel: KernelCostModel {
                launch_overhead_s: 60e-6,
                samples_per_s: 30.0e6,
                mode: KernelTimingMode::FlatThroughput,
            },
        }
    }

    /// Time to copy `bytes` host→device (synchronous for 3-D textures under
    /// CUDA 3.0, as the paper notes — the caller models that by putting the
    /// transfer on the GPU's critical path).
    pub fn h2d_time(&self, bytes: u64) -> SimDuration {
        self.pcie.time(bytes)
    }

    /// Time to copy `bytes` device→host.
    pub fn d2h_time(&self, bytes: u64) -> SimDuration {
        self.pcie.time(bytes)
    }
}

/// A simulated device: properties plus live VRAM accounting.
#[derive(Debug)]
pub struct Device {
    props: DeviceProps,
    vram: Mutex<VramAllocator>,
}

impl Device {
    pub fn new(props: DeviceProps) -> Device {
        let vram = Mutex::new(VramAllocator::new(props.vram_bytes));
        Device { props, vram }
    }

    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    pub fn alloc(&self, bytes: u64) -> Result<AllocId, OutOfMemory> {
        self.vram.lock().alloc(bytes)
    }

    pub fn free(&self, id: AllocId) {
        self.vram.lock().free(id)
    }

    pub fn vram_used(&self) -> u64 {
        self.vram.lock().used()
    }

    pub fn vram_free(&self) -> u64 {
        self.vram.lock().free_bytes()
    }

    pub fn vram_peak(&self) -> u64 {
        self.vram.lock().peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1060_anchor_h2d_under_point2ms_for_1mib() {
        let p = DeviceProps::tesla_c1060();
        let t = p.h2d_time(1 << 20).as_millis_f64();
        assert!(t < 0.2, "H2D of 1 MiB took {t} ms, paper says < 0.2 ms");
    }

    #[test]
    fn c1060_anchor_d2h_fragments_under_2ms() {
        // A full 512² fragment buffer at 24 B/fragment ≈ 6 MiB; the paper
        // found the readback "empirically less than 2 ms".
        let p = DeviceProps::tesla_c1060();
        let bytes = 512 * 512 * 24;
        let t = p.d2h_time(bytes).as_millis_f64();
        assert!(t < 2.0, "D2H of fragment buffer took {t} ms");
    }

    #[test]
    fn kernel_model_charges_overhead_plus_rate() {
        let m = KernelCostModel {
            launch_overhead_s: 100e-6,
            samples_per_s: 1e6,
            mode: KernelTimingMode::FlatThroughput,
        };
        let stats = LaunchStats {
            total_samples: 1_000_000,
            simt_samples: 3_000_000,
            ..Default::default()
        };
        assert!((m.time(&stats).as_secs_f64() - 1.0001).abs() < 1e-9);
        let warp = KernelCostModel {
            mode: KernelTimingMode::WarpAccurate,
            ..m
        };
        assert!((warp.time(&stats).as_secs_f64() - 3.0001).abs() < 1e-9);
    }

    #[test]
    fn device_tracks_vram() {
        let d = Device::new(DeviceProps::tesla_c1060());
        let id = d.alloc(1 << 30).unwrap();
        assert_eq!(d.vram_used(), 1 << 30);
        d.free(id);
        assert_eq!(d.vram_used(), 0);
        assert_eq!(d.vram_peak(), 1 << 30);
        // A 5 GiB brick cannot fit — the paper's restriction #1.
        assert!(d.alloc(5 << 30).is_err());
    }
}
