//! Software 3-D and 1-D textures with hardware-style filtering.
//!
//! The paper stores volume bricks in CUDA 3-D textures "to enable the
//! hardware texture caches and filtering units". [`Texture3D`] reproduces
//! the sampling semantics exactly: unnormalized coordinates, voxel centers at
//! `i + 0.5`, trilinear filtering, clamp-to-edge addressing. [`Texture1D`]
//! plays the transfer-function LUT role.

use std::sync::Arc;

/// A 3-D single-channel float texture (a volume brick on the device).
/// Voxel data is shared (`Arc`), so "uploading" a brick never copies it —
/// only the simulated PCIe transfer is charged.
#[derive(Debug, Clone)]
pub struct Texture3D {
    dims: [usize; 3],
    data: Arc<Vec<f32>>,
}

impl Texture3D {
    pub fn new(dims: [usize; 3], data: Vec<f32>) -> Texture3D {
        Texture3D::from_shared(dims, Arc::new(data))
    }

    pub fn from_shared(dims: [usize; 3], data: Arc<Vec<f32>>) -> Texture3D {
        assert_eq!(
            data.len(),
            dims[0] * dims[1] * dims[2],
            "texture data does not match dims"
        );
        assert!(dims.iter().all(|&d| d > 0), "degenerate texture dims");
        Texture3D { dims, data }
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// Nearest texel fetch with clamp addressing (integer coordinates).
    #[inline]
    pub fn fetch(&self, x: i64, y: i64, z: i64) -> f32 {
        let cx = x.clamp(0, self.dims[0] as i64 - 1) as usize;
        let cy = y.clamp(0, self.dims[1] as i64 - 1) as usize;
        let cz = z.clamp(0, self.dims[2] as i64 - 1) as usize;
        self.data[(cz * self.dims[1] + cy) * self.dims[0] + cx]
    }

    /// Trilinear sample at unnormalized coordinates: texel `i`'s center is at
    /// `i + 0.5`, exactly the CUDA `tex3D` convention with linear filtering
    /// and clamp addressing.
    #[inline]
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let fx = x - 0.5;
        let fy = y - 0.5;
        let fz = z - 0.5;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let z0 = fz.floor();
        let tx = fx - x0;
        let ty = fy - y0;
        let tz = fz - z0;
        let (ix, iy, iz) = (x0 as i64, y0 as i64, z0 as i64);

        let c000 = self.fetch(ix, iy, iz);
        let c100 = self.fetch(ix + 1, iy, iz);
        let c010 = self.fetch(ix, iy + 1, iz);
        let c110 = self.fetch(ix + 1, iy + 1, iz);
        let c001 = self.fetch(ix, iy, iz + 1);
        let c101 = self.fetch(ix + 1, iy, iz + 1);
        let c011 = self.fetch(ix, iy + 1, iz + 1);
        let c111 = self.fetch(ix + 1, iy + 1, iz + 1);

        let x00 = c000 + (c100 - c000) * tx;
        let x10 = c010 + (c110 - c010) * tx;
        let x01 = c001 + (c101 - c001) * tx;
        let x11 = c011 + (c111 - c011) * tx;
        let y0v = x00 + (x10 - x00) * ty;
        let y1v = x01 + (x11 - x01) * ty;
        y0v + (y1v - y0v) * tz
    }

    /// A resolved sampling view for hot loops: same filtering semantics as
    /// [`Texture3D::sample`] (bit-identical results), without per-sample
    /// `Arc` indirection, and with a bounds-check-free interior fast path.
    pub fn sampler(&self) -> Sampler3D<'_> {
        Sampler3D {
            data: &self.data,
            dims: self.dims,
            // Interior-test upper bounds (`dims − 1` as f32) and row/slice
            // strides, resolved once so the per-sample test is 6 compares.
            hi: [
                self.dims[0] as f32 - 1.0,
                self.dims[1] as f32 - 1.0,
                self.dims[2] as f32 - 1.0,
            ],
            sx: self.dims[0],
            sy: self.dims[1] * self.dims[0],
        }
    }
}

/// A borrowed, resolved view over a [`Texture3D`] for per-sample inner loops.
///
/// Construction ([`Texture3D::sampler`]) resolves the voxel slice and the
/// dimension comparisons once; [`Sampler3D::sample`] then takes an interior
/// fast path (single base index, eight unchecked loads) whenever all eight
/// taps are in-bounds, falling back to the clamped fetch at the borders.
/// Every float operation and its order matches [`Texture3D::sample`]
/// exactly, so results are bit-identical everywhere.
#[derive(Debug, Clone, Copy)]
pub struct Sampler3D<'a> {
    data: &'a [f32],
    dims: [usize; 3],
    /// `dims − 1` per axis as f32: the interior fast-path upper bounds.
    hi: [f32; 3],
    /// Row stride (`dims[0]`).
    sx: usize,
    /// Slice stride (`dims[1] · dims[0]`).
    sy: usize,
}

impl Sampler3D<'_> {
    /// Nearest texel fetch with clamp addressing — same as
    /// [`Texture3D::fetch`].
    #[inline]
    pub fn fetch(&self, x: i64, y: i64, z: i64) -> f32 {
        let cx = x.clamp(0, self.dims[0] as i64 - 1) as usize;
        let cy = y.clamp(0, self.dims[1] as i64 - 1) as usize;
        let cz = z.clamp(0, self.dims[2] as i64 - 1) as usize;
        self.data[(cz * self.dims[1] + cy) * self.dims[0] + cx]
    }

    /// Trilinear sample, bit-identical to [`Texture3D::sample`].
    #[inline(always)]
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let fx = x - 0.5;
        let fy = y - 0.5;
        let fz = z - 0.5;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let z0 = fz.floor();
        let tx = fx - x0;
        let ty = fy - y0;
        let tz = fz - z0;

        let (c000, c100, c010, c110, c001, c101, c011, c111);
        // Interior fast path: all 8 taps in-bounds from one base index. The
        // float comparisons reject NaN and the ±2³¹ fringe, so the `as usize`
        // casts below are exact.
        if x0 >= 0.0
            && y0 >= 0.0
            && z0 >= 0.0
            && x0 < self.hi[0]
            && y0 < self.hi[1]
            && z0 < self.hi[2]
        {
            let ix = x0 as usize;
            let iy = y0 as usize;
            let iz = z0 as usize;
            let sx = self.sx;
            let sy = self.sy;
            let base = iz * sy + iy * sx + ix;
            // SAFETY: ix ≤ dims[0]−2, iy ≤ dims[1]−2, iz ≤ dims[2]−2 (from
            // the comparisons above), so base + sy + sx + 1 < data.len().
            unsafe {
                c000 = *self.data.get_unchecked(base);
                c100 = *self.data.get_unchecked(base + 1);
                c010 = *self.data.get_unchecked(base + sx);
                c110 = *self.data.get_unchecked(base + sx + 1);
                c001 = *self.data.get_unchecked(base + sy);
                c101 = *self.data.get_unchecked(base + sy + 1);
                c011 = *self.data.get_unchecked(base + sy + sx);
                c111 = *self.data.get_unchecked(base + sy + sx + 1);
            }
        } else {
            let (ix, iy, iz) = (x0 as i64, y0 as i64, z0 as i64);
            c000 = self.fetch(ix, iy, iz);
            c100 = self.fetch(ix + 1, iy, iz);
            c010 = self.fetch(ix, iy + 1, iz);
            c110 = self.fetch(ix + 1, iy + 1, iz);
            c001 = self.fetch(ix, iy, iz + 1);
            c101 = self.fetch(ix + 1, iy, iz + 1);
            c011 = self.fetch(ix, iy + 1, iz + 1);
            c111 = self.fetch(ix + 1, iy + 1, iz + 1);
        }

        let x00 = c000 + (c100 - c000) * tx;
        let x10 = c010 + (c110 - c010) * tx;
        let x01 = c001 + (c101 - c001) * tx;
        let x11 = c011 + (c111 - c011) * tx;
        let y0v = x00 + (x10 - x00) * ty;
        let y1v = x01 + (x11 - x01) * ty;
        y0v + (y1v - y0v) * tz
    }
}

/// A 1-D RGBA texture: the transfer-function lookup table.
#[derive(Debug, Clone)]
pub struct Texture1D {
    texels: Vec<[f32; 4]>,
}

impl Texture1D {
    pub fn new(texels: Vec<[f32; 4]>) -> Texture1D {
        assert!(!texels.is_empty(), "empty 1-D texture");
        Texture1D { texels }
    }

    pub fn len(&self) -> usize {
        self.texels.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction rejects empty tables
    }

    pub fn bytes(&self) -> u64 {
        (self.texels.len() * 16) as u64
    }

    /// Linearly filtered lookup with normalized coordinate `u ∈ [0,1]`
    /// (clamped), texel centers at `(i + 0.5) / len`.
    #[inline]
    pub fn sample(&self, u: f32) -> [f32; 4] {
        let n = self.texels.len();
        let x = u.clamp(0.0, 1.0) * n as f32 - 0.5;
        let x0 = x.floor();
        let t = x - x0;
        let i0 = (x0 as i64).clamp(0, n as i64 - 1) as usize;
        let i1 = (x0 as i64 + 1).clamp(0, n as i64 - 1) as usize;
        let a = self.texels[i0];
        let b = self.texels[i1];
        [
            a[0] + (b[0] - a[0]) * t,
            a[1] + (b[1] - a[1]) * t,
            a[2] + (b[2] - a[2]) * t,
            a[3] + (b[3] - a[3]) * t,
        ]
    }

    /// A resolved sampling view for hot loops — bit-identical lookups with an
    /// interior fast path that skips the clamps.
    pub fn sampler(&self) -> Sampler1D<'_> {
        Sampler1D {
            texels: &self.texels,
            nf: self.texels.len() as f32,
            hi: self.texels.len() as f32 - 1.0,
        }
    }
}

/// A borrowed, resolved view over a [`Texture1D`] for per-sample inner loops
/// (the transfer-function LUT lookup). Bit-identical to
/// [`Texture1D::sample`]; interior lookups skip the index clamps.
#[derive(Debug, Clone, Copy)]
pub struct Sampler1D<'a> {
    texels: &'a [[f32; 4]],
    nf: f32,
    /// `nf − 1`: the interior fast-path upper bound, resolved once.
    hi: f32,
}

impl Sampler1D<'_> {
    /// The two texels and interpolation fraction [`Sampler1D::sample`] would
    /// blend for `u`. Hot loops use this to lerp the alpha channel first and
    /// skip the color lerps when the sample is fully transparent — the color
    /// expressions are unchanged when they do run, so results stay
    /// bit-identical to [`Texture1D::sample`].
    #[inline(always)]
    pub fn taps(&self, u: f32) -> (&[f32; 4], &[f32; 4], f32) {
        let x = u.clamp(0.0, 1.0) * self.nf - 0.5;
        let x0 = x.floor();
        let t = x - x0;
        let (i0, i1);
        // Interior fast path; the comparisons reject the end texels where the
        // clamps actually bite.
        if x0 >= 0.0 && x0 < self.hi {
            i0 = x0 as usize;
            i1 = i0 + 1;
        } else {
            let n = self.texels.len() as i64;
            i0 = (x0 as i64).clamp(0, n - 1) as usize;
            i1 = (x0 as i64 + 1).clamp(0, n - 1) as usize;
        }
        // SAFETY: both branches produce i0, i1 < texels.len().
        let (a, b) = unsafe { (self.texels.get_unchecked(i0), self.texels.get_unchecked(i1)) };
        (a, b, t)
    }

    /// Linearly filtered lookup, bit-identical to [`Texture1D::sample`].
    #[inline(always)]
    pub fn sample(&self, u: f32) -> [f32; 4] {
        let (a, b, t) = self.taps(u);
        [
            a[0] + (b[0] - a[0]) * t,
            a[1] + (b[1] - a[1]) * t,
            a[2] + (b[2] - a[2]) * t,
            a[3] + (b[3] - a[3]) * t,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_tex(dims: [usize; 3]) -> Texture3D {
        // value = x + 10y + 100z (trilinear in all axes → exact reconstruction)
        let mut data = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    data.push(x as f32 + 10.0 * y as f32 + 100.0 * z as f32);
                }
            }
        }
        Texture3D::new(dims, data)
    }

    #[test]
    fn sample_at_texel_centers_is_exact() {
        let t = ramp_tex([4, 4, 4]);
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    let v = t.sample(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5);
                    let expect = x as f32 + 10.0 * y as f32 + 100.0 * z as f32;
                    assert!((v - expect).abs() < 1e-4, "({x},{y},{z}): {v} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn trilinear_reconstructs_linear_fields_exactly() {
        let t = ramp_tex([8, 8, 8]);
        // Interior continuous positions: value must equal the linear field.
        for &(x, y, z) in &[(1.25f32, 2.75f32, 3.5f32), (4.1, 5.9, 6.3), (2.0, 2.0, 2.0)] {
            let v = t.sample(x, y, z);
            let expect = (x - 0.5) + 10.0 * (y - 0.5) + 100.0 * (z - 0.5);
            assert!(
                (v - expect).abs() < 1e-3,
                "at ({x},{y},{z}): {v} vs {expect}"
            );
        }
    }

    #[test]
    fn clamp_addressing_at_borders() {
        let t = ramp_tex([4, 4, 4]);
        // Far outside: clamps to corner texel value 3 + 30 + 300.
        assert_eq!(t.sample(100.0, 100.0, 100.0), 333.0);
        assert_eq!(t.sample(-100.0, -100.0, -100.0), 0.0);
    }

    #[test]
    fn fetch_is_nearest() {
        let t = ramp_tex([4, 4, 4]);
        assert_eq!(t.fetch(2, 1, 3), 2.0 + 10.0 + 300.0);
        assert_eq!(t.fetch(-5, 0, 0), 0.0);
        assert_eq!(t.fetch(9, 3, 3), 333.0);
    }

    #[test]
    fn tex1d_interpolates_and_clamps() {
        let t = Texture1D::new(vec![[0.0; 4], [1.0, 2.0, 3.0, 4.0]]);
        // u=0.5 lands exactly between the two texel centers (0.25, 0.75).
        let mid = t.sample(0.5);
        assert!((mid[0] - 0.5).abs() < 1e-6);
        assert!((mid[3] - 2.0).abs() < 1e-6);
        // Beyond the ends: clamp to end texels.
        assert_eq!(t.sample(-1.0), [0.0; 4]);
        assert_eq!(t.sample(2.0), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn tex1d_single_texel_is_constant() {
        let t = Texture1D::new(vec![[0.5, 0.25, 0.125, 1.0]]);
        for i in 0..10 {
            assert_eq!(t.sample(i as f32 / 9.0), [0.5, 0.25, 0.125, 1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn rejects_mismatched_data() {
        Texture3D::new([2, 2, 2], vec![0.0; 7]);
    }

    #[test]
    fn sampler3d_bit_identical_to_texture_everywhere() {
        // Non-linear data so any interpolation difference shows up.
        let dims = [5usize, 4, 3];
        let data: Vec<f32> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| ((i * 2654435761) % 1000) as f32 / 999.0)
            .collect();
        let t = Texture3D::new(dims, data);
        let s = t.sampler();
        // Sweep interior, borders, outside, and sub-texel positions.
        let mut coords = vec![-2.0f32, -0.49, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5];
        for i in 0..20 {
            coords.push(i as f32 * 0.3);
        }
        for &x in &coords {
            for &y in &coords {
                for &z in &coords {
                    assert_eq!(
                        t.sample(x, y, z).to_bits(),
                        s.sample(x, y, z).to_bits(),
                        "diverged at ({x},{y},{z})"
                    );
                }
            }
        }
        for f in [-3i64, 0, 2, 7] {
            assert_eq!(t.fetch(f, f, f).to_bits(), s.fetch(f, f, f).to_bits());
        }
    }

    #[test]
    fn sampler1d_bit_identical_to_texture_everywhere() {
        let texels: Vec<[f32; 4]> = (0..256)
            .map(|i| {
                let v = i as f32 / 255.0;
                [v, v * v, 1.0 - v, (v * 7.3).sin().abs()]
            })
            .collect();
        let t = Texture1D::new(texels);
        let s = t.sampler();
        for i in -50..1050 {
            let u = i as f32 / 1000.0;
            let a = t.sample(u);
            let b = s.sample(u);
            assert_eq!(a.map(f32::to_bits), b.map(f32::to_bits), "diverged at {u}");
        }
        // Single-texel LUT exercises the clamp path exclusively.
        let one = Texture1D::new(vec![[0.5, 0.25, 0.125, 1.0]]);
        let os = one.sampler();
        for i in 0..10 {
            let u = i as f32 / 9.0;
            assert_eq!(one.sample(u), os.sample(u));
        }
    }
}
