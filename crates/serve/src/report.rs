//! Service-level accounting: monotonic counters updated by the submit path
//! and the workers, snapshotted into a [`ServiceReport`].
//!
//! This sits *above* the per-frame [`mgpu_volren::RenderReport`]: the frame
//! report times one frame on the modeled cluster; the service report
//! measures how the front-end behaves under load — queue latency, batch
//! occupancy, cache hit rate, brick staging reuse, wall-clock throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic service counters (all relaxed: they are statistics, not
/// synchronization).
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    pub frames_submitted: AtomicU64,
    pub frames_completed: AtomicU64,
    /// Frames that went through the full render pipeline.
    pub frames_rendered: AtomicU64,
    /// Frames answered from the frame cache (submit-side or worker-side).
    pub cache_hits: AtomicU64,
    pub batches: AtomicU64,
    /// Frames rendered as part of some batch (= occupancy numerator).
    pub batched_frames: AtomicU64,
    /// Total time jobs spent queued before a worker picked them up.
    pub queue_wait_nanos: AtomicU64,
    /// Bricks materialized by the shared stores (staging work actually paid).
    pub brick_stagings: AtomicU64,
    /// Brick fetches answered by a warm shared store (staging work avoided).
    pub brick_reuses: AtomicU64,
    /// Sum of simulated per-frame runtimes (DES makespans), nanoseconds.
    pub sim_frame_nanos: AtomicU64,
}

impl ServiceStats {
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time summary of service behaviour, alongside the per-frame
/// `RenderReport`s the tickets deliver.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    pub frames_submitted: u64,
    pub frames_completed: u64,
    pub frames_rendered: u64,
    pub cache_hits: u64,
    pub batches: u64,
    pub batched_frames: u64,
    pub brick_stagings: u64,
    pub brick_reuses: u64,
    /// Mean time a job waited in the queue before a worker picked it up.
    pub mean_queue_wait: Duration,
    /// Real elapsed time since the service started.
    pub wall_elapsed: Duration,
    /// Sum of simulated per-frame runtimes.
    pub sim_frame_total: Duration,
}

impl ServiceReport {
    pub(crate) fn from_stats(stats: &ServiceStats, wall_elapsed: Duration) -> ServiceReport {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let completed = ld(&stats.frames_completed);
        let waited = ld(&stats.queue_wait_nanos);
        // Queue wait is recorded per *popped* job; cache fast-path frames
        // never enter the queue, so the mean is over rendered frames.
        let rendered = ld(&stats.frames_rendered);
        ServiceReport {
            frames_submitted: ld(&stats.frames_submitted),
            frames_completed: completed,
            frames_rendered: rendered,
            cache_hits: ld(&stats.cache_hits),
            batches: ld(&stats.batches),
            batched_frames: ld(&stats.batched_frames),
            brick_stagings: ld(&stats.brick_stagings),
            brick_reuses: ld(&stats.brick_reuses),
            mean_queue_wait: Duration::from_nanos(if rendered > 0 { waited / rendered } else { 0 }),
            wall_elapsed,
            sim_frame_total: Duration::from_nanos(ld(&stats.sim_frame_nanos)),
        }
    }

    /// Fraction of completed frames answered from the frame cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.frames_completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.frames_completed as f64
        }
    }

    /// Mean frames per batch (1.0 = batching bought nothing).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_frames as f64 / self.batches as f64
        }
    }

    /// Completed frames per wall-clock second since service start.
    pub fn frames_per_sec(&self) -> f64 {
        let s = self.wall_elapsed.as_secs_f64();
        if s > 0.0 {
            self.frames_completed as f64 / s
        } else {
            0.0
        }
    }

    /// Mean simulated frame time across rendered frames.
    pub fn mean_sim_frame(&self) -> Duration {
        if self.frames_rendered == 0 {
            Duration::ZERO
        } else {
            self.sim_frame_total / self.frames_rendered as u32
        }
    }
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "frames: {} submitted, {} completed ({} rendered, {} cache hits, {:.1}% hit rate)",
            self.frames_submitted,
            self.frames_completed,
            self.frames_rendered,
            self.cache_hits,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "batching: {} batches, mean occupancy {:.2} frames/batch",
            self.batches,
            self.batch_occupancy()
        )?;
        writeln!(
            f,
            "bricks: {} staged, {} reused from shared stores",
            self.brick_stagings, self.brick_reuses
        )?;
        write!(
            f,
            "throughput: {:.1} frames/s wall ({:.3} s elapsed), mean queue wait {:.2} ms, \
             mean sim frame {:.2} ms",
            self.frames_per_sec(),
            self.wall_elapsed.as_secs_f64(),
            self.mean_queue_wait.as_secs_f64() * 1e3,
            self.mean_sim_frame().as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.frames_submitted, 10);
        ServiceStats::add(&stats.frames_completed, 10);
        ServiceStats::add(&stats.frames_rendered, 8);
        ServiceStats::add(&stats.cache_hits, 2);
        ServiceStats::add(&stats.batches, 2);
        ServiceStats::add(&stats.batched_frames, 8);
        ServiceStats::add(&stats.queue_wait_nanos, 8_000_000);
        let r = ServiceReport::from_stats(&stats, Duration::from_secs(2));
        assert_eq!(r.cache_hit_rate(), 0.2);
        assert_eq!(r.batch_occupancy(), 4.0);
        assert_eq!(r.frames_per_sec(), 5.0);
        assert_eq!(r.mean_queue_wait, Duration::from_nanos(1_000_000));
    }

    #[test]
    fn empty_report_has_no_nans() {
        let stats = ServiceStats::default();
        let r = ServiceReport::from_stats(&stats, Duration::ZERO);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.batch_occupancy(), 0.0);
        assert_eq!(r.frames_per_sec(), 0.0);
        assert_eq!(r.mean_sim_frame(), Duration::ZERO);
        let text = r.to_string();
        assert!(text.contains("0 submitted"));
    }
}
