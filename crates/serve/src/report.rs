//! Service-level accounting: monotonic counters updated by the submit path
//! and the workers, snapshotted into a [`ServiceReport`].
//!
//! This sits *above* the per-frame [`mgpu_volren::RenderReport`]: the frame
//! report times one frame on the modeled cluster; the service report
//! measures how the front-end behaves under load — queue latency, batch
//! occupancy, cache and plan-cache hit rates, brick staging reuse, admission
//! shedding, failures, wall-clock throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mgpu_obs::names;
use mgpu_obs::{Counter, Histogram};

use crate::cache::CacheSnapshot;

/// Number of log₂ buckets in the queue-wait histogram: bucket `i` counts
/// waits in `[2^i, 2^(i+1))` nanoseconds. The bucketing itself now lives in
/// [`mgpu_obs::Histogram`]; this alias keeps the serve API (and the wire
/// heat payloads) stable.
pub const WAIT_BUCKETS: usize = mgpu_obs::HIST_BUCKETS;

/// Cached handles into the process-global [`mgpu_obs`] registry, resolved
/// once per service instance so hot paths touch only atomics. These
/// aggregate across every service in the process (all shards of a
/// [`crate::ShardedService`] included) and feed the `STATS` v2 snapshot and
/// the `obs_top` dashboard; the per-instance counters in [`ServiceStats`]
/// remain the source for this service's own [`ServiceReport`].
#[derive(Debug)]
pub(crate) struct ObsHandles {
    pub frames_submitted: Arc<Counter>,
    pub frames_completed: Arc<Counter>,
    pub frames_rendered: Arc<Counter>,
    pub frames_failed: Arc<Counter>,
    pub frame_cache_hits: Arc<Counter>,
    pub frame_cache_misses: Arc<Counter>,
    pub plan_cache_hits: Arc<Counter>,
    pub plan_cache_misses: Arc<Counter>,
    pub admission_rejected: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub batched_frames: Arc<Counter>,
    pub jobs_popped: Arc<Counter>,
    pub brick_stagings: Arc<Counter>,
    pub brick_reuses: Arc<Counter>,
    pub queue_wait_ns: Arc<Histogram>,
    pub plan_prepare_ns: Arc<Histogram>,
    pub render_ns: Arc<Histogram>,
}

impl Default for ObsHandles {
    fn default() -> ObsHandles {
        let reg = mgpu_obs::global();
        ObsHandles {
            frames_submitted: reg.counter(names::SERVE_FRAMES_SUBMITTED),
            frames_completed: reg.counter(names::SERVE_FRAMES_COMPLETED),
            frames_rendered: reg.counter(names::SERVE_FRAMES_RENDERED),
            frames_failed: reg.counter(names::SERVE_FRAMES_FAILED),
            frame_cache_hits: reg.counter(names::SERVE_FRAME_CACHE_HITS),
            frame_cache_misses: reg.counter(names::SERVE_FRAME_CACHE_MISSES),
            plan_cache_hits: reg.counter(names::SERVE_PLAN_CACHE_HITS),
            plan_cache_misses: reg.counter(names::SERVE_PLAN_CACHE_MISSES),
            admission_rejected: reg.counter(names::SERVE_ADMISSION_REJECTED),
            batches: reg.counter(names::SERVE_BATCHES),
            batched_frames: reg.counter(names::SERVE_BATCHED_FRAMES),
            jobs_popped: reg.counter(names::SERVE_JOBS_POPPED),
            brick_stagings: reg.counter(names::SERVE_BRICK_STAGINGS),
            brick_reuses: reg.counter(names::SERVE_BRICK_REUSES),
            queue_wait_ns: reg.histogram(names::SERVE_QUEUE_WAIT_NS),
            plan_prepare_ns: reg.histogram(names::SERVE_PLAN_PREPARE_NS),
            render_ns: reg.histogram(names::SERVE_RENDER_NS),
        }
    }
}

/// Monotonic service counters (all relaxed: they are statistics, not
/// synchronization).
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    /// Frames accepted into the service (cache fast-path included; admission
    /// rejections excluded).
    pub frames_submitted: AtomicU64,
    pub frames_completed: AtomicU64,
    /// Frames that went through the full render pipeline.
    pub frames_rendered: AtomicU64,
    /// Frames that failed with a caught render panic.
    pub frames_failed: AtomicU64,
    /// Frames answered from the frame cache (submit-side or worker-side).
    pub cache_hits: AtomicU64,
    /// Submissions shed by admission control.
    pub admission_rejected: AtomicU64,
    pub batches: AtomicU64,
    /// Frames rendered as part of some batch (= occupancy numerator).
    pub batched_frames: AtomicU64,
    /// Jobs workers pulled out of the queue (popped or batch-drained) —
    /// the denominator for `mean_queue_wait`.
    pub jobs_popped: AtomicU64,
    /// Total time jobs spent queued before a worker picked them up.
    pub queue_wait_nanos: AtomicU64,
    /// Per-job queue-wait distribution (log₂ buckets, see
    /// [`mgpu_obs::Histogram`]).
    pub wait_hist: Histogram,
    /// Bricks materialized by the shared stores (staging work actually paid).
    pub brick_stagings: AtomicU64,
    /// Brick fetches answered by a warm shared store (staging work avoided).
    pub brick_reuses: AtomicU64,
    /// Sum of simulated per-frame runtimes (DES makespans), nanoseconds.
    pub sim_frame_nanos: AtomicU64,
    /// Process-global observability mirrors (see [`ObsHandles`]).
    pub obs: ObsHandles,
}

impl ServiceStats {
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one job's queue wait: the running total (for the mean), the
    /// histogram bucket (for the percentiles) and the process-global
    /// `serve.queue_wait_ns` histogram stay in lockstep.
    pub fn record_wait(&self, nanos: u64) {
        ServiceStats::add(&self.queue_wait_nanos, nanos);
        self.wait_hist.record(nanos);
        self.obs.queue_wait_ns.record(nanos);
    }
}

/// A point-in-time summary of service behaviour, alongside the per-frame
/// `RenderReport`s the tickets deliver.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    pub frames_submitted: u64,
    pub frames_completed: u64,
    pub frames_rendered: u64,
    /// Frames that resolved to an explicit [`crate::FrameError`] after a
    /// caught render panic (the worker survived).
    pub frames_failed: u64,
    pub cache_hits: u64,
    /// Submissions shed by admission control (never queued).
    pub admission_rejected: u64,
    pub batches: u64,
    pub batched_frames: u64,
    /// Jobs that actually left the queue (rendered or coalesced).
    pub jobs_popped: u64,
    pub brick_stagings: u64,
    pub brick_reuses: u64,
    /// Cross-batch plan cache counters (hits = batches that skipped
    /// re-bricking and reused a warm store).
    pub plan_cache: CacheSnapshot,
    /// Frame-cache occupancy and counters (per shard before merging;
    /// merged reports sum entries and capacities across shards).
    pub frame_cache: CacheSnapshot,
    /// Mean time a job waited in the queue before a worker picked it up —
    /// averaged over every popped job, coalesced cache hits included.
    pub mean_queue_wait: Duration,
    /// Queue-wait distribution (log₂-bucket counts); see
    /// [`ServiceReport::queue_wait_quantile`].
    pub queue_wait_hist: [u64; WAIT_BUCKETS],
    /// Real elapsed time since the service started.
    pub wall_elapsed: Duration,
    /// Sum of simulated per-frame runtimes.
    pub sim_frame_total: Duration,
}

impl ServiceReport {
    pub(crate) fn from_stats(
        stats: &ServiceStats,
        plan_cache: CacheSnapshot,
        frame_cache: CacheSnapshot,
        wall_elapsed: Duration,
    ) -> ServiceReport {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let waited = ld(&stats.queue_wait_nanos);
        // Queue wait is recorded per *popped* job (rendered or coalesced);
        // cache fast-path frames never enter the queue and are excluded.
        let popped = ld(&stats.jobs_popped);
        ServiceReport {
            frames_submitted: ld(&stats.frames_submitted),
            frames_completed: ld(&stats.frames_completed),
            frames_rendered: ld(&stats.frames_rendered),
            frames_failed: ld(&stats.frames_failed),
            cache_hits: ld(&stats.cache_hits),
            admission_rejected: ld(&stats.admission_rejected),
            batches: ld(&stats.batches),
            batched_frames: ld(&stats.batched_frames),
            jobs_popped: popped,
            brick_stagings: ld(&stats.brick_stagings),
            brick_reuses: ld(&stats.brick_reuses),
            plan_cache,
            frame_cache,
            mean_queue_wait: Duration::from_nanos(waited.checked_div(popped).unwrap_or(0)),
            queue_wait_hist: stats.wait_hist.load(),
            wall_elapsed,
            sim_frame_total: Duration::from_nanos(ld(&stats.sim_frame_nanos)),
        }
    }

    /// Combine reports from independent service instances (the shards of a
    /// [`crate::ShardedService`]): counters add, the queue-wait mean is
    /// re-weighted by popped jobs, wall time is the maximum (shards run
    /// concurrently).
    pub fn merged<'a>(reports: impl IntoIterator<Item = &'a ServiceReport>) -> ServiceReport {
        let mut out = ServiceReport {
            frames_submitted: 0,
            frames_completed: 0,
            frames_rendered: 0,
            frames_failed: 0,
            cache_hits: 0,
            admission_rejected: 0,
            batches: 0,
            batched_frames: 0,
            jobs_popped: 0,
            brick_stagings: 0,
            brick_reuses: 0,
            plan_cache: CacheSnapshot::default(),
            frame_cache: CacheSnapshot::default(),
            mean_queue_wait: Duration::ZERO,
            queue_wait_hist: [0; WAIT_BUCKETS],
            wall_elapsed: Duration::ZERO,
            sim_frame_total: Duration::ZERO,
        };
        let mut waited_nanos: u128 = 0;
        for r in reports {
            out.frames_submitted += r.frames_submitted;
            out.frames_completed += r.frames_completed;
            out.frames_rendered += r.frames_rendered;
            out.frames_failed += r.frames_failed;
            out.cache_hits += r.cache_hits;
            out.admission_rejected += r.admission_rejected;
            out.batches += r.batches;
            out.batched_frames += r.batched_frames;
            out.jobs_popped += r.jobs_popped;
            out.brick_stagings += r.brick_stagings;
            out.brick_reuses += r.brick_reuses;
            out.plan_cache.entries += r.plan_cache.entries;
            out.plan_cache.capacity += r.plan_cache.capacity;
            out.plan_cache.hits += r.plan_cache.hits;
            out.plan_cache.misses += r.plan_cache.misses;
            out.plan_cache.evictions += r.plan_cache.evictions;
            out.frame_cache.entries += r.frame_cache.entries;
            out.frame_cache.capacity += r.frame_cache.capacity;
            out.frame_cache.hits += r.frame_cache.hits;
            out.frame_cache.misses += r.frame_cache.misses;
            out.frame_cache.evictions += r.frame_cache.evictions;
            for (sum, bucket) in out.queue_wait_hist.iter_mut().zip(r.queue_wait_hist) {
                *sum += bucket;
            }
            waited_nanos += r.mean_queue_wait.as_nanos() * r.jobs_popped as u128;
            out.wall_elapsed = out.wall_elapsed.max(r.wall_elapsed);
            out.sim_frame_total += r.sim_frame_total;
        }
        if out.jobs_popped > 0 {
            out.mean_queue_wait =
                Duration::from_nanos((waited_nanos / out.jobs_popped as u128) as u64);
        }
        out
    }

    /// Fraction of completed frames answered from the frame cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.frames_completed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.frames_completed as f64
        }
    }

    /// Fraction of plan lookups answered by the cross-batch plan cache.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache.hits + self.plan_cache.misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache.hits as f64 / total as f64
        }
    }

    /// Mean frames per batch (1.0 = batching bought nothing).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_frames as f64 / self.batches as f64
        }
    }

    /// Completed frames per wall-clock second since service start.
    pub fn frames_per_sec(&self) -> f64 {
        let s = self.wall_elapsed.as_secs_f64();
        if s > 0.0 {
            self.frames_completed as f64 / s
        } else {
            0.0
        }
    }

    /// Queue-wait quantile from the log₂ histogram: the upper edge of the
    /// bucket holding the q-th popped job, so it never under-reports. Zero
    /// while nothing has been popped.
    pub fn queue_wait_quantile(&self, q: f64) -> Duration {
        mgpu_obs::quantile(&self.queue_wait_hist, q)
    }

    /// Median queue wait (see [`ServiceReport::queue_wait_quantile`]).
    pub fn queue_wait_p50(&self) -> Duration {
        self.queue_wait_quantile(0.5)
    }

    /// 90th-percentile queue wait — the overload-tail number the heat
    /// metrics watch per shard.
    pub fn queue_wait_p90(&self) -> Duration {
        self.queue_wait_quantile(0.9)
    }

    /// Mean simulated frame time across rendered frames.
    pub fn mean_sim_frame(&self) -> Duration {
        if self.frames_rendered == 0 {
            Duration::ZERO
        } else {
            self.sim_frame_total / self.frames_rendered as u32
        }
    }
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "frames: {} submitted, {} completed ({} rendered, {} cache hits, {:.1}% hit rate)",
            self.frames_submitted,
            self.frames_completed,
            self.frames_rendered,
            self.cache_hits,
            self.cache_hit_rate() * 100.0
        )?;
        if self.frames_failed > 0 || self.admission_rejected > 0 {
            writeln!(
                f,
                "shed/failed: {} rejected at admission, {} frames failed (caught panics)",
                self.admission_rejected, self.frames_failed
            )?;
        }
        writeln!(
            f,
            "batching: {} batches, mean occupancy {:.2} frames/batch",
            self.batches,
            self.batch_occupancy()
        )?;
        writeln!(
            f,
            "plan cache: {} hits, {} misses ({:.1}% hit rate), {} evictions",
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache_hit_rate() * 100.0,
            self.plan_cache.evictions
        )?;
        writeln!(
            f,
            "bricks: {} staged, {} reused from shared stores",
            self.brick_stagings, self.brick_reuses
        )?;
        writeln!(
            f,
            "frame cache: {}/{} entries, {} hits, {} misses, {} evictions",
            self.frame_cache.entries,
            self.frame_cache.capacity,
            self.frame_cache.hits,
            self.frame_cache.misses,
            self.frame_cache.evictions
        )?;
        write!(
            f,
            "throughput: {:.1} frames/s wall ({:.3} s elapsed), queue wait mean {:.2} ms \
             / p50 {:.2} ms / p90 {:.2} ms, mean sim frame {:.2} ms",
            self.frames_per_sec(),
            self.wall_elapsed.as_secs_f64(),
            self.mean_queue_wait.as_secs_f64() * 1e3,
            self.queue_wait_p50().as_secs_f64() * 1e3,
            self.queue_wait_p90().as_secs_f64() * 1e3,
            self.mean_sim_frame().as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.frames_submitted, 10);
        ServiceStats::add(&stats.frames_completed, 10);
        ServiceStats::add(&stats.frames_rendered, 8);
        ServiceStats::add(&stats.cache_hits, 2);
        ServiceStats::add(&stats.batches, 2);
        ServiceStats::add(&stats.batched_frames, 8);
        // 8 rendered + 2 worker-side coalesced pops: the wait mean divides
        // by popped jobs, not rendered frames.
        ServiceStats::add(&stats.jobs_popped, 10);
        ServiceStats::add(&stats.queue_wait_nanos, 10_000_000);
        let plan = CacheSnapshot {
            entries: 1,
            capacity: 8,
            hits: 1,
            misses: 1,
            evictions: 0,
        };
        let frames = CacheSnapshot {
            entries: 2,
            capacity: 4,
            hits: 2,
            misses: 8,
            evictions: 0,
        };
        let r = ServiceReport::from_stats(&stats, plan, frames, Duration::from_secs(2));
        assert_eq!(r.cache_hit_rate(), 0.2);
        assert_eq!(r.batch_occupancy(), 4.0);
        assert_eq!(r.frames_per_sec(), 5.0);
        assert_eq!(r.mean_queue_wait, Duration::from_nanos(1_000_000));
        assert_eq!(r.plan_cache_hit_rate(), 0.5);
        assert_eq!(r.frame_cache.occupancy(), 0.5);
    }

    #[test]
    fn empty_report_has_no_nans() {
        let stats = ServiceStats::default();
        let r = ServiceReport::from_stats(
            &stats,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            Duration::ZERO,
        );
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.batch_occupancy(), 0.0);
        assert_eq!(r.frames_per_sec(), 0.0);
        assert_eq!(r.plan_cache_hit_rate(), 0.0);
        assert_eq!(r.mean_sim_frame(), Duration::ZERO);
        assert_eq!(r.queue_wait_p50(), Duration::ZERO);
        let text = r.to_string();
        assert!(text.contains("0 submitted"));
    }

    #[test]
    fn merged_sums_and_reweights() {
        let mk = |rendered: u64, popped: u64, wait_ms: u64, wall: u64| {
            let stats = ServiceStats::default();
            ServiceStats::add(&stats.frames_rendered, rendered);
            ServiceStats::add(&stats.frames_completed, rendered);
            ServiceStats::add(&stats.jobs_popped, popped);
            for _ in 0..popped {
                stats.record_wait(wait_ms * 1_000_000);
            }
            let plan = CacheSnapshot {
                entries: 1,
                capacity: 8,
                hits: 2,
                misses: 1,
                evictions: 0,
            };
            let frames = CacheSnapshot {
                entries: 3,
                capacity: 16,
                hits: 1,
                misses: 2,
                evictions: 1,
            };
            ServiceReport::from_stats(&stats, plan, frames, Duration::from_secs(wall))
        };
        let a = mk(4, 4, 2, 3);
        let b = mk(8, 12, 6, 5);
        let m = ServiceReport::merged([&a, &b]);
        assert_eq!(m.frames_rendered, 12);
        assert_eq!(m.jobs_popped, 16);
        assert_eq!(m.plan_cache.hits, 4);
        assert_eq!(m.plan_cache.capacity, 16);
        assert_eq!(m.frame_cache.entries, 6);
        assert_eq!(m.frame_cache.capacity, 32);
        assert_eq!(m.wall_elapsed, Duration::from_secs(5), "shards overlap");
        // Weighted mean: (4·2ms + 12·6ms) / 16 = 5ms.
        assert_eq!(m.mean_queue_wait, Duration::from_millis(5));
        // Histogram buckets add: 16 samples total, p50 falls in the 6 ms
        // bucket's range because 12 of 16 samples sit there.
        assert_eq!(m.queue_wait_hist.iter().sum::<u64>(), 16);
        assert!(m.queue_wait_p50() >= Duration::from_millis(4));
        assert_eq!(ServiceReport::merged([]).jobs_popped, 0);
    }

    #[test]
    fn quantiles_are_thin_views_over_the_obs_histogram() {
        // Bucketing and quantile math live in mgpu-obs (tested there); this
        // checks the report plumbing: record_wait keeps the mean total, the
        // instance histogram and the quantile views in lockstep.
        let stats = ServiceStats::default();
        for _ in 0..9 {
            stats.record_wait(1_000); // ≈ 1 µs
        }
        stats.record_wait(1_000_000_000); // one 1 s outlier
        ServiceStats::add(&stats.jobs_popped, 10);
        let r = ServiceReport::from_stats(
            &stats,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
            Duration::from_secs(1),
        );
        assert_eq!(r.queue_wait_hist.iter().sum::<u64>(), 10);
        assert_eq!(WAIT_BUCKETS, mgpu_obs::HIST_BUCKETS);
        let p50 = r.queue_wait_p50();
        assert!(p50 <= Duration::from_nanos(2048), "median ignores outlier");
        assert!(
            r.queue_wait_quantile(0.99) >= Duration::from_millis(500),
            "tail sees the outlier"
        );
        assert_eq!(
            r.queue_wait_quantile(0.0),
            p50,
            "q=0 clamps to first bucket"
        );
    }
}
