//! The cross-batch plan cache: a bounded LRU from [`BatchKey`] to shared
//! [`FramePlan`]s.
//!
//! PR 2's batching amortized bricking and staging *within* one batch; this
//! cache amortizes them *across* batches: consecutive batches of the same
//! (cluster, volume, config) reuse the bricking and — more importantly — the
//! warm shared [`mgpu_voldata::BrickStore`] behind it, so a steady stream of
//! same-volume traffic stages each brick once for the lifetime of the cache
//! entry instead of once per batch. This is the service-layer analogue of
//! distributed render front-ends keeping per-partition render state resident
//! across requests (Hassan et al., arXiv:1205.0282; Sahistan et al.,
//! arXiv:2209.14537).
//!
//! Sharing is sound because a [`FramePlan`] is immutable apart from its
//! brick store, whose statistics are interior-mutable atomics and whose
//! per-frame attribution already goes through snapshot deltas
//! (`StoreSnapshot::since`) — `render_planned` stays bit-identical to a
//! direct `render` call no matter which batch, worker or service instance
//! the plan came from (a compile-time assertion below pins `FramePlan:
//! Send + Sync`).

use std::sync::Arc;

use mgpu_volren::renderer::FramePlan;

use crate::batch::BatchKey;
use crate::cache::{CacheSnapshot, LruCache};

/// Bounded LRU over shared frame plans. `capacity` is in plans; zero
/// disables cross-batch reuse (every batch builds its own plan, PR 2
/// behaviour). Eviction drops the `Arc`, so plans still in use by an
/// in-flight batch stay alive until that batch finishes.
pub struct PlanCache {
    lru: LruCache<BatchKey, Arc<FramePlan>>,
}

// A cached plan is handed to whichever worker thread renders the next batch:
// it must be shareable across threads. `const` so a regression to interior
// non-Sync state inside FramePlan fails the build, not a test.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FramePlan>();
};

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            lru: LruCache::new(capacity),
        }
    }

    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Look up the shared plan for a batch key (counts a hit or miss).
    pub fn get(&self, key: &BatchKey) -> Option<Arc<FramePlan>> {
        self.lru.get(key)
    }

    /// Publish a freshly prepared plan for reuse by later batches. Racing
    /// workers may both prepare and insert; last one wins, both render
    /// correctly (plans for equal keys are interchangeable).
    pub fn insert(&self, key: BatchKey, plan: Arc<FramePlan>) {
        self.lru.insert(key, plan);
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        self.lru.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_cluster::ClusterSpec;
    use mgpu_voldata::Dataset;
    use mgpu_volren::RenderConfig;

    fn plan_for(gpus: u32) -> (BatchKey, Arc<FramePlan>) {
        let spec = ClusterSpec::accelerator_cluster(gpus);
        let volume = Dataset::Skull.volume(16);
        let cfg = RenderConfig::test_size(16);
        let key = BatchKey::new(&spec, &volume, &cfg);
        let plan = Arc::new(FramePlan::prepare(&spec, &volume, &cfg));
        (key, plan)
    }

    #[test]
    fn caches_and_evicts_plans() {
        let cache = PlanCache::new(1);
        let (k1, p1) = plan_for(1);
        let (k2, p2) = plan_for(2);
        assert!(cache.get(&k1).is_none());
        cache.insert(k1.clone(), Arc::clone(&p1));
        let hit = cache.get(&k1).expect("cached plan");
        assert!(Arc::ptr_eq(&hit, &p1), "must hand back the same plan");
        cache.insert(k2.clone(), p2);
        assert!(cache.get(&k1).is_none(), "capacity 1: k1 evicted");
        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.hits, 1);
        // p1 is still alive and renderable through our Arc even though the
        // cache dropped it.
        assert!(p1.brick_count() > 0);
    }

    #[test]
    fn zero_capacity_disables_reuse() {
        let cache = PlanCache::new(0);
        let (k, p) = plan_for(1);
        cache.insert(k.clone(), p);
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.snapshot(), CacheSnapshot::default());
    }
}
