//! The one render-service contract: [`RenderBackend`].
//!
//! The paper's premise is that the same Map/Reduce pipeline scales
//! transparently from one GPU to a cluster. Above the renderer this crate
//! grew three similar-but-incompatible front-ends — [`RenderService`]
//! (one process, one queue), [`ShardedService`] (N in-process shards) and
//! the network client in `mgpu-net` — each with its own submit spelling,
//! ticket type and error enum, so moving a caller from in-process to
//! cross-process rendering meant rewriting it. [`RenderBackend`] collapses
//! those surfaces into one trait: `submit` / `try_submit` / blocking
//! `render`, ticket redemption, `report` and `shutdown`, with one error
//! vocabulary ([`BackendError`]) and one delivered-frame type
//! ([`BackendFrame`]). Callers written against the trait run unchanged on
//! any backend — and a single generic equivalence harness proves every
//! backend's frames bit-identical to direct renders.
//!
//! Backends in this workspace:
//!
//! | backend                      | crate       | scope                          |
//! |------------------------------|-------------|--------------------------------|
//! | [`RenderService`]            | `mgpu-serve`| one process, one queue         |
//! | [`ShardedService`]           | `mgpu-serve`| N in-process shards            |
//! | `RemoteBackend`              | `mgpu-net`  | one server over TCP            |
//! | `NodePool`                   | `mgpu-net`  | N servers behind a directory   |

use std::sync::Arc;
use std::time::Duration;

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::config::RenderConfig;
use mgpu_volren::{Image, RenderReport};

use crate::queue::AdmissionError;
use crate::session::SceneSession;
use crate::{
    FrameError, FrameTicket, RenderService, RenderedFrame, SceneRequest, ServiceReport,
    ShardedService,
};

/// Every way a backend can refuse or fail a request — the union of the
/// in-process error types and the transport failures only remote backends
/// can produce. In-process backends never return the transport arms, so
/// callers that only ever run locally can still match exhaustively and
/// treat `Transport`/`Unsupported` as unreachable.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// Admission control shed the submission (`try_submit` path; the
    /// blocking forms wait for capacity instead).
    Admission(AdmissionError),
    /// A server-door rate limiter refused the request; retry no sooner
    /// than `retry_after`. Produced by remote backends only (in-process
    /// services have no door).
    Throttled { retry_after: Duration },
    /// The session holds too many un-redeemed tickets server-side; redeem
    /// some, then retry (remote backends only).
    TicketsFull { outstanding: u64, limit: u64 },
    /// The render itself failed (e.g. a caught render panic); the message
    /// is exactly what a local `FrameTicket::wait_result` would report.
    Render(FrameError),
    /// The connection to a remote backend failed (or the peer broke
    /// protocol) and the retry budget, if any, is exhausted.
    Transport(String),
    /// The request cannot be represented by this backend (e.g. a volume too
    /// large to ship over the wire). The request is wrong for this backend,
    /// not transiently unlucky — retrying cannot help.
    Unsupported(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Admission(err) => write!(f, "admission rejected: {err}"),
            BackendError::Throttled { retry_after } => {
                write!(
                    f,
                    "rate limited: retry in {:.3} s",
                    retry_after.as_secs_f64()
                )
            }
            BackendError::TicketsFull { outstanding, limit } => {
                write!(
                    f,
                    "session holds {outstanding} un-redeemed tickets (limit {limit})"
                )
            }
            BackendError::Render(err) => write!(f, "render failed: {err}"),
            BackendError::Transport(what) => write!(f, "transport failure: {what}"),
            BackendError::Unsupported(what) => write!(f, "unsupported request: {what}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<AdmissionError> for BackendError {
    fn from(err: AdmissionError) -> BackendError {
        BackendError::Admission(err)
    }
}

impl From<FrameError> for BackendError {
    fn from(err: FrameError) -> BackendError {
        BackendError::Render(err)
    }
}

/// A delivered frame in backend-neutral form. Cheap to clone; the pixels
/// are bit-identical to a direct `mgpu_volren::render` of the same request
/// on every backend (the generic equivalence harness locks this).
#[derive(Debug, Clone)]
pub struct BackendFrame {
    pub image: Arc<Image>,
    /// Served from a frame cache (no render happened for this request).
    pub from_cache: bool,
    /// Simulated (DES) frame time on the modeled cluster; zero for cache
    /// hits, which re-deliver a previously rendered frame.
    pub sim_frame: Duration,
    /// The full per-frame render report — carried by in-process backends;
    /// `None` for frames that crossed the wire (the protocol ships the
    /// simulated frame time, not the whole report).
    pub report: Option<Arc<RenderReport>>,
}

impl From<RenderedFrame> for BackendFrame {
    fn from(frame: RenderedFrame) -> BackendFrame {
        let sim_frame = if frame.from_cache {
            Duration::ZERO
        } else {
            Duration::from_nanos(frame.report.runtime().nanos())
        };
        BackendFrame {
            image: frame.image,
            from_cache: frame.from_cache,
            sim_frame,
            report: Some(frame.report),
        }
    }
}

/// The unified render-service contract: everything a caller needs to drive
/// a renderer, independent of where it runs. See the module docs for the
/// backends; see [`SceneSession`] for the per-scene convenience layer that
/// works over any backend.
///
/// Semantics every implementation upholds:
///
/// * **Determinism** — a delivered frame is bit-identical to a direct
///   `mgpu_volren::render` call with the same request.
/// * **`submit` blocks, `try_submit` sheds** — `submit` waits out admission
///   bounds (remote backends retry within their budget), `try_submit`
///   returns [`BackendError::Admission`] immediately under overload.
/// * **Tickets redeem once** — [`RenderBackend::redeem`] consumes the
///   ticket. In-process tickets make double redemption unrepresentable
///   (the ticket type is affine); remote backends answer a typed error.
pub trait RenderBackend {
    /// Handle to one submitted frame; redeem with [`RenderBackend::redeem`].
    type Ticket;

    /// Submit one frame request, blocking while the backend is at its
    /// admission bound, and return a ticket for later redemption.
    fn submit(&self, request: SceneRequest) -> Result<Self::Ticket, BackendError>;

    /// Submit without blocking: under overload the request is shed with
    /// [`BackendError::Admission`] (or [`BackendError::Throttled`] at a
    /// remote server's door) instead of waiting.
    fn try_submit(&self, request: SceneRequest) -> Result<Self::Ticket, BackendError>;

    /// Block until a submitted frame is ready. A ticket redeems exactly
    /// once.
    fn redeem(&self, ticket: Self::Ticket) -> Result<BackendFrame, BackendError>;

    /// Render one frame, blocking until it is delivered — submit + redeem
    /// in one call.
    fn render(&self, request: SceneRequest) -> Result<BackendFrame, BackendError> {
        let ticket = self.submit(request)?;
        self.redeem(ticket)
    }

    /// Point-in-time accounting, merged over everything behind this
    /// backend (shards, nodes). Remote backends fetch it over the wire,
    /// hence the `Result`.
    fn report(&self) -> Result<ServiceReport, BackendError>;

    /// Stop this backend and return its final accounting, best-effort for
    /// remote backends. In-process services drain their queues (every
    /// ticket submitted before the call still resolves); remote backends
    /// disconnect — the server keeps running for its other clients.
    fn shutdown(self) -> ServiceReport
    where
        Self: Sized;

    /// Open a session bound to one (cluster, volume, config) — the
    /// ergonomic way to request many frames of one dataset, over any
    /// backend.
    fn session(
        &self,
        spec: ClusterSpec,
        volume: Volume,
        config: RenderConfig,
    ) -> SceneSession<'_, Self>
    where
        Self: Sized,
    {
        SceneSession::over(self, spec, volume, config)
    }
}

impl RenderBackend for RenderService {
    type Ticket = FrameTicket;

    fn submit(&self, request: SceneRequest) -> Result<FrameTicket, BackendError> {
        Ok(RenderService::submit(self, request))
    }

    fn try_submit(&self, request: SceneRequest) -> Result<FrameTicket, BackendError> {
        RenderService::try_submit(self, request).map_err(BackendError::from)
    }

    fn redeem(&self, ticket: FrameTicket) -> Result<BackendFrame, BackendError> {
        ticket
            .wait_result()
            .map(BackendFrame::from)
            .map_err(BackendError::from)
    }

    fn report(&self) -> Result<ServiceReport, BackendError> {
        Ok(RenderService::report(self))
    }

    fn shutdown(self) -> ServiceReport {
        RenderService::shutdown(self)
    }
}

impl RenderBackend for ShardedService {
    type Ticket = FrameTicket;

    fn submit(&self, request: SceneRequest) -> Result<FrameTicket, BackendError> {
        Ok(ShardedService::submit(self, request))
    }

    fn try_submit(&self, request: SceneRequest) -> Result<FrameTicket, BackendError> {
        ShardedService::try_submit(self, request).map_err(BackendError::from)
    }

    fn redeem(&self, ticket: FrameTicket) -> Result<BackendFrame, BackendError> {
        ticket
            .wait_result()
            .map(BackendFrame::from)
            .map_err(BackendError::from)
    }

    fn report(&self) -> Result<ServiceReport, BackendError> {
        Ok(ShardedService::report(self))
    }

    fn shutdown(self) -> ServiceReport {
        ShardedService::shutdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Priority, QueueBounds, ServiceConfig};
    use mgpu_voldata::Dataset;
    use mgpu_volren::camera::Scene;
    use mgpu_volren::TransferFunction;

    fn request(volume: &Volume, az: f32, priority: Priority) -> SceneRequest {
        SceneRequest {
            spec: ClusterSpec::accelerator_cluster(1),
            volume: volume.clone(),
            scene: Scene::orbit(volume, az, 10.0, TransferFunction::bone()),
            config: RenderConfig::test_size(16),
            priority,
        }
    }

    /// The same generic driver runs both in-process backends — the
    /// crate-level seed of the facade's four-backend harness.
    fn drive<B: RenderBackend>(backend: B) {
        let volume = Dataset::Skull.volume(8);
        let frame = backend
            .render(request(&volume, 30.0, Priority::Normal))
            .expect("render through the trait");
        assert!(!frame.from_cache);
        assert!(frame.report.is_some(), "local backends carry the report");
        assert!(frame.sim_frame > Duration::ZERO);

        // The repeat view resolves from the frame cache, sim time zero.
        let again = backend
            .render(request(&volume, 30.0, Priority::Normal))
            .expect("cached render");
        assert!(again.from_cache);
        assert_eq!(again.sim_frame, Duration::ZERO);
        assert_eq!(again.image, frame.image);

        let ticket = backend
            .try_submit(request(&volume, 75.0, Priority::Normal))
            .expect("try_submit under no load");
        let fresh = backend.redeem(ticket).expect("redeem");
        assert!(!fresh.from_cache);

        let report = RenderBackend::report(&backend).expect("local report");
        assert_eq!(report.frames_completed, 3);
        let end = backend.shutdown();
        assert_eq!(end.frames_completed, 3);
        assert_eq!(end.frames_failed, 0);
    }

    #[test]
    fn render_service_implements_the_contract() {
        drive(RenderService::start(ServiceConfig::default()));
    }

    #[test]
    fn sharded_service_implements_the_contract() {
        drive(ShardedService::start(2, ServiceConfig::default()));
    }

    #[test]
    fn try_submit_sheds_with_the_shared_error_type() {
        let service = RenderService::start(ServiceConfig {
            workers: 1,
            start_paused: true,
            queue_bounds: QueueBounds::uniform(1),
            cache_frames: 0,
            ..ServiceConfig::default()
        });
        let volume = Dataset::Skull.volume(8);
        let first = RenderBackend::try_submit(&service, request(&volume, 0.0, Priority::Normal))
            .expect("first fills the queue");
        match RenderBackend::try_submit(&service, request(&volume, 40.0, Priority::Normal)) {
            Err(BackendError::Admission(err)) => {
                assert_eq!(err.priority, Priority::Normal);
                assert_eq!((err.queued, err.limit), (1, 1));
            }
            other => panic!("expected admission shedding, got {other:?}"),
        }
        service.resume();
        RenderBackend::redeem(&service, first).expect("admitted frame renders");
        service.shutdown();
    }

    #[test]
    fn render_failures_surface_as_the_shared_render_error() {
        let service = RenderService::start(ServiceConfig::default());
        let volume = Dataset::Skull.volume(8);
        let mut poison = request(&volume, 0.0, Priority::Normal);
        poison.config.image = (0, 0); // render panics; the worker survives
        match RenderBackend::render(&service, poison) {
            Err(BackendError::Render(err)) => {
                assert!(err.message().contains("render panicked"), "{err}");
            }
            other => panic!("expected a render failure, got {other:?}"),
        }
        assert_eq!(service.shutdown().frames_failed, 1);
    }

    #[test]
    fn error_display_is_descriptive() {
        let shed = BackendError::Admission(AdmissionError {
            priority: Priority::Batch,
            queued: 4,
            limit: 4,
        });
        assert!(shed.to_string().contains("queue full"));
        assert!(BackendError::Throttled {
            retry_after: Duration::from_millis(250)
        }
        .to_string()
        .contains("0.250"));
        assert!(BackendError::Transport("peer vanished".into())
            .to_string()
            .contains("peer vanished"));
        assert!(BackendError::Unsupported("volume too large".into())
            .to_string()
            .contains("volume too large"));
    }
}
