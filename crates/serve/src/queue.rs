//! The prioritized job queue feeding the worker pool.
//!
//! Jobs carry a [`Priority`] and a monotonic sequence number; workers always
//! pop the highest-priority job, FIFO within a priority level — interactive
//! view changes overtake queued batch sweeps without starving them
//! (everything at one level drains in submission order).
//!
//! The queue also supports *selective* draining: after popping a job, a
//! worker pulls further queued jobs with the same batch key so same-volume
//! frames render as one batch over a shared brick store (see
//! [`crate::batch`]). A linear scan under the lock keeps the structure
//! trivially correct; service queues are short-lived and small.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crossbeam::channel::Sender;

use crate::batch::BatchKey;
use crate::{RenderedFrame, SceneRequest};

/// Scheduling class of a job. Higher pops first; FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Offline sweeps, pre-warming: yields to everything else.
    Batch,
    /// The default service class.
    #[default]
    Normal,
    /// Interactive view changes: pops before all other work.
    Interactive,
}

/// One queued frame request with its reply channel and bookkeeping.
#[derive(Debug)]
pub struct QueuedJob {
    pub seq: u64,
    pub priority: Priority,
    pub enqueued: Instant,
    pub request: SceneRequest,
    pub batch_key: BatchKey,
    pub reply: Sender<RenderedFrame>,
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: Vec<QueuedJob>,
    next_seq: u64,
    closed: bool,
    paused: bool,
}

impl QueueState {
    /// Index of the next job to pop: max priority, min seq.
    fn best(&self) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.seq)))
            .map(|(i, _)| i)
    }
}

/// A blocking, prioritized MPMC queue (mutex + condvar; submissions never
/// block, workers block in [`JobQueue::pop`]).
#[derive(Debug, Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl JobQueue {
    pub fn new(paused: bool) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                paused,
                ..QueueState::default()
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a request; returns its sequence number.
    ///
    /// Panics if the queue is closed (the service is shutting down).
    pub fn push(
        &self,
        request: SceneRequest,
        batch_key: BatchKey,
        reply: Sender<RenderedFrame>,
    ) -> u64 {
        let mut state = self.state.lock().unwrap();
        assert!(!state.closed, "cannot submit to a shut-down render service");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.jobs.push(QueuedJob {
            seq,
            priority: request.priority,
            enqueued: Instant::now(),
            request,
            batch_key,
            reply,
        });
        drop(state);
        self.ready.notify_one();
        seq
    }

    /// Block until a job is available (highest priority, FIFO within equal
    /// priority) or the queue is closed *and* drained — then `None`.
    ///
    /// While paused, pop blocks even if jobs are queued, unless the queue is
    /// closed (shutdown always drains).
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            let runnable = !state.paused || state.closed;
            if runnable {
                if let Some(i) = state.best() {
                    return Some(state.jobs.swap_remove(i));
                }
                if state.closed {
                    return None;
                }
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Remove up to `max` further queued jobs with the given batch key, in
    /// submission order (the batch a worker co-renders with a popped job).
    pub fn drain_matching(&self, key: &BatchKey, max: usize) -> Vec<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        let mut picked: Vec<QueuedJob> = Vec::new();
        while picked.len() < max {
            let next = state
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.batch_key == *key)
                .min_by_key(|(_, j)| j.seq)
                .map(|(i, _)| i);
            match next {
                Some(i) => picked.push(state.jobs.swap_remove(i)),
                None => break,
            }
        }
        picked
    }

    /// Pause or resume popping. Resuming wakes all workers.
    pub fn set_paused(&self, paused: bool) {
        self.state.lock().unwrap().paused = paused;
        if !paused {
            self.ready.notify_all();
        }
    }

    /// Close the queue: no further pushes; pops drain what is left, then
    /// return `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    pub fn len(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchKey;
    use mgpu_cluster::ClusterSpec;
    use mgpu_voldata::Dataset;
    use mgpu_volren::camera::Scene;
    use mgpu_volren::{RenderConfig, TransferFunction};

    fn request(priority: Priority) -> SceneRequest {
        let volume = Dataset::Skull.volume(8);
        SceneRequest {
            spec: ClusterSpec::accelerator_cluster(1),
            scene: Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()),
            config: RenderConfig::test_size(8),
            volume,
            priority,
        }
    }

    fn push(q: &JobQueue, priority: Priority, key: &str) -> u64 {
        // The receiver drops immediately: queue tests never send replies.
        let (tx, _rx) = crossbeam::channel::bounded(1);
        q.push(request(priority), BatchKey::synthetic(key), tx)
    }

    #[test]
    fn fifo_within_priority_and_priority_wins() {
        let q = JobQueue::new(false);
        let a = push(&q, Priority::Normal, "k");
        let b = push(&q, Priority::Normal, "k");
        let c = push(&q, Priority::Interactive, "k");
        let d = push(&q, Priority::Batch, "k");
        let e = push(&q, Priority::Interactive, "k");
        let order: Vec<u64> = (0..5).map(|_| q.pop().unwrap().seq).collect();
        // Interactive first (FIFO: c before e), then Normal (a before b),
        // then Batch.
        assert_eq!(order, vec![c, e, a, b, d]);
    }

    #[test]
    fn drain_matching_picks_only_the_key_in_seq_order() {
        let q = JobQueue::new(false);
        let a = push(&q, Priority::Normal, "x");
        let _b = push(&q, Priority::Normal, "y");
        let c = push(&q, Priority::Interactive, "x");
        let d = push(&q, Priority::Batch, "x");
        let drained = q.drain_matching(&BatchKey::synthetic("x"), 2);
        let seqs: Vec<u64> = drained.iter().map(|j| j.seq).collect();
        // Seq order regardless of priority: a then c; d stays queued.
        assert_eq!(seqs, vec![a, c]);
        assert_eq!(q.len(), 2);
        let rest = q.drain_matching(&BatchKey::synthetic("x"), 8);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, d);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(false);
        push(&q, Priority::Normal, "k");
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn paused_queue_blocks_until_resumed() {
        let q = std::sync::Arc::new(JobQueue::new(true));
        push(&q, Priority::Normal, "k");
        let q2 = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop().map(|j| j.seq));
        // Give the popper a moment to block, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "pop must block while paused");
        q.set_paused(false);
        assert_eq!(handle.join().unwrap(), Some(0));
    }

    #[test]
    #[should_panic(expected = "shut-down render service")]
    fn push_after_close_panics() {
        let q = JobQueue::new(false);
        q.close();
        push(&q, Priority::Normal, "k");
    }
}
