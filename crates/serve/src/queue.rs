//! The prioritized, admission-controlled job queue feeding the worker pool.
//!
//! Jobs carry a [`Priority`] and a monotonic sequence number; workers always
//! pop the highest-priority job, FIFO within a priority level — interactive
//! view changes overtake queued batch sweeps without starving them
//! (everything at one level drains in submission order).
//!
//! **Admission control**: the queue enforces per-priority depth bounds
//! ([`QueueBounds`]). A class's bound caps the *total* queue depth that
//! class may push into, and the bounds are ordered `batch ≤ normal ≤
//! interactive` — so as the queue fills under sustained overload, `Batch`
//! submissions are shed first, `Normal` next, and `Interactive` last.
//! [`JobQueue::try_push`] rejects with [`AdmissionError`];
//! [`JobQueue::push`] blocks until a worker frees capacity.
//!
//! The queue also supports *selective* draining: after popping a job, a
//! worker pulls further queued jobs with the same batch key so same-volume
//! frames render as one batch over a shared brick store (see
//! [`crate::batch`]). The job list is kept in submission (sequence) order,
//! so draining is a single order-preserving pass — no quadratic rescans
//! under the lock.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crossbeam::channel::Sender;
use mgpu_obs::names;
use mgpu_obs::{Gauge, Trace};

use crate::batch::BatchKey;
use crate::{FrameError, FrameResult, SceneRequest};

/// Where a job's [`FrameResult`] goes when a worker resolves it: either a
/// ticket channel (the [`crate::FrameTicket`] path) or a completion hook —
/// an arbitrary `FnOnce` invoked on the worker thread. Hooks are what an
/// event-driven front-end hands in so render completions land in *its*
/// completion queue instead of parking a waiter thread per frame (see
/// [`crate::RenderService::try_submit_with`]).
pub struct Reply(ReplyKind);

enum ReplyKind {
    Channel(Sender<FrameResult>),
    /// `Option` so delivery can move the closure out; if the job is dropped
    /// without delivering, `Drop` fires the hook with [`FrameError::lost`]
    /// so a front-end waiting on the completion never hangs.
    Hook(Option<Box<dyn FnOnce(FrameResult) + Send>>),
}

impl Reply {
    /// Deliver through a bounded(1) ticket channel.
    pub fn channel(tx: Sender<FrameResult>) -> Reply {
        Reply(ReplyKind::Channel(tx))
    }

    /// Deliver by invoking `hook` on the resolving worker thread. Keep the
    /// hook cheap and non-blocking-ish (push to a queue, wake a loop): it
    /// runs inside the render worker's loop.
    pub fn hook(hook: impl FnOnce(FrameResult) + Send + 'static) -> Reply {
        Reply(ReplyKind::Hook(Some(Box::new(hook))))
    }

    /// Discard without delivering: the caller reports the outcome
    /// out-of-band (e.g. a typed admission rejection), so the lost-job
    /// guard must not fire.
    pub fn cancel(mut self) {
        if let ReplyKind::Hook(hook) = &mut self.0 {
            hook.take();
        }
    }

    /// Resolve the job. A dropped ticket receiver is fine (the frame is
    /// cached anyway); a hook always runs exactly once.
    pub fn deliver(mut self, result: FrameResult) {
        match &mut self.0 {
            ReplyKind::Channel(tx) => {
                let _ = tx.send(result);
            }
            ReplyKind::Hook(hook) => {
                if let Some(hook) = hook.take() {
                    hook(result);
                }
            }
        }
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let ReplyKind::Hook(hook) = &mut self.0 {
            if let Some(hook) = hook.take() {
                hook(Err(FrameError::lost()));
            }
        }
    }
}

impl std::fmt::Debug for Reply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            ReplyKind::Channel(_) => f.write_str("Reply::Channel"),
            ReplyKind::Hook(_) => f.write_str("Reply::Hook"),
        }
    }
}

/// Scheduling class of a job. Higher pops first; FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Offline sweeps, pre-warming: yields to everything else.
    Batch,
    /// The default service class.
    #[default]
    Normal,
    /// Interactive view changes: pops before all other work.
    Interactive,
}

impl Priority {
    /// All classes, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Normal, Priority::Interactive];

    /// Dense index (Batch = 0, Normal = 1, Interactive = 2).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-priority admission bounds: the maximum total queue depth a class may
/// still submit into. `usize::MAX` (the default) means unbounded.
///
/// Bounds must satisfy `batch ≤ normal ≤ interactive`: under load the queue
/// then sheds the least urgent work first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueBounds {
    pub batch: usize,
    pub normal: usize,
    pub interactive: usize,
}

impl Default for QueueBounds {
    fn default() -> QueueBounds {
        QueueBounds {
            batch: usize::MAX,
            normal: usize::MAX,
            interactive: usize::MAX,
        }
    }
}

impl QueueBounds {
    /// The same bound for every class (no priority shedding, just a cap).
    pub fn uniform(depth: usize) -> QueueBounds {
        QueueBounds {
            batch: depth,
            normal: depth,
            interactive: depth,
        }
    }

    /// The queue depth this class may still push into.
    pub fn limit(&self, priority: Priority) -> usize {
        match priority {
            Priority::Batch => self.batch,
            Priority::Normal => self.normal,
            Priority::Interactive => self.interactive,
        }
    }

    /// Panics unless `batch ≤ normal ≤ interactive`.
    pub fn validate(&self) {
        assert!(
            self.batch <= self.normal && self.normal <= self.interactive,
            "queue bounds must shed lower priorities first \
             (batch ≤ normal ≤ interactive), got {self:?}"
        );
    }
}

/// A submission the queue refused because the caller's priority class is at
/// its depth bound. Retry later, drop the frame, or use the blocking submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionError {
    pub priority: Priority,
    /// Queue depth observed at rejection time.
    pub queued: usize,
    /// The depth bound for this priority class.
    pub limit: usize,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue full for {:?} submissions: {} jobs queued, limit {}",
            self.priority, self.queued, self.limit
        )
    }
}

impl std::error::Error for AdmissionError {}

/// One queued frame request with its reply destination and bookkeeping.
#[derive(Debug)]
pub struct QueuedJob {
    pub seq: u64,
    pub priority: Priority,
    pub enqueued: Instant,
    pub request: SceneRequest,
    pub batch_key: BatchKey,
    pub reply: Reply,
    /// The request's end-to-end trace: the worker records the queue/plan/
    /// render spans into it, and the renderer adds stage/kernel/composite
    /// via the thread-local [`mgpu_obs::trace::scope`].
    pub trace: Arc<Trace>,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Always in ascending `seq` (= submission) order: pops and drains use
    /// order-preserving removal, so FIFO scans never need sorting.
    jobs: Vec<QueuedJob>,
    /// Queued jobs per priority class (indexed by [`Priority::index`]).
    depths: [usize; 3],
    next_seq: u64,
    closed: bool,
    paused: bool,
}

impl QueueState {
    /// Index of the next job to pop: first (= min seq) job of the highest
    /// priority class present. One forward pass over the seq-ordered list.
    fn best(&self) -> Option<usize> {
        let mut best: Option<(Priority, usize)> = None;
        for (i, job) in self.jobs.iter().enumerate() {
            if best.is_none_or(|(p, _)| job.priority > p) {
                best = Some((job.priority, i));
                if job.priority == Priority::Interactive {
                    break; // nothing outranks it
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn remove(&mut self, index: usize) -> QueuedJob {
        let job = self.jobs.remove(index); // preserves seq order
        self.depths[job.priority.index()] -= 1;
        job
    }
}

/// A blocking, prioritized, bounded MPMC queue (mutex + condvars; workers
/// block in [`JobQueue::pop`], submitters in [`JobQueue::push`] when their
/// class is at its bound).
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    /// Signalled when a job arrives (or the queue closes/resumes).
    ready: Condvar,
    /// Signalled when capacity frees up (pop/drain) or the queue closes.
    space: Condvar,
    bounds: QueueBounds,
    /// Process-global `serve.queue_depth` gauge: incremented on enqueue,
    /// decremented on pop/drain, so `obs_top` sees the live backlog across
    /// every queue in the process.
    depth_gauge: Arc<Gauge>,
}

impl JobQueue {
    pub fn new(paused: bool, bounds: QueueBounds) -> JobQueue {
        bounds.validate();
        JobQueue {
            state: Mutex::new(QueueState {
                paused,
                ..QueueState::default()
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            bounds,
            depth_gauge: mgpu_obs::global().gauge(names::SERVE_QUEUE_DEPTH),
        }
    }

    pub fn bounds(&self) -> QueueBounds {
        self.bounds
    }

    /// Enqueue a request, blocking while this priority class is at its
    /// admission bound; returns the job's sequence number.
    ///
    /// Panics if the queue is closed (the service is shutting down) — before
    /// or while blocked. Note that a *paused* queue never frees capacity, so
    /// a bounded, paused queue should be fed through [`JobQueue::try_push`].
    pub fn push(
        &self,
        request: SceneRequest,
        batch_key: BatchKey,
        reply: Reply,
        trace: Arc<Trace>,
    ) -> u64 {
        let limit = self.bounds.limit(request.priority);
        let mut state = self.state.lock().unwrap();
        loop {
            assert!(!state.closed, "cannot submit to a shut-down render service");
            if state.jobs.len() < limit {
                return self.enqueue(&mut state, request, batch_key, reply, trace);
            }
            state = self.space.wait(state).unwrap();
        }
    }

    /// Enqueue a request, rejecting immediately with [`AdmissionError`] if
    /// this priority class is at its admission bound. Rejection hands the
    /// reply back so the caller decides how to fail it (a hook must not
    /// fire its lost-job guard for a job that was never accepted).
    ///
    /// Panics if the queue is closed (the service is shutting down).
    pub fn try_push(
        &self,
        request: SceneRequest,
        batch_key: BatchKey,
        reply: Reply,
        trace: Arc<Trace>,
    ) -> Result<u64, (AdmissionError, Reply)> {
        let limit = self.bounds.limit(request.priority);
        let mut state = self.state.lock().unwrap();
        assert!(!state.closed, "cannot submit to a shut-down render service");
        if state.jobs.len() >= limit {
            return Err((
                AdmissionError {
                    priority: request.priority,
                    queued: state.jobs.len(),
                    limit,
                },
                reply,
            ));
        }
        Ok(self.enqueue(&mut state, request, batch_key, reply, trace))
    }

    fn enqueue(
        &self,
        state: &mut QueueState,
        request: SceneRequest,
        batch_key: BatchKey,
        reply: Reply,
        trace: Arc<Trace>,
    ) -> u64 {
        let seq = state.next_seq;
        state.next_seq += 1;
        state.depths[request.priority.index()] += 1;
        state.jobs.push(QueuedJob {
            seq,
            priority: request.priority,
            enqueued: Instant::now(),
            request,
            batch_key,
            reply,
            trace,
        });
        self.depth_gauge.inc();
        self.ready.notify_one();
        seq
    }

    /// Block until a job is available (highest priority, FIFO within equal
    /// priority) or the queue is closed *and* drained — then `None`.
    ///
    /// While paused, pop blocks even if jobs are queued, unless the queue is
    /// closed (shutdown always drains).
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            let runnable = !state.paused || state.closed;
            if runnable {
                if let Some(i) = state.best() {
                    let job = state.remove(i);
                    self.depth_gauge.dec();
                    self.space.notify_all();
                    return Some(job);
                }
                if state.closed {
                    return None;
                }
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Remove up to `max` further queued jobs with the given batch key, in
    /// submission order (the batch a worker co-renders with a popped job).
    /// Single order-preserving pass over the queue.
    pub fn drain_matching(&self, key: &BatchKey, max: usize) -> Vec<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        let mut picked: Vec<QueuedJob> = Vec::new();
        if max == 0 {
            return picked;
        }
        let mut kept: Vec<QueuedJob> = Vec::with_capacity(state.jobs.len());
        for job in state.jobs.drain(..) {
            if picked.len() < max && job.batch_key == *key {
                picked.push(job);
            } else {
                kept.push(job);
            }
        }
        state.jobs = kept;
        for job in &picked {
            state.depths[job.priority.index()] -= 1;
        }
        if !picked.is_empty() {
            self.depth_gauge.add(-(picked.len() as i64));
            self.space.notify_all();
        }
        picked
    }

    /// Pause or resume popping. Resuming wakes all workers.
    pub fn set_paused(&self, paused: bool) {
        self.state.lock().unwrap().paused = paused;
        if !paused {
            self.ready.notify_all();
        }
    }

    /// Close the queue: no further pushes (blocked pushers panic); pops
    /// drain what is left, then return `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    pub fn len(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// Queued jobs per class, `[batch, normal, interactive]`.
    pub fn depths(&self) -> [usize; 3] {
        self.state.lock().unwrap().depths
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchKey;
    use mgpu_cluster::ClusterSpec;
    use mgpu_voldata::Dataset;
    use mgpu_volren::camera::Scene;
    use mgpu_volren::{RenderConfig, TransferFunction};

    fn request(priority: Priority) -> SceneRequest {
        let volume = Dataset::Skull.volume(8);
        SceneRequest {
            spec: ClusterSpec::accelerator_cluster(1),
            scene: Scene::orbit(&volume, 0.0, 0.0, TransferFunction::bone()),
            config: RenderConfig::test_size(8),
            volume,
            priority,
        }
    }

    fn push(q: &JobQueue, priority: Priority, key: &str) -> u64 {
        // The receiver drops immediately: queue tests never send replies.
        let (tx, _rx) = crossbeam::channel::bounded(1);
        q.push(
            request(priority),
            BatchKey::synthetic(key),
            Reply::channel(tx),
            Trace::detached(0),
        )
    }

    fn try_push(q: &JobQueue, priority: Priority, key: &str) -> Result<u64, AdmissionError> {
        let (tx, _rx) = crossbeam::channel::bounded(1);
        q.try_push(
            request(priority),
            BatchKey::synthetic(key),
            Reply::channel(tx),
            Trace::detached(0),
        )
        .map_err(|(err, reply)| {
            reply.cancel();
            err
        })
    }

    fn unbounded(paused: bool) -> JobQueue {
        JobQueue::new(paused, QueueBounds::default())
    }

    #[test]
    fn fifo_within_priority_and_priority_wins() {
        let q = unbounded(false);
        let a = push(&q, Priority::Normal, "k");
        let b = push(&q, Priority::Normal, "k");
        let c = push(&q, Priority::Interactive, "k");
        let d = push(&q, Priority::Batch, "k");
        let e = push(&q, Priority::Interactive, "k");
        let order: Vec<u64> = (0..5).map(|_| q.pop().unwrap().seq).collect();
        // Interactive first (FIFO: c before e), then Normal (a before b),
        // then Batch.
        assert_eq!(order, vec![c, e, a, b, d]);
    }

    #[test]
    fn drain_matching_picks_only_the_key_in_seq_order() {
        let q = unbounded(false);
        let a = push(&q, Priority::Normal, "x");
        let _b = push(&q, Priority::Normal, "y");
        let c = push(&q, Priority::Interactive, "x");
        let d = push(&q, Priority::Batch, "x");
        let drained = q.drain_matching(&BatchKey::synthetic("x"), 2);
        let seqs: Vec<u64> = drained.iter().map(|j| j.seq).collect();
        // Seq order regardless of priority: a then c; d stays queued.
        assert_eq!(seqs, vec![a, c]);
        assert_eq!(q.len(), 2);
        let rest = q.drain_matching(&BatchKey::synthetic("x"), 8);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, d);
    }

    /// Pops in the middle of the queue must not scramble submission order
    /// for later drains (the old swap-remove implementation did).
    #[test]
    fn drain_stays_fifo_after_interleaved_pops() {
        let q = unbounded(false);
        let mut x_seqs = Vec::new();
        for i in 0..12u64 {
            // Interleave an interactive "y" job among normal "x" jobs so the
            // pops below remove from the middle of the list.
            if i % 3 == 1 {
                push(&q, Priority::Interactive, "y");
            } else {
                x_seqs.push(push(&q, Priority::Normal, "x"));
            }
        }
        // Pop the interactive jobs out of the middle.
        for _ in 0..4 {
            assert_eq!(q.pop().unwrap().priority, Priority::Interactive);
        }
        let drained = q.drain_matching(&BatchKey::synthetic("x"), 64);
        let seqs: Vec<u64> = drained.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, x_seqs, "drain must deliver x jobs in submit order");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = unbounded(false);
        push(&q, Priority::Normal, "k");
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn paused_queue_blocks_until_resumed() {
        let q = std::sync::Arc::new(unbounded(true));
        push(&q, Priority::Normal, "k");
        let q2 = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop().map(|j| j.seq));
        // Give the popper a moment to block, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "pop must block while paused");
        q.set_paused(false);
        assert_eq!(handle.join().unwrap(), Some(0));
    }

    #[test]
    #[should_panic(expected = "shut-down render service")]
    fn push_after_close_panics() {
        let q = unbounded(false);
        q.close();
        push(&q, Priority::Normal, "k");
    }

    #[test]
    fn bounded_queue_sheds_batch_before_normal_before_interactive() {
        let q = JobQueue::new(
            true, // paused: depth only grows
            QueueBounds {
                batch: 1,
                normal: 2,
                interactive: 3,
            },
        );
        assert!(try_push(&q, Priority::Batch, "k").is_ok());
        // Depth 1: batch is at its bound, the others still admit.
        let err = try_push(&q, Priority::Batch, "k").unwrap_err();
        assert_eq!((err.queued, err.limit), (1, 1));
        assert_eq!(err.priority, Priority::Batch);
        assert!(try_push(&q, Priority::Normal, "k").is_ok());
        // Depth 2: normal now sheds too; interactive still admits.
        assert!(try_push(&q, Priority::Normal, "k").is_err());
        assert!(try_push(&q, Priority::Interactive, "k").is_ok());
        // Depth 3: everything sheds.
        let err = try_push(&q, Priority::Interactive, "k").unwrap_err();
        assert_eq!((err.queued, err.limit), (3, 3));
        assert_eq!(q.depths(), [1, 1, 1]);
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = std::sync::Arc::new(JobQueue::new(false, QueueBounds::uniform(1)));
        push(&q, Priority::Normal, "k");
        let q2 = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || push(&q2, Priority::Normal, "k2"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "push must block at the bound");
        // A pop frees capacity and admits the blocked push.
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "shed lower priorities first")]
    fn inverted_bounds_are_rejected() {
        JobQueue::new(
            false,
            QueueBounds {
                batch: 4,
                normal: 2,
                interactive: 3,
            },
        );
    }
}
