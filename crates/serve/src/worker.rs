//! The worker pool: each worker pops the best queued job, opportunistically
//! drains compatible jobs into a batch, then renders the batch against one
//! shared [`FramePlan`].
//!
//! Per-frame determinism: pixels depend only on the request itself (volume,
//! scene, config, GPU count), never on batch composition, worker identity or
//! interleaving — `render_planned` is bit-identical to a direct `render`
//! call. Only the *timing and staging statistics* benefit from sharing.

use std::sync::Arc;

use mgpu_volren::renderer::{render_planned, FramePlan};

use crate::cache::FrameKey;
use crate::queue::QueuedJob;
use crate::report::ServiceStats;
use crate::{RenderedFrame, ServiceInner};

pub(crate) fn worker_loop(inner: Arc<ServiceInner>) {
    while let Some(first) = inner.queue.pop() {
        let mut jobs = vec![first];
        let extra = inner.config.max_batch.saturating_sub(1);
        if extra > 0 {
            jobs.extend(inner.queue.drain_matching(&jobs[0].batch_key, extra));
        }
        render_batch(&inner, jobs);
    }
}

/// Render a batch of same-key jobs over one shared plan. Jobs whose frame
/// landed in the cache since submission are answered without rendering; the
/// plan is built lazily on the first actual render.
fn render_batch(inner: &ServiceInner, jobs: Vec<QueuedJob>) {
    let stats = &inner.stats;
    let mut plan: Option<FramePlan> = None;
    for job in jobs {
        let req = &job.request;
        let key = FrameKey::new(&req.spec, &req.volume, &req.scene, &req.config);
        // Coalescing re-check: an identical request may have rendered since
        // this one was queued (recheck: the submit path already counted the
        // miss).
        if let Some(mut frame) = inner.cache.recheck(&key) {
            frame.from_cache = true;
            ServiceStats::bump(&stats.cache_hits);
            ServiceStats::bump(&stats.frames_completed);
            let _ = job.reply.send(frame);
            continue;
        }

        ServiceStats::add(
            &stats.queue_wait_nanos,
            job.enqueued.elapsed().as_nanos() as u64,
        );
        let plan = plan.get_or_insert_with(|| {
            ServiceStats::bump(&stats.batches);
            FramePlan::prepare(&req.spec, &req.volume, &req.config)
        });
        let outcome = render_planned(&req.spec, plan, &req.scene, &req.config);
        ServiceStats::add(&stats.brick_stagings, outcome.report.store.misses);
        ServiceStats::add(&stats.brick_reuses, outcome.report.store.hits);
        ServiceStats::add(&stats.sim_frame_nanos, outcome.report.runtime().nanos());
        ServiceStats::bump(&stats.batched_frames);
        ServiceStats::bump(&stats.frames_rendered);
        ServiceStats::bump(&stats.frames_completed);

        let frame = RenderedFrame {
            image: Arc::new(outcome.image),
            report: Arc::new(outcome.report),
            from_cache: false,
        };
        inner.cache.insert(key, frame.clone());
        // A dropped ticket is fine: the frame is already cached.
        let _ = job.reply.send(frame);
    }
}
