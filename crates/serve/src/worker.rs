//! The worker pool: each worker pops the best queued job, opportunistically
//! drains compatible jobs into a batch, then renders the batch against one
//! shared [`FramePlan`] — taken from the cross-batch plan cache when warm,
//! prepared (and published) on a cache miss.
//!
//! Per-frame determinism: pixels depend only on the request itself (volume,
//! scene, config, GPU count), never on batch composition, worker identity,
//! plan-cache state or interleaving — `render_planned` is bit-identical to a
//! direct `render` call. Only the *timing and staging statistics* benefit
//! from sharing.
//!
//! Fault containment: a panic inside plan preparation or `render_planned`
//! is caught per job. The affected job resolves to an explicit
//! [`FrameError`] (its ticket reports the panic message instead of a
//! misleading disconnect), the remaining jobs of the batch still render, and
//! the worker thread survives — the pool never shrinks under poison-pill
//! requests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use mgpu_obs::trace;
use mgpu_volren::renderer::{render_planned, FramePlan};

use crate::cache::FrameKey;
use crate::queue::QueuedJob;
use crate::report::ServiceStats;
use crate::{FrameError, RenderedFrame, ServiceInner};

pub(crate) fn worker_loop(inner: Arc<ServiceInner>) {
    while let Some(first) = inner.queue.pop() {
        let mut jobs = vec![first];
        let extra = inner.config.max_batch.saturating_sub(1);
        if extra > 0 {
            jobs.extend(inner.queue.drain_matching(&jobs[0].batch_key, extra));
        }
        // Every batch member leaves the queue NOW: stamp queue wait here —
        // for rendered *and* coalesced jobs — before any render time
        // accrues, so `mean_queue_wait` measures time queued, not time
        // waiting behind earlier frames of the same batch.
        for job in &jobs {
            inner
                .stats
                .record_wait(job.enqueued.elapsed().as_nanos() as u64);
            ServiceStats::bump(&inner.stats.jobs_popped);
            inner.stats.obs.jobs_popped.inc();
            job.trace.record_since("queue", job.enqueued);
        }
        render_batch(&inner, jobs);
    }
}

/// Render a batch of same-key jobs over one shared plan. Jobs whose frame
/// landed in the cache since submission are answered without rendering; the
/// plan comes from the plan cache (or is built and published) lazily on the
/// first actual render.
fn render_batch(inner: &ServiceInner, jobs: Vec<QueuedJob>) {
    let stats = &inner.stats;
    let mut plan: Option<Arc<FramePlan>> = None;
    let mut batch_counted = false;
    for job in jobs {
        let req = &job.request;
        let key = FrameKey::new(&req.spec, &req.volume, &req.scene, &req.config);
        // Coalescing re-check: an identical request may have rendered since
        // this one was queued (recheck: the submit path already counted the
        // miss).
        if let Some(mut frame) = inner.cache.recheck(&key) {
            frame.from_cache = true;
            ServiceStats::bump(&stats.cache_hits);
            ServiceStats::bump(&stats.frames_completed);
            stats.obs.frame_cache_hits.inc();
            stats.obs.frames_completed.inc();
            job.reply.deliver(Ok(frame));
            continue;
        }

        // Acquire the shared plan: once per batch, served from the
        // cross-batch cache when a previous batch of this key already
        // bricked the volume (its warm store then answers stagings).
        let acquired = match &plan {
            Some(shared) => Ok(Arc::clone(shared)),
            None => {
                let plan_start = Instant::now();
                let got =
                    catch_unwind(AssertUnwindSafe(|| match inner.plans.get(&job.batch_key) {
                        Some(shared) => {
                            stats.obs.plan_cache_hits.inc();
                            shared
                        }
                        None => {
                            stats.obs.plan_cache_misses.inc();
                            // The scope lets the renderer stamp its staging
                            // span onto this request's trace.
                            let fresh = Arc::new(trace::scope(&job.trace, || {
                                FramePlan::prepare(&req.spec, &req.volume, &req.config)
                            }));
                            stats
                                .obs
                                .plan_prepare_ns
                                .record_duration(plan_start.elapsed());
                            inner
                                .plans
                                .insert(job.batch_key.clone(), Arc::clone(&fresh));
                            fresh
                        }
                    }));
                job.trace.record_since("plan", plan_start);
                got
            }
        };
        let outcome = acquired.and_then(|shared| {
            plan = Some(Arc::clone(&shared));
            let render_start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                trace::scope(&job.trace, || {
                    render_planned(&req.spec, &shared, &req.scene, &req.config)
                })
            }));
            if result.is_ok() {
                job.trace.record_since("render", render_start);
                stats.obs.render_ns.record_duration(render_start.elapsed());
            }
            result
        });
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(payload) => {
                // Contain the panic: fail this job explicitly, keep the
                // worker (and the rest of the batch) alive.
                ServiceStats::bump(&stats.frames_failed);
                stats.obs.frames_failed.inc();
                job.reply
                    .deliver(Err(FrameError::from_panic(payload.as_ref())));
                continue;
            }
        };
        if !batch_counted {
            ServiceStats::bump(&stats.batches);
            stats.obs.batches.inc();
            batch_counted = true;
        }
        ServiceStats::add(&stats.brick_stagings, outcome.report.store.misses);
        ServiceStats::add(&stats.brick_reuses, outcome.report.store.hits);
        ServiceStats::add(&stats.sim_frame_nanos, outcome.report.runtime().nanos());
        ServiceStats::bump(&stats.batched_frames);
        ServiceStats::bump(&stats.frames_rendered);
        ServiceStats::bump(&stats.frames_completed);
        stats.obs.brick_stagings.add(outcome.report.store.misses);
        stats.obs.brick_reuses.add(outcome.report.store.hits);
        stats.obs.batched_frames.inc();
        stats.obs.frames_rendered.inc();
        stats.obs.frames_completed.inc();

        let frame = RenderedFrame {
            image: Arc::new(outcome.image),
            report: Arc::new(outcome.report),
            from_cache: false,
        };
        inner.cache.insert(key, frame.clone());
        // A dropped ticket is fine: the frame is already cached.
        job.reply.deliver(Ok(frame));
    }
}
