//! Client sessions: a handle bound to one (cluster, volume, config) that
//! submits frames for that scene family — the "user orbiting a dataset"
//! abstraction. All sessions share the service's queue, workers and cache,
//! so two sessions over the same volume batch and cache-share naturally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;
use mgpu_volren::TransferFunction;

use crate::queue::Priority;
use crate::{AdmissionError, FrameTicket, SceneRequest, ServiceInner};

/// A client's view of the service, pre-bound to cluster + volume + config.
pub struct SceneSession {
    inner: Arc<ServiceInner>,
    spec: ClusterSpec,
    volume: Volume,
    config: RenderConfig,
    priority: Priority,
    submitted: AtomicU64,
}

impl SceneSession {
    pub(crate) fn new(
        inner: Arc<ServiceInner>,
        spec: ClusterSpec,
        volume: Volume,
        config: RenderConfig,
    ) -> SceneSession {
        SceneSession {
            inner,
            spec,
            volume,
            config,
            priority: Priority::Normal,
            submitted: AtomicU64::new(0),
        }
    }

    /// Default priority for subsequent requests.
    pub fn with_priority(mut self, priority: Priority) -> SceneSession {
        self.priority = priority;
        self
    }

    /// Submit one frame of this session's volume under the given scene
    /// (blocking at the admission bound — see [`crate::RenderService::submit`]).
    pub fn request(&self, scene: Scene) -> FrameTicket {
        self.request_with_priority(scene, self.priority)
    }

    pub fn request_with_priority(&self, scene: Scene, priority: Priority) -> FrameTicket {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.submit(self.request_for(scene, priority))
    }

    /// Non-blocking submit: sheds with [`AdmissionError`] when this
    /// priority's class is at its queue bound.
    pub fn try_request(&self, scene: Scene) -> Result<FrameTicket, AdmissionError> {
        self.try_request_with_priority(scene, self.priority)
    }

    pub fn try_request_with_priority(
        &self,
        scene: Scene,
        priority: Priority,
    ) -> Result<FrameTicket, AdmissionError> {
        let ticket = self.inner.try_submit(self.request_for(scene, priority))?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    fn request_for(&self, scene: Scene, priority: Priority) -> SceneRequest {
        SceneRequest {
            spec: self.spec.clone(),
            volume: self.volume.clone(),
            scene,
            config: self.config.clone(),
            priority,
        }
    }

    /// Convenience: orbit this session's volume (see [`Scene::orbit`]).
    pub fn request_orbit(
        &self,
        azimuth_deg: f32,
        elevation_deg: f32,
        transfer: TransferFunction,
    ) -> FrameTicket {
        self.request(Scene::orbit(
            &self.volume,
            azimuth_deg,
            elevation_deg,
            transfer,
        ))
    }

    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Frames this session has submitted so far.
    pub fn frames_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }
}
