//! Client sessions: a handle bound to one (cluster, volume, config) that
//! submits frames for that scene family — the "user orbiting a dataset"
//! abstraction, generic over any [`RenderBackend`]. The same session code
//! drives a local [`crate::RenderService`], a [`crate::ShardedService`], or
//! the remote backends in `mgpu-net`; all sessions share whatever queue,
//! workers and caches sit behind the backend, so two sessions over the same
//! volume batch and cache-share naturally.

use std::sync::atomic::{AtomicU64, Ordering};

use mgpu_cluster::ClusterSpec;
use mgpu_voldata::Volume;
use mgpu_volren::camera::Scene;
use mgpu_volren::config::RenderConfig;
use mgpu_volren::TransferFunction;

use crate::backend::{BackendError, BackendFrame, RenderBackend};
use crate::queue::Priority;
use crate::SceneRequest;

/// A client's view of a backend, pre-bound to cluster + volume + config.
/// Obtained from [`RenderBackend::session`]; borrows the backend, so the
/// backend cannot be shut down while sessions are still live (a class of
/// use-after-shutdown bugs the old `Arc`-based session turned into runtime
/// panics is now a compile error).
pub struct SceneSession<'a, B: RenderBackend + ?Sized> {
    backend: &'a B,
    spec: ClusterSpec,
    volume: Volume,
    config: RenderConfig,
    priority: Priority,
    submitted: AtomicU64,
}

/// A submitted frame bound to the backend that issued it: redeem with
/// [`SessionTicket::wait`] (panics on failure) or
/// [`SessionTicket::wait_result`]. The in-backend ticket can be taken out
/// with [`SessionTicket::into_ticket`] to redeem manually.
pub struct SessionTicket<'a, B: RenderBackend + ?Sized> {
    backend: &'a B,
    ticket: B::Ticket,
}

impl<'a, B: RenderBackend + ?Sized> SessionTicket<'a, B> {
    /// Block until the frame is delivered; panics with the backend's error
    /// on failure (see [`SessionTicket::wait_result`]).
    pub fn wait(self) -> BackendFrame {
        match self.wait_result() {
            Ok(frame) => frame,
            Err(err) => panic!("render backend failed a session frame: {err}"),
        }
    }

    /// Block until the frame resolves, returning the failure instead of
    /// panicking.
    pub fn wait_result(self) -> Result<BackendFrame, BackendError> {
        self.backend.redeem(self.ticket)
    }

    /// Unwrap the backend-native ticket (for manual redemption through
    /// [`RenderBackend::redeem`]).
    pub fn into_ticket(self) -> B::Ticket {
        self.ticket
    }
}

impl<'a, B: RenderBackend + ?Sized> SceneSession<'a, B> {
    /// Bind a session over any backend (the trait's
    /// [`RenderBackend::session`] is the usual spelling).
    pub fn over(
        backend: &'a B,
        spec: ClusterSpec,
        volume: Volume,
        config: RenderConfig,
    ) -> SceneSession<'a, B> {
        SceneSession {
            backend,
            spec,
            volume,
            config,
            priority: Priority::Normal,
            submitted: AtomicU64::new(0),
        }
    }

    /// Default priority for subsequent requests.
    pub fn with_priority(mut self, priority: Priority) -> SceneSession<'a, B> {
        self.priority = priority;
        self
    }

    /// Submit one frame of this session's volume under the given scene
    /// (blocking at the admission bound — see [`RenderBackend::submit`]).
    /// Panics on submission failure; use [`SceneSession::try_request`] for
    /// the non-panicking, non-blocking form.
    pub fn request(&self, scene: Scene) -> SessionTicket<'a, B> {
        self.request_with_priority(scene, self.priority)
    }

    pub fn request_with_priority(&self, scene: Scene, priority: Priority) -> SessionTicket<'a, B> {
        match self.backend.submit(self.request_for(scene, priority)) {
            Ok(ticket) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                SessionTicket {
                    backend: self.backend,
                    ticket,
                }
            }
            Err(err) => panic!("render backend refused a session submit: {err}"),
        }
    }

    /// Non-blocking submit: sheds with [`BackendError::Admission`] (or a
    /// remote door's [`BackendError::Throttled`]) when the backend is at
    /// its bound.
    pub fn try_request(&self, scene: Scene) -> Result<SessionTicket<'a, B>, BackendError> {
        self.try_request_with_priority(scene, self.priority)
    }

    pub fn try_request_with_priority(
        &self,
        scene: Scene,
        priority: Priority,
    ) -> Result<SessionTicket<'a, B>, BackendError> {
        let ticket = self.backend.try_submit(self.request_for(scene, priority))?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(SessionTicket {
            backend: self.backend,
            ticket,
        })
    }

    /// Render one frame synchronously (submit + redeem in one call).
    pub fn render(&self, scene: Scene) -> Result<BackendFrame, BackendError> {
        let frame = self
            .backend
            .render(self.request_for(scene, self.priority))?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    fn request_for(&self, scene: Scene, priority: Priority) -> SceneRequest {
        SceneRequest {
            spec: self.spec.clone(),
            volume: self.volume.clone(),
            scene,
            config: self.config.clone(),
            priority,
        }
    }

    /// Convenience: orbit this session's volume (see [`Scene::orbit`]).
    pub fn request_orbit(
        &self,
        azimuth_deg: f32,
        elevation_deg: f32,
        transfer: TransferFunction,
    ) -> SessionTicket<'a, B> {
        self.request(Scene::orbit(
            &self.volume,
            azimuth_deg,
            elevation_deg,
            transfer,
        ))
    }

    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Frames this session has submitted so far.
    pub fn frames_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }
}
